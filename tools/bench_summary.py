#!/usr/bin/env python
"""Aggregate ``benchmarks/out/*.json`` into a root ``BENCH_perf.json``.

Each throughput/scale bench drops a JSON next to its rendered table;
this tool distills the headline numbers of every known bench into one
root-level document so the performance trajectory is tracked across
PRs (commit the refreshed file together with the ``benchmarks/out``
JSONs it summarizes).

Usage::

    PYTHONPATH=src python tools/bench_summary.py [--out BENCH_perf.json]

Unknown or missing JSONs are skipped with a note, so the summary stays
writable even when only a subset of the benches was re-run.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_DIR = REPO_ROOT / "benchmarks" / "out"


def _load(path: pathlib.Path):
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_summary: skipping {path.name}: {err}", file=sys.stderr)
        return None


def _scale_rows(payload):
    """Per-scale rows of the streaming throughput benches (a list)."""
    return payload if isinstance(payload, list) else []


def summarize_streaming(payload) -> dict | None:
    """Headline of a streaming throughput bench: its largest scale."""
    rows = _scale_rows(payload)
    if not rows:
        return None
    top = rows[-1]
    summary = {
        "scale": top.get("scale"),
        "events": top.get("events"),
        "batch_events_per_sec": top.get("batch_events_per_sec"),
        "stream_events_per_sec": top.get("stream_events_per_sec"),
        "stream_event_latency_p50_us": top.get("stream_event_latency_p50_us"),
        "detect_parity": all(r.get("detect_parity") for r in rows),
    }
    # Columnar ingest-stage rate (events folded into the window per
    # second, excluding generation and scoring), when the bench
    # recorded it (older JSONs lack the field).
    if top.get("ingest_events_per_sec"):
        summary["ingest_events_per_sec"] = top["ingest_events_per_sec"]
    # The observability plane's cost and the per-stage breakdown, when
    # the bench ran with the metrics pass (older JSONs lack it).
    if "metrics_overhead_pct" in top:
        summary["metrics_overhead_pct"] = round(
            top["metrics_overhead_pct"], 2
        )
        summary["metrics_parity"] = all(
            r.get("metrics_parity", True) for r in rows
        )
    if top.get("stage_seconds"):
        summary["stage_seconds"] = {
            stage: round(seconds, 6)
            for stage, seconds in sorted(top["stage_seconds"].items())
        }
    return summary


def summarize_fleet(payload) -> dict | None:
    """Headline of the fleet bench: records/sec per executor mode,
    with each mode's speedup over the serial baseline."""
    modes = payload.get("modes") if isinstance(payload, dict) else None
    if not modes:
        return None
    serial_rps = next(
        (m.get("records_per_sec") for m in modes if m.get("mode") == "serial"),
        None,
    )
    summary_modes = {}
    for mode in modes:
        entry = {
            "workers": mode.get("workers"),
            "records_per_sec": mode.get("records_per_sec"),
            "tenant_days_per_sec": mode.get("tenant_days_per_sec"),
            "detect_parity": mode.get("detect_parity"),
        }
        rps = mode.get("records_per_sec")
        if serial_rps and rps:
            entry["speedup_vs_serial"] = round(rps / serial_rps, 3)
        summary_modes[mode.get("mode")] = entry
    summary = {
        "smoke": payload.get("smoke"),
        "modes": summary_modes,
        "detect_parity": all(m.get("detect_parity") for m in modes),
    }
    metrics_run = payload.get("metrics")
    if metrics_run:
        summary["metrics"] = {
            "detect_parity": metrics_run.get("detect_parity"),
            "stage_seconds": {
                stage: round(seconds, 6)
                for stage, seconds in sorted(
                    metrics_run.get("stage_seconds", {}).items()
                )
            },
        }
    return summary


def summarize_bp_scale(payload) -> dict | None:
    """Headline of the scoring bench: worst speedup of the largest
    configuration, parity across every row."""
    rows = payload.get("rows") if isinstance(payload, dict) else None
    if not rows:
        return None
    largest_name = rows[-1]["config"]
    largest = [r for r in rows if r["config"] == largest_name]
    return {
        "smoke": payload.get("smoke"),
        "largest_config": largest_name,
        "largest_frontier": largest[-1].get("frontier"),
        "largest_chain": largest[-1].get("chain"),
        "min_speedup": min(r["speedup"] for r in largest),
        "speedups": {
            f"{r['config']}/{r['scorer']}": r["speedup"] for r in rows
        },
        "detect_parity": all(r.get("detect_parity") for r in rows),
    }


def summarize_evasion(payload) -> dict | None:
    """Headline of the adversarial campaign suite: detection rate at
    the endpoints of every (campaign, pipeline) curve, parity across
    every measured point."""
    curves = payload.get("curves") if isinstance(payload, dict) else None
    if not curves:
        return None
    summary_curves = {}
    for curve in curves:
        points = curve.get("points", [])
        if not points:
            continue
        summary_curves[f"{curve['campaign']}/{curve['pipeline']}"] = {
            "rate_at_0": points[0].get("batch_rate"),
            "rate_at_max": points[-1].get("batch_rate"),
            "max_strength": points[-1].get("strength"),
            "points": len(points),
            "parity": curve.get("parity"),
        }
    return {
        "smoke": payload.get("smoke"),
        "strengths": payload.get("strengths"),
        "curves": summary_curves,
        "detect_parity": all(c.get("parity") for c in curves),
    }


#: bench JSON filename -> summarizer.
KNOWN = {
    "streaming_throughput.json": summarize_streaming,
    "enterprise_stream_throughput.json": summarize_streaming,
    "fleet_throughput.json": summarize_fleet,
    "bp_scale.json": summarize_bp_scale,
    "evasion_suite.json": summarize_evasion,
}


def build_summary(out_dir: pathlib.Path = OUT_DIR) -> dict:
    """One summary document over every known bench JSON present."""
    benches: dict[str, dict] = {}
    for name, summarize in sorted(KNOWN.items()):
        path = out_dir / name
        if not path.exists():
            print(f"bench_summary: {name} not present", file=sys.stderr)
            continue
        payload = _load(path)
        if payload is None:
            continue
        summary = summarize(payload)
        if summary is not None:
            benches[name.removesuffix(".json")] = summary
    # Metrics snapshots ride along with their bench; they are not
    # benches themselves.
    unknown = sorted(
        p.name for p in out_dir.glob("*.json")
        if p.name not in KNOWN and not p.name.endswith("_metrics.json")
    )
    summary = {
        "benches": benches,
        "detect_parity": all(
            b.get("detect_parity", True) for b in benches.values()
        ),
    }
    if unknown:
        summary["unsummarized"] = unknown
    return summary


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_perf.json"),
        help="where to write the summary (default: repo root)",
    )
    args = parser.parse_args(argv)
    summary = build_summary()
    if not summary["benches"]:
        print("bench_summary: no known bench JSONs found", file=sys.stderr)
        return 1
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"bench_summary: wrote {out_path} "
          f"({len(summary['benches'])} benches)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
