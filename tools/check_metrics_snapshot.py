#!/usr/bin/env python
"""Validate a ``--metrics-out`` snapshot produced by a CLI run.

CI smokes run ``repro-detect stream/fleet --metrics-out <path>`` and
then call this tool to assert the artifact is real: the JSON parses
back into a :class:`repro.obs.metrics.MetricsSnapshot`, it is not
empty, every metric family named on the command line is present, and
the sibling ``.prom`` text exposition exists and is non-trivial.

Usage::

    PYTHONPATH=src python tools/check_metrics_snapshot.py \
        out/metrics.json stream_events_total bp_runs_total ...

Exit codes: 0 all checks pass, 1 any check fails (one line per
failure on stderr).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.metrics import MetricsSnapshot, split_sample_key  # noqa: E402


def check_snapshot(
    path: pathlib.Path,
    families: list[str],
    nonzero: list[str] | None = None,
) -> list[str]:
    """All problems found with one snapshot file (empty = healthy)."""
    problems: list[str] = []
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        return [f"{path}: unreadable snapshot: {err}"]
    try:
        snapshot = MetricsSnapshot.from_dict(payload)
    except (TypeError, KeyError, ValueError) as err:
        return [f"{path}: not a metrics snapshot: {err}"]
    if snapshot.is_empty():
        problems.append(f"{path}: snapshot carries no samples")
    present = snapshot.families()
    for family in families:
        if family not in present:
            problems.append(
                f"{path}: expected metric family {family!r} missing "
                f"(present: {', '.join(sorted(present)) or 'none'})"
            )
    for family in nonzero or ():
        total = sum(
            value
            for key, value in snapshot.counters.items()
            if split_sample_key(key)[0] == family
        )
        if total <= 0:
            problems.append(
                f"{path}: counter family {family!r} must sum above "
                f"zero (got {total})"
            )
    prom_path = path.with_suffix(".prom")
    if not prom_path.exists():
        problems.append(f"{prom_path}: missing Prometheus sibling")
    elif not prom_path.read_text().strip():
        problems.append(f"{prom_path}: empty Prometheus exposition")
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("snapshot", type=pathlib.Path,
                        help="the --metrics-out JSON file")
    parser.add_argument(
        "families", nargs="*",
        help="metric families that must be present",
    )
    parser.add_argument(
        "--nonzero", action="append", default=[], metavar="FAMILY",
        help="counter family whose samples must sum above zero "
             "(repeatable; implies presence)",
    )
    args = parser.parse_args(argv)
    problems = check_snapshot(
        args.snapshot, args.families, nonzero=args.nonzero
    )
    for problem in problems:
        print(f"check_metrics_snapshot: {problem}", file=sys.stderr)
    if not problems:
        print(
            f"check_metrics_snapshot: {args.snapshot} ok "
            f"({len(args.families)} families asserted)"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
