#!/usr/bin/env python3
"""Docstring coverage gate for ``src/repro``.

The architecture documentation leans on package and module docstrings
(docs/ARCHITECTURE.md links into them), so missing ones are treated as
CI failures, not style nits.  Enforced, with no third-party tooling:

* every module must open with a module docstring;
* every *public* class, and every public function or method longer
  than a trivial wrapper (more than one statement), must have one.

Dunder methods, private names (leading underscore) and ``test_*``
files are exempt.  Exit status 0 when clean, 1 with one line per
violation otherwise — run it as ``python tools/check_docstrings.py``
(optionally passing an alternative root directory).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

DEFAULT_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def _needs_docstring(node: ast.AST) -> bool:
    if isinstance(node, ast.ClassDef):
        return not node.name.startswith("_")
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        if node.name.startswith("_"):
            # Private helpers and dunders (__init__ included: the class
            # docstring covers construction) are exempt.
            return False
        # One-statement bodies (a return, a delegation) may speak for
        # themselves; anything longer must say what it is for.
        return len(node.body) > 1
    return False


def _walk_definitions(tree: ast.Module):
    """Yield (node, qualified-name) for definitions needing docstrings."""
    stack = [(node, "") for node in reversed(tree.body)]
    while stack:
        node, prefix = stack.pop()
        if isinstance(
            node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            name = f"{prefix}{node.name}"
            yield node, name
            if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                stack.extend(
                    (child, f"{name}.") for child in reversed(node.body)
                )


def check_file(path: Path, root: Path) -> list[str]:
    """One line per docstring violation in ``path``."""
    rel = path.relative_to(root.parent.parent)
    tree = ast.parse(path.read_text(), filename=str(path))
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{rel}: missing module docstring")
    for node, name in _walk_definitions(tree):
        if _needs_docstring(node) and ast.get_docstring(node) is None:
            problems.append(
                f"{rel}:{node.lineno}: missing docstring on {name}"
            )
    return problems


def main(argv: list[str]) -> int:
    """Check every module under the root; print a coverage summary."""
    root = Path(argv[1]) if len(argv) > 1 else DEFAULT_ROOT
    paths = sorted(root.rglob("*.py"))
    if not paths:
        print(f"error: no python files under {root}", file=sys.stderr)
        return 1
    problems = []
    for path in paths:
        if path.name.startswith("test_"):
            continue
        problems.extend(check_file(path, root))
    if problems:
        print("\n".join(problems))
        print(f"\n{len(problems)} docstring violation(s) in {root}")
        return 1
    print(f"docstring coverage OK: {len(paths)} modules under {root}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
