"""Simulated VirusTotal oracle.

The paper uses VirusTotal two ways:

* **training labels** -- a rare automated domain is "reported" when at
  least one AV engine flags it, "legitimate" otherwise (Section IV-C);
* **validation** -- detected domains are checked against VT three
  months later; those still unreported are candidate *new discoveries*
  (Sections VI-B through VI-D).

Our oracle knows the generator's ground truth and reports each truly
malicious domain with probability ``coverage`` (VT never knows
everything -- that incompleteness is precisely what makes the paper's
98 new discoveries possible).  A small ``false_report_rate`` models
VT's own false positives on benign domains.  Which domains are covered
is a deterministic function of the seed, so experiments reproduce.
"""

from __future__ import annotations

import random
from collections.abc import Iterable


class VirusTotalOracle:
    """Coverage-parameterized label oracle over ground-truth sets."""

    def __init__(
        self,
        malicious_domains: Iterable[str],
        benign_domains: Iterable[str] = (),
        *,
        coverage: float = 0.65,
        false_report_rate: float = 0.0,
        seed: int = 7,
    ) -> None:
        if not 0.0 <= coverage <= 1.0:
            raise ValueError("coverage must be within [0, 1]")
        if not 0.0 <= false_report_rate <= 1.0:
            raise ValueError("false_report_rate must be within [0, 1]")
        rng = random.Random(seed)
        self.coverage = coverage
        self._malicious = set(malicious_domains)
        self._reported: set[str] = {
            d for d in sorted(self._malicious) if rng.random() < coverage
        }
        for domain in sorted(set(benign_domains)):
            if rng.random() < false_report_rate:
                self._reported.add(domain)

    def is_reported(self, domain: str) -> bool:
        """At least one AV engine flags the domain."""
        return domain in self._reported

    def is_malicious(self, domain: str) -> bool:
        """Ground truth (not available to the detector, only to eval)."""
        return domain in self._malicious

    @property
    def reported_domains(self) -> frozenset[str]:
        return frozenset(self._reported)

    def label(self, domain: str) -> str:
        """Training label: ``"reported"`` or ``"legitimate"``."""
        return "reported" if self.is_reported(domain) else "legitimate"
