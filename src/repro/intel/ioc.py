"""SOC indicator-of-compromise (IOC) list.

Enterprise SOCs accumulate IOCs -- domains confirmed malicious through
incident response or bought from intelligence feeds.  The paper seeds
the SOC-hints mode of belief propagation from 28 IOC domains and the
compromised hosts contacting them (Section VI-D), and counts a detected
domain as "known malicious" when it appears on the IOC list or in
VirusTotal (Section VI-B).
"""

from __future__ import annotations

from collections.abc import Iterable


class IocList:
    """A SOC's curated list of malicious domains."""

    def __init__(self, domains: Iterable[str] = ()) -> None:
        self._domains: set[str] = set(domains)

    def __len__(self) -> int:
        return len(self._domains)

    def __contains__(self, domain: str) -> bool:
        return domain in self._domains

    def __iter__(self):
        return iter(sorted(self._domains))

    def add(self, domain: str) -> None:
        self._domains.add(domain)

    def seeds(self, limit: int | None = None) -> list[str]:
        """Deterministic subset used to seed belief propagation."""
        ordered = sorted(self._domains)
        return ordered if limit is None else ordered[:limit]
