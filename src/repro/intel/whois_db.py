"""Simulated WHOIS registry.

The paper queries WHOIS for two registration features: **DomAge** (days
since registration) and **DomValidity** (days until the registration
expires).  Attacker-controlled domains skew young and short-lived;
legitimate ones are old with long validity.

We cannot query real WHOIS offline, so the synthetic generators
populate this registry when they mint domains.  Three realism details
are preserved because the evaluation depends on them:

* some domains have *no* (or unparseable) records -- the paper imputes
  average feature values for those (Section VI-C);
* DGA domains may be **registered after they are observed** in traffic
  (Section VI-D found registration dates later than detection);
* lookups are relative to a query date, so age/validity change over
  the simulated timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True, slots=True)
class WhoisRecord:
    """Registration interval for one (folded) domain."""

    domain: str
    registered: float
    """Registration instant, epoch seconds."""

    expires: float
    """Expiry instant, epoch seconds."""

    def age_days(self, when: float) -> float:
        """Days since registration at time ``when`` (negative when the
        domain is observed before its registration -- the DGA case)."""
        return (when - self.registered) / SECONDS_PER_DAY

    def validity_days(self, when: float) -> float:
        """Days until expiry at time ``when``."""
        return (self.expires - when) / SECONDS_PER_DAY


class WhoisDatabase:
    """In-memory registry keyed by folded domain name."""

    def __init__(self) -> None:
        self._records: dict[str, WhoisRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, domain: str) -> bool:
        return domain in self._records

    def register(
        self, domain: str, registered: float, expires: float
    ) -> WhoisRecord:
        """Add (or overwrite) a registration record."""
        if expires <= registered:
            raise ValueError(
                f"expiry {expires} not after registration {registered} "
                f"for {domain!r}"
            )
        record = WhoisRecord(domain=domain, registered=registered, expires=expires)
        self._records[domain] = record
        return record

    def lookup(self, domain: str) -> WhoisRecord | None:
        """Return the record, or ``None`` for unregistered/unparseable
        domains (the caller imputes averages, as the paper does)."""
        return self._records.get(domain)

    def merge(self, other: "WhoisDatabase") -> None:
        """Fold another registry's records into this one."""
        self._records.update(other._records)

    # ------------------------------------------------------------------
    # On-disk form (fleet layouts, enterprise replay)
    # ------------------------------------------------------------------

    def to_json_dict(self) -> dict[str, list[float]]:
        """JSON-serializable ``{domain: [registered, expires]}`` form."""
        return {
            domain: [record.registered, record.expires]
            for domain, record in sorted(self._records.items())
        }

    @classmethod
    def from_json_dict(
        cls, payload: dict[str, list[float]]
    ) -> "WhoisDatabase":
        """Rebuild a registry from :meth:`to_json_dict` output."""
        database = cls()
        for domain, (registered, expires) in payload.items():
            database.register(str(domain), float(registered), float(expires))
        return database


def save_whois_file(database: WhoisDatabase, path) -> None:
    """Write a registry to ``path`` as an inspectable JSON document."""
    import json
    from pathlib import Path

    Path(path).write_text(json.dumps(database.to_json_dict(), indent=1) + "\n")


def load_whois_file(path) -> WhoisDatabase:
    """Read a registry previously written by :func:`save_whois_file`."""
    import json
    from pathlib import Path

    return WhoisDatabase.from_json_dict(json.loads(Path(path).read_text()))
