"""External-intelligence substrates: WHOIS, VirusTotal, SOC IOCs."""

from .ioc import IocList
from .virustotal import VirusTotalOracle
from .whois_db import WhoisDatabase, WhoisRecord

__all__ = ["IocList", "VirusTotalOracle", "WhoisDatabase", "WhoisRecord"]
