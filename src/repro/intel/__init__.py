"""External-intelligence substrates: WHOIS, VirusTotal, SOC IOCs."""

from .ioc import IocList
from .virustotal import VirusTotalOracle
from .whois_db import (
    WhoisDatabase,
    WhoisRecord,
    load_whois_file,
    save_whois_file,
)

__all__ = [
    "IocList",
    "VirusTotalOracle",
    "WhoisDatabase",
    "WhoisRecord",
    "load_whois_file",
    "save_whois_file",
]
