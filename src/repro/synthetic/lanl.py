"""Synthetic LANL challenge dataset (Sections IV-A, V).

The real corpus is two months of anonymized DNS traffic from Los Alamos
National Lab plus 20 expert-simulated APT infections, released as the
*APT Infection Discovery using DNS Data* challenge.  The corpus is not
publicly redistributable at full fidelity, so this module generates a
statistically equivalent world:

* anonymized domain names (no TLD semantics, hence third-level folding);
* A records mixed with redacted non-A records (~30% of the volume);
* queries for internal resources and queries by internal servers, both
  of which the reduction funnel must strip (Figure 2);
* a bootstrap month for history profiling, then "March" operation days;
* 20 campaigns laid out exactly as Table I: case 1 on 3/2, 3/3, 3/4,
  3/9, 3/10 (one hint host); case 2 on 3/5-3/8, 3/11-3/13 (three or
  four hint hosts); case 3 on 3/14, 3/15, 3/17-3/21 (one hint host,
  further compromised hosts to discover); case 4 on 3/22 (no hints).

The paper's train/test split of the 20 attacks (Section V-B) is
reproduced in :data:`TRAINING_DATES`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..logs.records import DnsRecord, DnsRecordType
from .attacks import Campaign, CampaignFactory, CampaignSpec
from .benign import BenignConfig, BenignWorkload
from .dga import DomainNameFactory
from .entities import EnterpriseModel, build_enterprise
from .ipspace import IpAllocator
from ..intel.whois_db import WhoisDatabase

SECONDS_PER_DAY = 86_400.0

#: Table I -- which March dates host which challenge case.
CASE_DATES: dict[int, tuple[int, ...]] = {
    1: (2, 3, 4, 9, 10),
    2: (5, 6, 7, 8, 11, 12, 13),
    3: (14, 15, 17, 18, 19, 20, 21),
    4: (22,),
}

#: Section V-B -- March dates whose attacks form the training set.
TRAINING_DATES = frozenset({2, 3, 4, 5, 7, 12, 14, 15, 17, 18})

_CASE_SPECS: dict[int, CampaignSpec] = {
    1: CampaignSpec(n_hosts=2, n_delivery=2, n_cc=1,
                    beacon_period=600.0, beacon_jitter=3.0),
    2: CampaignSpec(n_hosts=4, n_delivery=3, n_cc=1,
                    beacon_period=600.0, beacon_jitter=3.0),
    3: CampaignSpec(n_hosts=3, n_delivery=3, n_cc=1,
                    beacon_period=600.0, beacon_jitter=3.0),
    4: CampaignSpec(n_hosts=3, n_delivery=4, n_cc=1,
                    beacon_period=600.0, beacon_jitter=3.0),
}


@dataclass(frozen=True)
class LanlConfig:
    """Scale and realism knobs for the synthetic LANL world."""

    seed: int = 42
    n_hosts: int = 250
    n_servers: int = 5
    bootstrap_days: int = 8
    popular_domains: int = 120
    churn_domains_per_day: int = 25
    browsing_visits_per_host: int = 12
    non_a_record_rate: float = 0.3
    internal_queries_per_host: int = 6
    internal_domains: int = 40
    server_only_domains: int = 25
    rare_auto_services_per_day: int = 3


@dataclass(frozen=True)
class LanlCampaignTruth:
    """Ground truth for one simulated attack (the challenge "answers")."""

    march_date: int
    case: int
    hint_hosts: tuple[str, ...]
    compromised_hosts: tuple[str, ...]
    malicious_domains: tuple[str, ...]
    cc_domains: tuple[str, ...]

    @property
    def is_training(self) -> bool:
        return self.march_date in TRAINING_DATES


class _LanlNames:
    """Adapter steering the benign workload to anonymized names."""

    def __init__(self, factory: DomainNameFactory) -> None:
        self._factory = factory

    def benign(self) -> str:
        return self._factory.lanl_benign()

    def benign_service(self) -> str:
        return self._factory.lanl_benign()


@dataclass
class LanlDataset:
    """The generated world: records per day plus ground truth."""

    config: LanlConfig
    model: EnterpriseModel
    host_ips: dict[str, str]
    server_ips: frozenset[str]
    internal_suffixes: tuple[str, ...]
    campaigns: list[LanlCampaignTruth]
    bootstrap_domains: set[str]
    whois: WhoisDatabase
    _workload: BenignWorkload = field(repr=False, default=None)
    _factory: CampaignFactory = field(repr=False, default=None)
    _campaign_objects: dict[int, Campaign] = field(repr=False, default_factory=dict)
    _record_rng: random.Random = field(repr=False, default=None)
    _internal_names: list[str] = field(repr=False, default_factory=list)
    _server_domains: list[str] = field(repr=False, default_factory=list)
    _records_cache: dict[int, list[DnsRecord]] = field(
        repr=False, default_factory=dict
    )

    def campaign_for_date(self, march_date: int) -> LanlCampaignTruth | None:
        """The challenge campaign injected on the given March date."""
        for truth in self.campaigns:
            if truth.march_date == march_date:
                return truth
        return None

    def _day_index(self, march_date: int) -> int:
        return self.config.bootstrap_days + (march_date - 1)

    def day_records(self, march_date: int) -> list[DnsRecord]:
        """Full (unreduced) DNS records for one March date.

        Memoized: the record-noise RNG is a shared stream, so repeated
        reads of the same date must return the same realized day (the
        NetFlow pairing in :meth:`day_netflow` depends on it).
        """
        cached = self._records_cache.get(march_date)
        if cached is not None:
            return cached
        day = self._day_index(march_date)
        base = day * SECONDS_PER_DAY
        rng = self._record_rng
        visits = self._workload.day_visits(day)
        campaign = self._campaign_objects.get(march_date)
        if campaign is not None:
            visits = visits + self._factory.day_visits(campaign, day)

        records: list[DnsRecord] = []
        for visit in visits:
            records.append(
                DnsRecord(
                    timestamp=visit.timestamp,
                    source_ip=self.host_ips[visit.host],
                    domain=visit.domain,
                    record_type=DnsRecordType.A,
                    resolved_ip=visit.resolved_ip,
                )
            )
            # Non-A noise rides along with real lookups (PTR, TXT, ...).
            if rng.random() < self.config.non_a_record_rate:
                records.append(
                    DnsRecord(
                        timestamp=visit.timestamp + rng.uniform(0.0, 1.0),
                        source_ip=self.host_ips[visit.host],
                        domain=visit.domain,
                        record_type=rng.choice(
                            (DnsRecordType.TXT, DnsRecordType.PTR,
                             DnsRecordType.AAAA, DnsRecordType.MX)
                        ),
                        resolved_ip="",
                    )
                )

        # Queries for internal resources (filtered by reduction step 2).
        for host in self.model.hosts:
            for _ in range(self.config.internal_queries_per_host):
                records.append(
                    DnsRecord(
                        timestamp=base + rng.uniform(0, SECONDS_PER_DAY),
                        source_ip=self.host_ips[host.name],
                        domain=rng.choice(self._internal_names),
                        record_type=DnsRecordType.A,
                        resolved_ip="10.9.9.9",
                    )
                )

        # Queries by internal servers (filtered by reduction step 3).
        for server in self.model.servers:
            for _ in range(40):
                records.append(
                    DnsRecord(
                        timestamp=base + rng.uniform(0, SECONDS_PER_DAY),
                        source_ip=self.host_ips[server.name],
                        domain=rng.choice(self._server_domains),
                        record_type=DnsRecordType.A,
                        resolved_ip="",
                    )
                )

        records.sort(key=lambda r: r.timestamp)
        self._records_cache[march_date] = records
        return records

    def day_netflow(self, march_date: int):
        """Flow exports consistent with the day's DNS answers.

        Each successful external lookup is followed a moment later by a
        web flow from the querying host to the answered address --
        the pairing an enterprise's own NetFlow collector would see.
        Lets the same detection pipeline run from flows + passive DNS
        (Section II-C's NetFlow claim).
        """
        from ..logs.netflow import NetflowRecord

        rng = random.Random((self.config.seed << 4) ^ march_date)
        flows = []
        for record in self.day_records(march_date):
            if not record.is_a_record or not record.resolved_ip:
                continue
            flows.append(
                NetflowRecord(
                    timestamp=record.timestamp + rng.uniform(0.01, 0.5),
                    source_ip=record.source_ip,
                    destination_ip=record.resolved_ip,
                    destination_port=rng.choice((80, 443)),
                    protocol="TCP",
                    byte_count=rng.randint(400, 40_000),
                    packet_count=rng.randint(4, 60),
                )
            )
        flows.sort(key=lambda f: f.timestamp)
        return flows


def generate_lanl_dataset(config: LanlConfig | None = None) -> LanlDataset:
    """Build the full synthetic LANL world from a seed."""
    config = config or LanlConfig()
    rng = random.Random(config.seed)
    model = build_enterprise(config.n_hosts, rng, n_servers=config.n_servers)
    ips = IpAllocator(seed=rng.randrange(2**31))
    factory_names = DomainNameFactory(rng)
    whois = WhoisDatabase()

    host_ips: dict[str, str] = {}
    for index, host in enumerate(model.hosts):
        host_ips[host.name] = ips.internal_static_ip(index + 1)
    server_ip_list = []
    for index, server in enumerate(model.servers):
        ip = ips.internal_static_ip(60_000 + index)
        host_ips[server.name] = ip
        server_ip_list.append(ip)

    benign_config = BenignConfig(
        popular_domains=config.popular_domains,
        browsing_visits_per_host=config.browsing_visits_per_host,
        churn_domains_per_day=config.churn_domains_per_day,
        rare_auto_services_per_day=config.rare_auto_services_per_day,
    )
    workload = BenignWorkload(
        model, _LanlNames(factory_names), ips, whois, rng, benign_config
    )

    internal_names = [
        f"{factory_names.lanl_benign().split('.')[0]}.int.c0"
        for _ in range(config.internal_domains)
    ]
    server_domains = [factory_names.lanl_benign()
                      for _ in range(config.server_only_domains)]

    # Bootstrap "February": build the destination history cheaply by
    # walking the benign workload and collecting names (the challenge
    # solver never needs February's raw records).
    bootstrap_domains: set[str] = set()
    for day in range(config.bootstrap_days):
        for visit in workload.day_visits(day):
            bootstrap_domains.add(visit.domain)
    bootstrap_domains.update(server_domains)

    factory = CampaignFactory(
        factory_names, ips, whois, rng, name_style="lanl"
    )
    campaigns: list[LanlCampaignTruth] = []
    campaign_objects: dict[int, Campaign] = {}
    for case, dates in CASE_DATES.items():
        for march_date in dates:
            spec = _CASE_SPECS[case]
            day = config.bootstrap_days + (march_date - 1)
            campaign = factory.create(day, model.hosts, spec)
            campaign_objects[march_date] = campaign
            host_names = tuple(campaign.host_names)
            if case == 1:
                hints = host_names[:1]
            elif case == 2:
                hints = host_names[:4]
            elif case == 3:
                hints = host_names[:1]
            else:
                hints = ()
            campaigns.append(
                LanlCampaignTruth(
                    march_date=march_date,
                    case=case,
                    hint_hosts=tuple(host_ips[h] for h in hints),
                    compromised_hosts=tuple(host_ips[h] for h in host_names),
                    malicious_domains=tuple(campaign.domains),
                    cc_domains=tuple(campaign.cc_domains),
                )
            )

    dataset = LanlDataset(
        config=config,
        model=model,
        host_ips=host_ips,
        server_ips=frozenset(server_ip_list),
        internal_suffixes=("int.c0",),
        campaigns=campaigns,
        bootstrap_domains=bootstrap_domains,
        whois=whois,
    )
    dataset._workload = workload
    dataset._factory = factory
    dataset._campaign_objects = campaign_objects
    dataset._record_rng = random.Random(config.seed ^ 0xBEEF)
    dataset._internal_names = internal_names
    dataset._server_domains = server_domains
    return dataset
