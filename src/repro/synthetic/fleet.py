"""Correlated multi-enterprise worlds (the fleet scenario).

The paper observes that community feedback (VT reports) amplifies
detection across organizations; the fleet scenario makes that testable:
``n_tenants`` independent enterprise worlds -- each with its own hosts,
benign workload and campaigns -- plus **one shared attacker campaign**
whose C&C infrastructure hits several tenants:

* the **lead tenant** is hit first, with enough compromised hosts
  (default two) for the multi-host beaconing heuristic to fire on its
  own -- the tenant that "discovers" the campaign;
* **follower tenants** are hit on a later date with a *single*
  beaconing host each, below the heuristic's ``min_hosts`` -- locally
  invisible to the no-hint LANL path, detectable only when the lead's
  confirmation arrives as an elevated prior through the fleet's shared
  intel plane.

Fleets may be **mixed-pipeline**: with
:attr:`FleetScenarioConfig.enterprise_tenants` set, the trailing
tenants are enterprise (web-proxy) worlds instead of LANL-style DNS
worlds.  Their daily logs are written *pre-joined* (the collector has
already resolved DHCP/VPN addresses to stable hostnames -- the full
join is exercised by :mod:`repro.synthetic.enterprise` itself), their
regression models are trained on their bootstrap month at layout-write
time, and the shared campaign beacons into their proxy traffic -- so
the lead's (DNS-path) confirmation seeds the follower's proxy-path
belief propagation across *pipeline types*.

Shared-campaign names use the ``.c9`` label space (DNS tenant worlds
mint ``.c1``-``.c4``/``.n*``, enterprise worlds realistic TLDs), so
cross-tenant overlap in a generated fleet is attacker infrastructure
by construction, never a naming collision.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace

from ..intel.virustotal import VirusTotalOracle
from ..logs import format_dns_line, format_proxy_line
from ..logs.records import DnsRecord, DnsRecordType, ProxyRecord
from .dga import _syllables
from .enterprise import (
    EnterpriseDataset,
    EnterpriseDatasetConfig,
    generate_enterprise_dataset,
)
from .ipspace import IpAllocator
from .lanl import LanlConfig, LanlDataset, generate_lanl_dataset

SECONDS_PER_DAY = 86_400.0

#: Registration interval written for shared-campaign domains in the
#: fleet's WHOIS registry: minted at epoch, short validity -- the young,
#: short-lived profile the paper associates with attacker infrastructure.
SHARED_DOMAIN_REGISTERED = 0.0
SHARED_DOMAIN_EXPIRES = 200 * SECONDS_PER_DAY


@dataclass(frozen=True)
class FleetScenarioConfig:
    """Shape of a correlated multi-enterprise world."""

    seed: int = 42
    n_tenants: int = 3
    tenant: LanlConfig = field(
        default_factory=lambda: LanlConfig(n_hosts=60, bootstrap_days=3)
    )
    """Template for every DNS tenant's world; seeds are derived per
    tenant."""

    enterprise_tenants: int = 0
    """How many of the *trailing* tenants are enterprise (proxy-path)
    worlds.  Must leave at least the lead tenant on the DNS path: the
    lead's discovery story relies on the multi-host beaconing
    heuristic."""

    enterprise_tenant: EnterpriseDatasetConfig = field(
        default_factory=lambda: EnterpriseDatasetConfig(
            n_hosts=50,
            bootstrap_days=9,
            operation_days=6,
            quiet_days=3,
            popular_domains=60,
            churn_domains_per_day=12,
            n_campaigns=20,
        )
    )
    """Template for enterprise tenants' worlds; must be rich enough to
    train both regression models at layout-write time."""

    lead_date: int = 2
    """March date the shared campaign hits the lead tenant."""

    follower_date: int = 3
    """March date the shared campaign reaches every follower tenant."""

    lead_hosts: int = 2
    """Compromised hosts in the lead tenant (>= 2 fires the multi-host
    C&C heuristic locally)."""

    follower_hosts: int = 1
    """Compromised hosts per follower (1 stays below the heuristic --
    detectable only through cross-tenant prior seeding)."""

    shared_cc_domains: int = 1
    shared_delivery_domains: int = 2
    beacon_period: float = 600.0
    beacon_jitter: float = 3.0
    vt_coverage: float = 0.8
    """Fraction of fleet-wide malicious domains the shared VT feed knows."""

    ct_sibling_domains: int = 0
    """Extra campaign domains visible *only* through the CT fixture's
    SAN pivot: each is looked up a handful of times (non-periodically,
    from an uncompromised host) in one follower tenant, so it lands in
    the day's rare set but never beacons, is absent from the VT feed,
    and shares no host with the campaign -- belief propagation cannot
    reach it without the certificate edge.  ``0`` (the default) leaves
    generated worlds byte-identical to earlier versions."""

    join_rounds: tuple[int, ...] = ()
    """Per-tenant fleet round at which the tenant comes online (tenant
    churn).  Index-aligned with the tenants; empty (the default) means
    everyone joins at round 0, byte-identical to earlier versions.  A
    late joiner's files are still its own ``march-01..`` days -- it
    brings a fresh world whose day 1 coincides with the fleet's round
    ``join_rounds[i]`` (:func:`write_fleet_layout` records the offset
    in the manifest)."""

    leave_rounds: tuple[int, ...] = ()
    """Per-tenant number of daily files to ship before the tenant
    leaves the fleet; ``0`` entries (and the empty default) mean the
    tenant stays for the full run.  Leaving is purely a layout fact --
    the tenant's directory simply ends early."""

    follower_dates: tuple[int, ...] = ()
    """Per-tenant override of :attr:`follower_date` (index-aligned;
    the lead entry is ignored).  Lets a late joiner be hit on a date
    it actually observes.  Empty means every follower is hit on
    :attr:`follower_date`."""


@dataclass(frozen=True)
class SharedCampaignTruth:
    """Ground truth of the cross-tenant campaign."""

    cc_domains: tuple[str, ...]
    delivery_domains: tuple[str, ...]
    hosts_by_tenant: dict[str, tuple[str, ...]]
    date_by_tenant: dict[str, int]
    ct_sibling_domains: tuple[str, ...] = ()
    """Campaign domains reachable only via the CT certificate's SAN
    pivot (kept out of :attr:`domains` so the VT feed stays blind to
    them -- the certificate is their only evidence channel)."""

    ct_sibling_tenant: str = ""
    """Tenant whose traffic carries the sibling lookups (empty when
    the scenario injected none)."""

    @property
    def domains(self) -> tuple[str, ...]:
        return self.delivery_domains + self.cc_domains


@dataclass
class FleetDataset:
    """``n_tenants`` worlds plus the shared campaign ground truth."""

    config: FleetScenarioConfig
    tenants: dict[str, "LanlDataset | EnterpriseDataset"]
    shared: SharedCampaignTruth
    pipelines: dict[str, str] = field(default_factory=dict)
    """Tenant id -> ``"dns"`` or ``"enterprise"`` (missing = dns)."""

    _injected: dict[tuple[str, int], list] = field(
        repr=False, default_factory=dict
    )
    _merged_cache: dict[tuple[str, int], list] = field(
        repr=False, default_factory=dict
    )

    @property
    def tenant_ids(self) -> list[str]:
        return list(self.tenants)

    @property
    def lead_tenant(self) -> str:
        return self.tenant_ids[0]

    @property
    def follower_tenants(self) -> list[str]:
        return self.tenant_ids[1:]

    def pipeline_of(self, tenant_id: str) -> str:
        """The tenant's log pipeline (``"dns"`` or ``"enterprise"``)."""
        return self.pipelines.get(tenant_id, "dns")

    def tenant_day_records(self, tenant_id: str, march_date: int) -> list:
        """One tenant's full day: its own world + shared-campaign hits.

        DNS tenants yield :class:`DnsRecord` lists; enterprise tenants
        yield *pre-joined* :class:`ProxyRecord` lists (UTC timestamps,
        stable hostnames in the source field).
        """
        key = (tenant_id, march_date)
        cached = self._merged_cache.get(key)
        if cached is None:
            dataset = self.tenants[tenant_id]
            if self.pipeline_of(tenant_id) == "enterprise":
                day = dataset.config.bootstrap_days + (march_date - 1)
                records = _prejoined_proxy_records(dataset, day)
            else:
                records = list(dataset.day_records(march_date))
            records.extend(self._injected.get(key, ()))
            records.sort(key=lambda r: r.timestamp)
            self._merged_cache[key] = cached = records
        return cached

    def malicious_domains(self) -> set[str]:
        """Fleet-wide ground-truth malicious set (all tenants + shared)."""
        domains: set[str] = set(self.shared.domains)
        for tenant_id, dataset in self.tenants.items():
            if self.pipeline_of(tenant_id) == "enterprise":
                domains.update(dataset.malicious_domains)
            else:
                for truth in dataset.campaigns:
                    domains.update(truth.malicious_domains)
        return domains

    def vt_oracle(self) -> VirusTotalOracle:
        """The fleet's shared VT feed over the ground truth."""
        return VirusTotalOracle(
            self.malicious_domains(),
            coverage=self.config.vt_coverage,
            seed=self.config.seed,
        )


def _mint_shared_domains(rng: random.Random, count: int) -> list[str]:
    issued: set[str] = set()
    while len(issued) < count:
        issued.add(f"{_syllables(rng, 3)}.c9")
    return sorted(issued)


def _inject_campaign(
    dataset: LanlDataset,
    march_date: int,
    hosts: tuple[str, ...],
    delivery: list[str],
    cc: list[str],
    domain_ips: dict[str, str],
    config: FleetScenarioConfig,
    rng: random.Random,
) -> list[DnsRecord]:
    """Shared-campaign DNS records inside one tenant, one day.

    Mirrors :meth:`repro.synthetic.attacks.CampaignFactory.day_visits`:
    a delivery chain minutes apart at infection time, then periodic
    C&C beaconing until end of day.
    """
    day = dataset.config.bootstrap_days + (march_date - 1)
    base = day * SECONDS_PER_DAY
    records: list[DnsRecord] = []
    infection = base + rng.uniform(8 * 3600.0, 13 * 3600.0)
    for index, host in enumerate(hosts):
        source_ip = dataset.host_ips[host]
        t = infection + index * rng.uniform(10.0, 300.0)
        for domain in delivery:
            records.append(DnsRecord(
                timestamp=t, source_ip=source_ip, domain=domain,
                record_type=DnsRecordType.A,
                resolved_ip=domain_ips[domain],
            ))
            t += rng.uniform(5.0, 120.0)
        beacon_start = t + rng.uniform(10.0, 120.0)
        for domain in cc:
            t = beacon_start
            end = base + SECONDS_PER_DAY - 60.0
            while t < end:
                records.append(DnsRecord(
                    timestamp=t, source_ip=source_ip, domain=domain,
                    record_type=DnsRecordType.A,
                    resolved_ip=domain_ips[domain],
                ))
                t += config.beacon_period + rng.uniform(
                    -config.beacon_jitter, config.beacon_jitter
                )
    return records


def _prejoined_proxy_records(
    dataset: EnterpriseDataset, day: int
) -> list[ProxyRecord]:
    """One enterprise day as pre-joined proxy records.

    The raw day is pushed through the dataset's own normalization (UTC
    conversion, DHCP/VPN joins, bare-IP drops) and re-emitted with the
    stable hostname in the source field and a zero collector offset --
    the form a fleet collector ships after its own join, so consuming
    engines need no lease registry.
    """
    records = []
    for conn in dataset.day_connections(day):
        records.append(ProxyRecord(
            timestamp=conn.timestamp,
            source_ip=conn.host,
            destination=conn.domain,
            destination_ip=conn.resolved_ip,
            status_code=conn.status_code,
            user_agent=conn.user_agent or "",
            referer=conn.referer if conn.referer is not None else "",
        ))
    return records


def _inject_enterprise_campaign(
    dataset: EnterpriseDataset,
    march_date: int,
    hosts: tuple[str, ...],
    delivery: list[str],
    cc: list[str],
    domain_ips: dict[str, str],
    config: FleetScenarioConfig,
    rng: random.Random,
) -> list[ProxyRecord]:
    """Shared-campaign proxy records inside one enterprise tenant.

    Same delivery-then-beacon shape as :func:`_inject_campaign`, emitted
    as pre-joined proxy lines: no referer and no user agent, exactly
    the NoRef/RareUA evidence profile the regression features expect of
    malware traffic.
    """
    day = dataset.config.bootstrap_days + (march_date - 1)
    base = day * SECONDS_PER_DAY
    records: list[ProxyRecord] = []
    infection = base + rng.uniform(8 * 3600.0, 13 * 3600.0)
    for index, host in enumerate(hosts):
        t = infection + index * rng.uniform(10.0, 300.0)
        for domain in delivery:
            records.append(ProxyRecord(
                timestamp=t, source_ip=host, destination=domain,
                destination_ip=domain_ips[domain],
                user_agent="", referer="",
            ))
            t += rng.uniform(5.0, 120.0)
        beacon_start = t + rng.uniform(10.0, 120.0)
        for domain in cc:
            t = beacon_start
            end = base + SECONDS_PER_DAY - 60.0
            while t < end:
                records.append(ProxyRecord(
                    timestamp=t, source_ip=host, destination=domain,
                    destination_ip=domain_ips[domain],
                    user_agent="", referer="",
                ))
                t += config.beacon_period + rng.uniform(
                    -config.beacon_jitter, config.beacon_jitter
                )
    return records


def _inject_ct_siblings(
    dataset,
    march_date: int,
    campaign_hosts: tuple[str, ...],
    siblings: list[str],
    domain_ips: dict[str, str],
    pipeline: str,
    rng: random.Random,
) -> list:
    """Sparse lookups of the CT-sibling domains in one tenant's day.

    Three visits per domain, hours apart (nothing periodic), from a
    host the campaign never compromised: rare by first appearance, but
    invisible to the beaconing heuristic and unreachable from the
    campaign through host-domain edges.
    """
    day = dataset.config.bootstrap_days + (march_date - 1)
    base = day * SECONDS_PER_DAY
    candidates = [
        host.name
        for host in dataset.model.hosts
        if host.name not in campaign_hosts
    ]
    source = rng.choice(candidates)
    records: list = []
    windows = ((9.0, 11.0), (13.5, 15.5), (18.0, 20.0))
    for domain in siblings:
        for lo, hi in windows:
            t = base + rng.uniform(lo * 3600.0, hi * 3600.0)
            if pipeline == "enterprise":
                records.append(ProxyRecord(
                    timestamp=t, source_ip=source, destination=domain,
                    destination_ip=domain_ips[domain],
                    user_agent="", referer="",
                ))
            else:
                records.append(DnsRecord(
                    timestamp=t,
                    source_ip=dataset.host_ips[source],
                    domain=domain,
                    record_type=DnsRecordType.A,
                    resolved_ip=domain_ips[domain],
                ))
    return records


def generate_fleet_dataset(
    config: FleetScenarioConfig | None = None,
) -> FleetDataset:
    """Build ``n_tenants`` correlated worlds from one seed.

    With :attr:`FleetScenarioConfig.enterprise_tenants` set, the
    trailing tenants are enterprise (proxy-path) worlds; the lead (and
    any other leading tenants) stay on the DNS path.
    """
    config = config or FleetScenarioConfig()
    if config.n_tenants < 2:
        raise ValueError("a fleet scenario needs at least 2 tenants")
    if not 0 <= config.enterprise_tenants < config.n_tenants:
        raise ValueError(
            "enterprise_tenants must leave at least the lead tenant "
            "on the DNS path"
        )
    for name in ("join_rounds", "leave_rounds", "follower_dates"):
        value = getattr(config, name)
        if value and len(value) != config.n_tenants:
            raise ValueError(
                f"{name} must have one entry per tenant "
                f"({config.n_tenants}), got {len(value)}"
            )
    rng = random.Random(config.seed ^ 0xF1EE7)

    n_dns = config.n_tenants - config.enterprise_tenants
    tenants: dict[str, LanlDataset | EnterpriseDataset] = {}
    pipelines: dict[str, str] = {}
    for index in range(config.n_tenants):
        tenant_id = f"t{index}"
        tenant_seed = config.seed + 1009 * index
        if index < n_dns:
            tenants[tenant_id] = generate_lanl_dataset(
                replace(config.tenant, seed=tenant_seed)
            )
            pipelines[tenant_id] = "dns"
        else:
            tenants[tenant_id] = generate_enterprise_dataset(
                replace(config.enterprise_tenant, seed=tenant_seed)
            )
            pipelines[tenant_id] = "enterprise"

    delivery = _mint_shared_domains(rng, config.shared_delivery_domains)
    cc = _mint_shared_domains(rng, config.shared_cc_domains)
    ips = IpAllocator(seed=rng.randrange(2**31))
    block = ips.attacker_block()
    domain_ips = {domain: ips.ip_in_block(block) for domain in delivery + cc}

    hosts_by_tenant: dict[str, tuple[str, ...]] = {}
    date_by_tenant: dict[str, int] = {}
    injected: dict[tuple[str, int], list] = {}
    for index, (tenant_id, dataset) in enumerate(tenants.items()):
        lead = index == 0
        n_hosts = config.lead_hosts if lead else config.follower_hosts
        if lead:
            date = config.lead_date
        elif config.follower_dates:
            date = config.follower_dates[index]
        else:
            date = config.follower_date
        hosts = tuple(
            host.name
            for host in rng.sample(dataset.model.hosts, n_hosts)
        )
        hosts_by_tenant[tenant_id] = hosts
        date_by_tenant[tenant_id] = date
        if pipelines[tenant_id] == "enterprise":
            injected[(tenant_id, date)] = _inject_enterprise_campaign(
                dataset, date, hosts, delivery, cc, domain_ips, config, rng,
            )
        else:
            injected[(tenant_id, date)] = _inject_campaign(
                dataset, date, hosts, delivery, cc, domain_ips, config, rng,
            )

    ct_siblings: tuple[str, ...] = ()
    ct_tenant = ""
    if config.ct_sibling_domains > 0:
        # A dedicated generator (and draws strictly after every
        # existing one) keeps ct_sibling_domains=0 worlds
        # byte-identical to earlier versions.
        ct_rng = random.Random(config.seed ^ 0xCE127)
        taken = set(delivery) | set(cc)
        minted: list[str] = []
        while len(minted) < config.ct_sibling_domains:
            name = f"{_syllables(ct_rng, 3)}.c9"
            if name not in taken:
                taken.add(name)
                minted.append(name)
        ct_siblings = tuple(minted)
        sibling_ips = {
            domain: ips.ip_in_block(block) for domain in ct_siblings
        }
        followers = list(tenants)[1:]
        ct_tenant = next(
            (tid for tid in followers if pipelines[tid] == "dns"),
            followers[0],
        )
        key = (ct_tenant, config.follower_date)
        injected.setdefault(key, []).extend(_inject_ct_siblings(
            tenants[ct_tenant],
            config.follower_date,
            hosts_by_tenant[ct_tenant],
            list(ct_siblings),
            sibling_ips,
            pipelines[ct_tenant],
            ct_rng,
        ))

    shared = SharedCampaignTruth(
        cc_domains=tuple(cc),
        delivery_domains=tuple(delivery),
        hosts_by_tenant=hosts_by_tenant,
        date_by_tenant=date_by_tenant,
        ct_sibling_domains=ct_siblings,
        ct_sibling_tenant=ct_tenant,
    )
    return FleetDataset(
        config=config,
        tenants=tenants,
        shared=shared,
        pipelines=pipelines,
        _injected=injected,
    )


# ---------------------------------------------------------------------------
# On-disk layout (what `repro-detect fleet` consumes)
# ---------------------------------------------------------------------------

def train_enterprise_detector(dataset: EnterpriseDataset):
    """Train the batch pipeline on an enterprise world's bootstrap month.

    Returns a trained :class:`repro.core.EnterpriseDetector`; raises
    :class:`ValueError` when the world is too small to fit both
    regression models (enlarge the tenant template).
    """
    from ..config import ENTERPRISE_CONFIG
    from ..core.pipeline import EnterpriseDetector

    detector = EnterpriseDetector(ENTERPRISE_CONFIG, whois=dataset.whois)
    detector.train(
        dataset.day_batches(0, dataset.config.bootstrap_days),
        dataset.build_virustotal(),
    )
    if detector.cc_scorer is None or detector.similarity_scorer is None:
        raise ValueError(
            "enterprise tenant training did not produce both regression "
            "models; enlarge the enterprise tenant configuration"
        )
    return detector


def write_enterprise_tenant(
    dataset: EnterpriseDataset,
    tenant_dir,
    *,
    days: int,
    day_records=None,
) -> None:
    """Write one enterprise tenant's runnable files into ``tenant_dir``.

    Produces ``proxy-march-XX.log`` (pre-joined daily logs covering
    operation days ``bootstrap_days .. bootstrap_days + days - 1``),
    the trained ``model.json`` the streaming engine restores, and
    ``ground_truth.txt``.  ``day_records`` overrides the per-March-date
    record source (the fleet writer injects the shared campaign there).
    """
    from pathlib import Path

    from ..state import save_detector

    tenant_dir = Path(tenant_dir)
    tenant_dir.mkdir(parents=True, exist_ok=True)
    first = dataset.config.bootstrap_days
    for march_date in range(1, days + 1):
        if day_records is not None:
            records = day_records(march_date)
        else:
            records = _prejoined_proxy_records(
                dataset, first + (march_date - 1)
            )
        path = tenant_dir / f"proxy-march-{march_date:02d}.log"
        with path.open("w") as handle:
            for record in records:
                handle.write(format_proxy_line(record) + "\n")

    save_detector(train_enterprise_detector(dataset), tenant_dir / "model.json")

    last = first + days - 1
    with (tenant_dir / "ground_truth.txt").open("w") as handle:
        for campaign in dataset.campaigns:
            active = sorted(set(campaign.active_days) & set(range(first, last + 1)))
            if not active:
                continue
            handle.write(
                f"days={','.join(str(d) for d in active)} "
                f"{campaign.campaign_id} "
                f"hosts={','.join(campaign.host_names)} "
                f"domains={','.join(campaign.domains)}\n"
            )


def write_enterprise_layout(dataset: EnterpriseDataset, directory, *, days: int):
    """Write a single-tenant enterprise layout for streaming replay.

    Produces the files ``repro-detect stream --pipeline enterprise``
    consumes: pre-joined daily proxy logs, the trained ``model.json``,
    the ``whois.json`` registry, and ``ground_truth.txt``.  Returns the
    directory.
    """
    from pathlib import Path

    from ..intel.whois_db import save_whois_file

    directory = Path(directory)
    write_enterprise_tenant(dataset, directory, days=days)
    save_whois_file(dataset.whois, directory / "whois.json")
    return directory


def build_fleet_whois(fleet: FleetDataset):
    """The fleet-wide WHOIS registry: every enterprise tenant's records
    plus young, short-validity registrations for the shared campaign --
    what the intel plane serves and the report's registration columns
    read."""
    from ..intel.whois_db import WhoisDatabase

    merged = WhoisDatabase()
    for tenant_id, dataset in fleet.tenants.items():
        if fleet.pipeline_of(tenant_id) == "enterprise":
            merged.merge(dataset.whois)
    for domain in fleet.shared.domains:
        merged.register(
            domain, SHARED_DOMAIN_REGISTERED, SHARED_DOMAIN_EXPIRES
        )
    return merged


def write_fleet_layout(
    fleet: FleetDataset,
    directory,
    *,
    days: int = 4,
    bootstrap_files: int = 1,
):
    """Write a runnable fleet layout; returns the manifest path.

    Layout::

        <dir>/manifest.json
        <dir>/intel/vt_reported.txt      # the shared VT feed
        <dir>/intel/whois.json           # the shared WHOIS registry
        <dir>/shared_truth.txt           # cross-tenant campaign answers
        <dir>/<tenant>/dns-march-*.log   # DNS tenant daily logs
        <dir>/<tenant>/proxy-march-*.log # enterprise tenant daily logs
        <dir>/<tenant>/model.json        # enterprise tenant trained models
        <dir>/<tenant>/ground_truth.txt
    """
    from pathlib import Path

    from ..intel.whois_db import save_whois_file

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    tenant_entries = []
    scenario = fleet.config
    for index, (tenant_id, dataset) in enumerate(fleet.tenants.items()):
        # Churn: a leaver ships fewer daily files, a joiner carries a
        # manifest round offset (its files are still its own days 1..N).
        tenant_days = days
        if scenario.leave_rounds and scenario.leave_rounds[index]:
            tenant_days = min(days, scenario.leave_rounds[index])
        join_round = (
            scenario.join_rounds[index] if scenario.join_rounds else 0
        )
        tenant_dir = directory / tenant_id
        tenant_dir.mkdir(exist_ok=True)
        if fleet.pipeline_of(tenant_id) == "enterprise":
            write_enterprise_tenant(
                dataset,
                tenant_dir,
                days=tenant_days,
                day_records=lambda march, tid=tenant_id: (
                    fleet.tenant_day_records(tid, march)
                ),
            )
            entry = {
                "id": tenant_id,
                "directory": tenant_id,
                "pipeline": "enterprise",
                "bootstrap_files": bootstrap_files,
                "pattern": "proxy-*.log",
                "model_state": "model.json",
            }
            if join_round:
                entry["join_round"] = join_round
            tenant_entries.append(entry)
            continue
        for march_date in range(1, tenant_days + 1):
            path = tenant_dir / f"dns-march-{march_date:02d}.log"
            with path.open("w") as handle:
                for record in fleet.tenant_day_records(tenant_id, march_date):
                    handle.write(format_dns_line(record) + "\n")
        truth_path = tenant_dir / "ground_truth.txt"
        with truth_path.open("w") as handle:
            for truth in dataset.campaigns:
                if truth.march_date > tenant_days:
                    continue
                handle.write(
                    f"3/{truth.march_date:02d} case{truth.case} "
                    f"domains={','.join(truth.malicious_domains)}\n"
                )
        entry = {
            "id": tenant_id,
            "directory": tenant_id,
            "bootstrap_files": bootstrap_files,
            "pattern": "dns-*.log",
            "internal_suffixes": list(dataset.internal_suffixes),
            "server_ips": sorted(dataset.server_ips),
        }
        if join_round:
            entry["join_round"] = join_round
        tenant_entries.append(entry)

    intel_dir = directory / "intel"
    intel_dir.mkdir(exist_ok=True)
    oracle = fleet.vt_oracle()
    (intel_dir / "vt_reported.txt").write_text(
        "\n".join(sorted(oracle.reported_domains)) + "\n"
    )
    save_whois_file(build_fleet_whois(fleet), intel_dir / "whois.json")
    from .certs import write_intel_fixtures

    write_intel_fixtures(fleet, intel_dir)

    shared = fleet.shared
    truth_lines = [
        f"3/{shared.date_by_tenant[tid]:02d} {tid} "
        f"hosts={','.join(shared.hosts_by_tenant[tid])} "
        f"domains={','.join(shared.domains)}"
        for tid in fleet.tenant_ids
    ]
    if shared.ct_sibling_domains:
        truth_lines.append(
            f"ct_siblings {shared.ct_sibling_tenant} "
            f"domains={','.join(shared.ct_sibling_domains)}"
        )
    (directory / "shared_truth.txt").write_text(
        "\n".join(truth_lines) + "\n"
    )

    manifest: dict = {
        "version": 1,
        "vt_reported": "intel/vt_reported.txt",
        "whois": "intel/whois.json",
        "tenants": tenant_entries,
    }
    if shared.ct_sibling_domains:
        # The certs fixture is always written, but only referenced --
        # and therefore only consulted -- when the scenario injected
        # SAN-pivot siblings, so existing layouts detect identically.
        manifest["certs"] = "intel/certs.json"
    manifest_path = directory / "manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=1) + "\n")
    return manifest_path
