"""Correlated multi-enterprise worlds (the fleet scenario).

The paper observes that community feedback (VT reports) amplifies
detection across organizations; the fleet scenario makes that testable:
``n_tenants`` independent LANL-style enterprise worlds -- each with its
own hosts, benign workload and challenge campaigns -- plus **one shared
attacker campaign** whose C&C infrastructure hits several tenants:

* the **lead tenant** is hit first, with enough compromised hosts
  (default two) for the multi-host beaconing heuristic to fire on its
  own -- the tenant that "discovers" the campaign;
* **follower tenants** are hit on a later date with a *single*
  beaconing host each, below the heuristic's ``min_hosts`` -- locally
  invisible to the no-hint LANL path, detectable only when the lead's
  confirmation arrives as an elevated prior through the fleet's shared
  intel plane.

Shared-campaign names use the ``.c9`` label space (tenant worlds mint
``.c1``-``.c4``/``.n*``), so cross-tenant overlap in a generated fleet
is attacker infrastructure by construction, never a naming collision.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace

from ..intel.virustotal import VirusTotalOracle
from ..logs import format_dns_line
from ..logs.records import DnsRecord, DnsRecordType
from .dga import _syllables
from .ipspace import IpAllocator
from .lanl import LanlConfig, LanlDataset, generate_lanl_dataset

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class FleetScenarioConfig:
    """Shape of a correlated multi-enterprise world."""

    seed: int = 42
    n_tenants: int = 3
    tenant: LanlConfig = field(
        default_factory=lambda: LanlConfig(n_hosts=60, bootstrap_days=3)
    )
    """Template for every tenant's world; seeds are derived per tenant."""

    lead_date: int = 2
    """March date the shared campaign hits the lead tenant."""

    follower_date: int = 3
    """March date the shared campaign reaches every follower tenant."""

    lead_hosts: int = 2
    """Compromised hosts in the lead tenant (>= 2 fires the multi-host
    C&C heuristic locally)."""

    follower_hosts: int = 1
    """Compromised hosts per follower (1 stays below the heuristic --
    detectable only through cross-tenant prior seeding)."""

    shared_cc_domains: int = 1
    shared_delivery_domains: int = 2
    beacon_period: float = 600.0
    beacon_jitter: float = 3.0
    vt_coverage: float = 0.8
    """Fraction of fleet-wide malicious domains the shared VT feed knows."""


@dataclass(frozen=True)
class SharedCampaignTruth:
    """Ground truth of the cross-tenant campaign."""

    cc_domains: tuple[str, ...]
    delivery_domains: tuple[str, ...]
    hosts_by_tenant: dict[str, tuple[str, ...]]
    date_by_tenant: dict[str, int]

    @property
    def domains(self) -> tuple[str, ...]:
        return self.delivery_domains + self.cc_domains


@dataclass
class FleetDataset:
    """``n_tenants`` worlds plus the shared campaign ground truth."""

    config: FleetScenarioConfig
    tenants: dict[str, LanlDataset]
    shared: SharedCampaignTruth
    _injected: dict[tuple[str, int], list[DnsRecord]] = field(
        repr=False, default_factory=dict
    )
    _merged_cache: dict[tuple[str, int], list[DnsRecord]] = field(
        repr=False, default_factory=dict
    )

    @property
    def tenant_ids(self) -> list[str]:
        return list(self.tenants)

    @property
    def lead_tenant(self) -> str:
        return self.tenant_ids[0]

    @property
    def follower_tenants(self) -> list[str]:
        return self.tenant_ids[1:]

    def tenant_day_records(
        self, tenant_id: str, march_date: int
    ) -> list[DnsRecord]:
        """One tenant's full day: its own world + shared-campaign hits."""
        key = (tenant_id, march_date)
        cached = self._merged_cache.get(key)
        if cached is None:
            records = list(self.tenants[tenant_id].day_records(march_date))
            records.extend(self._injected.get(key, ()))
            records.sort(key=lambda r: r.timestamp)
            self._merged_cache[key] = cached = records
        return cached

    def malicious_domains(self) -> set[str]:
        """Fleet-wide ground-truth malicious set (all tenants + shared)."""
        domains: set[str] = set(self.shared.domains)
        for dataset in self.tenants.values():
            for truth in dataset.campaigns:
                domains.update(truth.malicious_domains)
        return domains

    def vt_oracle(self) -> VirusTotalOracle:
        """The fleet's shared VT feed over the ground truth."""
        return VirusTotalOracle(
            self.malicious_domains(),
            coverage=self.config.vt_coverage,
            seed=self.config.seed,
        )


def _mint_shared_domains(rng: random.Random, count: int) -> list[str]:
    issued: set[str] = set()
    while len(issued) < count:
        issued.add(f"{_syllables(rng, 3)}.c9")
    return sorted(issued)


def _inject_campaign(
    dataset: LanlDataset,
    march_date: int,
    hosts: tuple[str, ...],
    delivery: list[str],
    cc: list[str],
    domain_ips: dict[str, str],
    config: FleetScenarioConfig,
    rng: random.Random,
) -> list[DnsRecord]:
    """Shared-campaign DNS records inside one tenant, one day.

    Mirrors :meth:`repro.synthetic.attacks.CampaignFactory.day_visits`:
    a delivery chain minutes apart at infection time, then periodic
    C&C beaconing until end of day.
    """
    day = dataset.config.bootstrap_days + (march_date - 1)
    base = day * SECONDS_PER_DAY
    records: list[DnsRecord] = []
    infection = base + rng.uniform(8 * 3600.0, 13 * 3600.0)
    for index, host in enumerate(hosts):
        source_ip = dataset.host_ips[host]
        t = infection + index * rng.uniform(10.0, 300.0)
        for domain in delivery:
            records.append(DnsRecord(
                timestamp=t, source_ip=source_ip, domain=domain,
                record_type=DnsRecordType.A,
                resolved_ip=domain_ips[domain],
            ))
            t += rng.uniform(5.0, 120.0)
        beacon_start = t + rng.uniform(10.0, 120.0)
        for domain in cc:
            t = beacon_start
            end = base + SECONDS_PER_DAY - 60.0
            while t < end:
                records.append(DnsRecord(
                    timestamp=t, source_ip=source_ip, domain=domain,
                    record_type=DnsRecordType.A,
                    resolved_ip=domain_ips[domain],
                ))
                t += config.beacon_period + rng.uniform(
                    -config.beacon_jitter, config.beacon_jitter
                )
    return records


def generate_fleet_dataset(
    config: FleetScenarioConfig | None = None,
) -> FleetDataset:
    """Build ``n_tenants`` correlated worlds from one seed."""
    config = config or FleetScenarioConfig()
    if config.n_tenants < 2:
        raise ValueError("a fleet scenario needs at least 2 tenants")
    rng = random.Random(config.seed ^ 0xF1EE7)

    tenants: dict[str, LanlDataset] = {}
    for index in range(config.n_tenants):
        tenant_config = replace(
            config.tenant, seed=config.seed + 1009 * index
        )
        tenants[f"t{index}"] = generate_lanl_dataset(tenant_config)

    delivery = _mint_shared_domains(rng, config.shared_delivery_domains)
    cc = _mint_shared_domains(rng, config.shared_cc_domains)
    ips = IpAllocator(seed=rng.randrange(2**31))
    block = ips.attacker_block()
    domain_ips = {domain: ips.ip_in_block(block) for domain in delivery + cc}

    hosts_by_tenant: dict[str, tuple[str, ...]] = {}
    date_by_tenant: dict[str, int] = {}
    injected: dict[tuple[str, int], list[DnsRecord]] = {}
    for index, (tenant_id, dataset) in enumerate(tenants.items()):
        lead = index == 0
        n_hosts = config.lead_hosts if lead else config.follower_hosts
        date = config.lead_date if lead else config.follower_date
        hosts = tuple(
            host.name
            for host in rng.sample(dataset.model.hosts, n_hosts)
        )
        hosts_by_tenant[tenant_id] = hosts
        date_by_tenant[tenant_id] = date
        injected[(tenant_id, date)] = _inject_campaign(
            dataset, date, hosts, delivery, cc, domain_ips, config, rng,
        )

    shared = SharedCampaignTruth(
        cc_domains=tuple(cc),
        delivery_domains=tuple(delivery),
        hosts_by_tenant=hosts_by_tenant,
        date_by_tenant=date_by_tenant,
    )
    return FleetDataset(
        config=config, tenants=tenants, shared=shared, _injected=injected
    )


# ---------------------------------------------------------------------------
# On-disk layout (what `repro-detect fleet` consumes)
# ---------------------------------------------------------------------------

def write_fleet_layout(
    fleet: FleetDataset,
    directory,
    *,
    days: int = 4,
    bootstrap_files: int = 1,
):
    """Write a runnable fleet layout; returns the manifest path.

    Layout::

        <dir>/manifest.json
        <dir>/intel/vt_reported.txt      # the shared VT feed
        <dir>/shared_truth.txt           # cross-tenant campaign answers
        <dir>/<tenant>/dns-march-*.log   # per-tenant daily logs
        <dir>/<tenant>/ground_truth.txt
    """
    from pathlib import Path

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    tenant_entries = []
    for tenant_id, dataset in fleet.tenants.items():
        tenant_dir = directory / tenant_id
        tenant_dir.mkdir(exist_ok=True)
        for march_date in range(1, days + 1):
            path = tenant_dir / f"dns-march-{march_date:02d}.log"
            with path.open("w") as handle:
                for record in fleet.tenant_day_records(tenant_id, march_date):
                    handle.write(format_dns_line(record) + "\n")
        truth_path = tenant_dir / "ground_truth.txt"
        with truth_path.open("w") as handle:
            for truth in dataset.campaigns:
                if truth.march_date > days:
                    continue
                handle.write(
                    f"3/{truth.march_date:02d} case{truth.case} "
                    f"domains={','.join(truth.malicious_domains)}\n"
                )
        tenant_entries.append({
            "id": tenant_id,
            "directory": tenant_id,
            "bootstrap_files": bootstrap_files,
            "pattern": "dns-*.log",
            "internal_suffixes": list(dataset.internal_suffixes),
            "server_ips": sorted(dataset.server_ips),
        })

    intel_dir = directory / "intel"
    intel_dir.mkdir(exist_ok=True)
    oracle = fleet.vt_oracle()
    (intel_dir / "vt_reported.txt").write_text(
        "\n".join(sorted(oracle.reported_domains)) + "\n"
    )

    shared = fleet.shared
    (directory / "shared_truth.txt").write_text(
        "\n".join(
            f"3/{shared.date_by_tenant[tid]:02d} {tid} "
            f"hosts={','.join(shared.hosts_by_tenant[tid])} "
            f"domains={','.join(shared.domains)}"
            for tid in fleet.tenant_ids
        ) + "\n"
    )

    manifest_path = directory / "manifest.json"
    manifest_path.write_text(json.dumps(
        {
            "version": 1,
            "vt_reported": "intel/vt_reported.txt",
            "tenants": tenant_entries,
        },
        indent=1,
    ) + "\n")
    return manifest_path
