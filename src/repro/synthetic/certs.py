"""Deterministic CT-log and RDAP fixtures for generated fleets.

Real deployments of the paper's pipeline can tap two more public
evidence feeds: certificate-transparency logs (attackers routinely
reuse one TLS certificate across campaign infrastructure, so SAN
lists pivot between domains) and RDAP (the JSON successor to WHOIS).
This module mints offline fixtures of both for a generated fleet, so
every test and CI run exercises the feeds without network access:

* :func:`fleet_cert_observations` -- one **campaign certificate**
  covering the shared campaign's domains plus any CT-sibling domains
  the scenario injected (the SAN pivot the detector should exploit),
  padded with decoy SANs that never appear in traffic, plus a few
  benign certificates as noise;
* :func:`fleet_rdap_documents` -- the fleet WHOIS registry re-encoded
  as RDAP domain documents, byte-equivalent registration facts
  through :func:`repro.intelstore.rdap.load_registration_registry`;
* :func:`write_intel_fixtures` -- both serialized under a layout's
  ``intel/`` directory.

Everything is derived from the fleet's own ground truth with
content-hashed fingerprints -- no clocks, no randomness beyond the
fleet's seed -- so regenerating a layout reproduces identical bytes.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from ..intelstore.ct import CertObservation, save_ct_log
from ..intelstore.rdap import rdap_document
from .fleet import (
    SHARED_DOMAIN_EXPIRES,
    SHARED_DOMAIN_REGISTERED,
    FleetDataset,
    build_fleet_whois,
)

#: SANs on the campaign certificate that never resolve in any tenant's
#: traffic: they exercise the rare-set restriction (SAN pivots must
#: not seed domains the fleet never saw).
_DECOY_SANS = ("cdn-decoy-a.c9", "cdn-decoy-b.c9")

#: Benign certificates written as noise, so consumers cannot shortcut
#: by treating every fixture certificate as campaign evidence.
_BENIGN_CERTS = (
    ("portal.example-corp.com", "sso.example-corp.com"),
    ("static.news-site.net",),
)


def _fingerprint(sans: tuple[str, ...], issuer: str) -> str:
    """Stable hex fingerprint: content hash of the cert's identity."""
    digest = hashlib.sha256(
        "|".join((issuer,) + tuple(sorted(sans))).encode()
    )
    return digest.hexdigest()


def _observation(
    sans: tuple[str, ...],
    *,
    issuer: str,
    not_before: float = SHARED_DOMAIN_REGISTERED,
    not_after: float = SHARED_DOMAIN_EXPIRES,
) -> CertObservation:
    return CertObservation(
        fingerprint=_fingerprint(sans, issuer),
        not_before=not_before,
        not_after=not_after,
        issuer=issuer,
        sans=tuple(sans),
    )


def fleet_cert_observations(fleet: FleetDataset) -> list[CertObservation]:
    """The fleet's CT fixture: one campaign cert plus benign noise.

    The campaign certificate's SAN list is the shared campaign's
    delivery + C&C domains, any injected CT-sibling domains, and the
    decoy names -- the single shared certificate that lets SAN pivots
    walk from a confirmed C&C domain to the otherwise-invisible
    sibling infrastructure.
    """
    shared = fleet.shared
    campaign_sans = tuple(
        sorted(set(shared.domains) | set(shared.ct_sibling_domains))
    ) + _DECOY_SANS
    observations = [
        _observation(campaign_sans, issuer="Shady Free CA"),
    ]
    for sans in _BENIGN_CERTS:
        observations.append(
            _observation(
                sans,
                issuer="Reputable CA",
                not_before=SHARED_DOMAIN_REGISTERED,
                not_after=SHARED_DOMAIN_EXPIRES * 10,
            )
        )
    return observations


def fleet_rdap_documents(fleet: FleetDataset) -> list[dict]:
    """The fleet WHOIS registry as RDAP domain documents.

    Loading the result through
    :func:`repro.intelstore.rdap.registry_from_rdap` reproduces
    :func:`repro.synthetic.fleet.build_fleet_whois` exactly -- the
    fixture proves RDAP is a drop-in registration source.
    """
    registry = build_fleet_whois(fleet)
    return [
        rdap_document(domain, registered, expires)
        for domain, (registered, expires) in sorted(
            registry.to_json_dict().items()
        )
    ]


def write_intel_fixtures(fleet: FleetDataset, intel_dir) -> dict[str, Path]:
    """Write ``certs.json`` and ``rdap.json`` under ``intel_dir``.

    Returns the paths keyed by fixture name; layouts reference
    ``certs.json`` from their manifest only when the scenario injected
    CT siblings, so fixture presence alone never changes detections.
    """
    intel_dir = Path(intel_dir)
    intel_dir.mkdir(parents=True, exist_ok=True)
    certs_path = intel_dir / "certs.json"
    save_ct_log(fleet_cert_observations(fleet), certs_path)
    rdap_path = intel_dir / "rdap.json"
    rdap_path.write_text(
        json.dumps(fleet_rdap_documents(fleet), indent=1) + "\n"
    )
    return {"certs": certs_path, "rdap": rdap_path}
