"""Benign traffic generation.

Benign activity has to exercise every false-positive pressure point the
paper discusses, otherwise the evaluation is trivially easy:

* a **popular core** of destinations visited by much of the fleet every
  day (never rare after bootstrap);
* a **daily churn** of genuinely new, unpopular benign destinations --
  the enterprise of the study saw ~50 000 rare destinations per day,
  and these are what the detectors must sift;
* **popular automated services** (update checks, telemetry) with
  perfectly regular timing but high popularity, so rarity filtering is
  what saves the timing detector from them ("thousands of legitimate
  requests have regular timing patterns", Section III-D);
* **rare benign automated services** (ad-network beacons, toolbars,
  gaming trackers) -- rare *and* periodic, sometimes recently
  registered: the hard negatives behind the paper's 63
  legitimate-but-flagged domains.

Visits are emitted in a source-agnostic shape; the LANL and enterprise
dataset builders map them to DNS or proxy records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..intel.whois_db import WhoisDatabase
from .dga import DomainNameFactory
from .entities import EnterpriseModel, Host
from .ipspace import IpAllocator

SECONDS_PER_DAY = 86_400.0
WORKDAY_START = 7 * 3600.0
WORKDAY_END = 19 * 3600.0
YEAR = 365 * SECONDS_PER_DAY


@dataclass(frozen=True, slots=True)
class Visit:
    """One host-to-domain contact, format-agnostic."""

    timestamp: float
    host: str
    domain: str
    resolved_ip: str
    user_agent: str
    referer: str
    """Empty string means the request carried no referer."""


@dataclass(frozen=True)
class BenignConfig:
    """Knobs for the benign workload."""

    popular_domains: int = 150
    browsing_visits_per_host: int = 18
    churn_domains_per_day: int = 30
    churn_visitors_max: int = 3
    viral_domains_per_day: int = 1
    """New-but-popular domains (a product launch everyone opens): they
    are *new* yet not *rare*, so the Figure 2 funnel separates the two
    profiling steps."""
    popular_auto_services: int = 8
    rare_auto_services_per_day: int = 4
    rare_auto_recent_registration_rate: float = 0.3
    """Fraction of rare benign automated services registered recently
    (the policy-violation toolbars and trackers of Section VI-C)."""


@dataclass
class _Service:
    domain: str
    ip: str
    period: float
    hosts: list[Host] = field(default_factory=list)


class BenignWorkload:
    """Generates one enterprise's benign traffic, day by day."""

    def __init__(
        self,
        model: EnterpriseModel,
        names: DomainNameFactory,
        ips: IpAllocator,
        whois: WhoisDatabase,
        rng: random.Random,
        config: BenignConfig | None = None,
        *,
        epoch: float = 0.0,
    ) -> None:
        self.model = model
        self.names = names
        self.ips = ips
        self.whois = whois
        self.rng = rng
        self.config = config or BenignConfig()
        self.epoch = epoch
        self._popular: list[tuple[str, str]] = []
        self._popular_services: list[_Service] = []
        self._day_cache: dict[int, list[Visit]] = {}
        self._build_world()

    def _register_old(self, domain: str) -> None:
        """Old registration with long validity -- the benign profile."""
        registered = self.epoch - self.rng.uniform(1.5, 10.0) * YEAR
        expires = self.epoch + self.rng.uniform(1.0, 5.0) * YEAR
        self.whois.register(domain, registered, expires)

    def _register_recent(self, domain: str) -> None:
        """Recent, shortish registration -- the hard-negative profile."""
        registered = self.epoch - self.rng.uniform(5, 90) * SECONDS_PER_DAY
        expires = registered + self.rng.uniform(1.0, 2.0) * YEAR
        self.whois.register(domain, registered, expires)

    def _build_world(self) -> None:
        for _ in range(self.config.popular_domains):
            domain = self.names.benign()
            self._register_old(domain)
            self._popular.append((domain, self.ips.benign_ip()))
        for _ in range(self.config.popular_auto_services):
            domain = self.names.benign_service()
            self._register_old(domain)
            service = _Service(
                domain=domain,
                ip=self.ips.benign_ip(),
                period=self.rng.choice((300.0, 600.0, 900.0, 1800.0, 3600.0)),
            )
            # Popular services run on most of the fleet, which keeps
            # them above the rarity threshold.
            count = max(len(self.model.hosts) // 2, 1)
            service.hosts = self.rng.sample(self.model.hosts, count)
            self._popular_services.append(service)

    # ------------------------------------------------------------------

    def _day_base(self, day: int) -> float:
        return self.epoch + day * SECONDS_PER_DAY

    def _browsing(self, day: int, visits: list[Visit]) -> None:
        """Sessioned browsing over the popular core, referer-rich."""
        base = self._day_base(day)
        for host in self.model.hosts:
            ua = self.rng.choice(host.user_agents)
            t = base + self.rng.uniform(WORKDAY_START, WORKDAY_START + 3600)
            previous_domain = ""
            for _ in range(self.config.browsing_visits_per_host):
                domain, ip = self.rng.choice(self._popular)
                referer = (
                    f"http://{previous_domain}/" if previous_domain and
                    self.rng.random() < 0.8 else ""
                )
                visits.append(
                    Visit(t, host.name, domain, ip, ua, referer)
                )
                previous_domain = domain
                t += self.rng.expovariate(1.0 / 120.0)
                if t > base + WORKDAY_END:
                    break

    def _churn(self, day: int, visits: list[Visit]) -> None:
        """New benign destinations: today's rare-but-legit long tail."""
        base = self._day_base(day)
        for _ in range(self.config.churn_domains_per_day):
            domain = self.names.benign()
            self._register_old(domain)
            ip = self.ips.benign_ip()
            count = self.rng.randint(1, self.config.churn_visitors_max)
            for host in self.rng.sample(self.model.hosts, min(count, len(self.model.hosts))):
                t = base + self.rng.uniform(WORKDAY_START, WORKDAY_END)
                ua = self.rng.choice(host.user_agents)
                referer = f"http://{self.rng.choice(self._popular)[0]}/" \
                    if self.rng.random() < 0.7 else ""
                visits.append(Visit(t, host.name, domain, ip, ua, referer))
                # A curious user clicks around the new site a few times.
                for _ in range(self.rng.randint(0, 3)):
                    t += self.rng.expovariate(1.0 / 60.0)
                    visits.append(
                        Visit(t, host.name, domain, ip, ua, f"http://{domain}/")
                    )
        # Viral domains: new today but visited by enough hosts to fail
        # the unpopularity test (new without being rare).
        for _ in range(self.config.viral_domains_per_day):
            domain = self.names.benign()
            self._register_old(domain)
            ip = self.ips.benign_ip()
            count = min(max(12, len(self.model.hosts) // 4), len(self.model.hosts))
            for host in self.rng.sample(self.model.hosts, count):
                t = base + self.rng.uniform(WORKDAY_START, WORKDAY_END)
                visits.append(
                    Visit(t, host.name, domain, ip,
                          self.rng.choice(host.user_agents),
                          f"http://{self.rng.choice(self._popular)[0]}/")
                )

    @staticmethod
    def _beacons(
        start: float,
        end: float,
        period: float,
        rng: random.Random,
        jitter: float,
    ) -> list[float]:
        times = []
        t = start
        while t < end:
            times.append(t)
            t += period + rng.uniform(-jitter, jitter)
        return times

    def _popular_automation(self, day: int, visits: list[Visit]) -> None:
        base = self._day_base(day)
        for service in self._popular_services:
            for host in service.hosts:
                start = base + self.rng.uniform(0, service.period)
                # Sample a few hours of the day, not all 24h, to bound volume.
                end = start + self.rng.uniform(2, 6) * 3600.0
                ua = host.primary_ua()
                for t in self._beacons(start, end, service.period, self.rng, 1.0):
                    visits.append(
                        Visit(t, host.name, service.domain, service.ip, ua, "")
                    )

    def _rare_automation(self, day: int, visits: list[Visit]) -> None:
        """Rare periodic services: the C&C detector's hard negatives."""
        base = self._day_base(day)
        for _ in range(self.config.rare_auto_services_per_day):
            domain = self.names.benign_service()
            if self.rng.random() < self.config.rare_auto_recent_registration_rate:
                self._register_recent(domain)
            else:
                self._register_old(domain)
            ip = self.ips.benign_ip()
            period = self.rng.choice((120.0, 300.0, 600.0, 900.0))
            host = self.rng.choice(self.model.hosts)
            start = base + self.rng.uniform(WORKDAY_START, WORKDAY_START + 4 * 3600)
            end = start + self.rng.uniform(3, 8) * 3600.0
            # Browser-embedded trackers keep a referer; standalone
            # tools do not -- mix both so NoRef is informative, not
            # a trivial separator.
            referer = f"http://{self.rng.choice(self._popular)[0]}/" \
                if self.rng.random() < 0.6 else ""
            # Occasionally the periodic tool is itself unpopular
            # software with a rare UA -- the hardest negatives.
            if self.model.rare_user_agents and self.rng.random() < 0.2:
                ua = self.rng.choice(self.model.rare_user_agents)
            else:
                ua = self.rng.choice(host.user_agents)
            for t in self._beacons(start, end, period, self.rng, 2.0):
                visits.append(Visit(t, host.name, domain, ip, ua, referer))

    def day_visits(self, day: int) -> list[Visit]:
        """All benign visits for one day, time-sorted.

        Memoized per day: the generator draws from one shared stream of
        randomness (names must be globally unique, WHOIS registered
        once), so regeneration would produce a *different* day.  The
        cache makes repeated reads of the same day idempotent.
        """
        cached = self._day_cache.get(day)
        if cached is not None:
            return cached
        visits: list[Visit] = []
        self._browsing(day, visits)
        self._churn(day, visits)
        self._popular_automation(day, visits)
        self._rare_automation(day, visits)
        visits.sort(key=lambda v: v.timestamp)
        self._day_cache[day] = visits
        return visits

    @property
    def popular_domains(self) -> list[str]:
        return [domain for domain, _ in self._popular]

    @property
    def popular_sites(self) -> tuple[tuple[str, str], ...]:
        """The popular core as (domain, resolved IP) pairs.

        The adversarial campaign library fronts C&C traffic behind
        these -- they are the shared CDN-like infrastructure the
        whitelist/reduction funnel will never flag as rare.
        """
        return tuple(self._popular)
