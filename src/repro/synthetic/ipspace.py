"""IP address allocation for the synthetic enterprise world.

Two properties of real address usage matter to the detectors and are
modelled explicitly:

* **attacker co-location** -- attackers host many malicious domains
  inside a small number of /24 or /16 subnets (Section IV-D cites
  Hao et al. and the APT1 report); :meth:`IpAllocator.attacker_block`
  carves out a dedicated /24 so campaign domains share it;
* **benign dispersion** -- legitimate domains scatter across unrelated
  subnets, so benign /24 collisions are rare but not impossible (the
  paper saw a popular service cause thousands of incidental pairs on
  one day).

Internal (RFC1918) allocation for hosts, servers, and DHCP/VPN pools
also lives here.
"""

from __future__ import annotations

import random


class IpAllocator:
    """Deterministic allocator over external and internal IPv4 space."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._used_external_blocks: set[tuple[int, int, int]] = set()
        self._attacker_blocks: list[tuple[int, int, int]] = []

    # -- external space ---------------------------------------------------

    def _fresh_block(self) -> tuple[int, int, int]:
        """A /24 block (first three octets) not handed out before."""
        while True:
            block = (
                self._rng.randint(1, 223),
                self._rng.randint(0, 255),
                self._rng.randint(0, 255),
            )
            # Stay out of reserved ranges.
            if block[0] in (10, 127, 172, 192):
                continue
            if block not in self._used_external_blocks:
                self._used_external_blocks.add(block)
                return block

    def benign_ip(self) -> str:
        """One scattered benign address (fresh /24 each call)."""
        a, b, c = self._fresh_block()
        return f"{a}.{b}.{c}.{self._rng.randint(1, 254)}"

    def attacker_block(self) -> tuple[int, int, int]:
        """Reserve a /24 for one campaign's infrastructure."""
        block = self._fresh_block()
        self._attacker_blocks.append(block)
        return block

    def ip_in_block(self, block: tuple[int, int, int]) -> str:
        """A deterministic address inside the named /16 block."""
        a, b, c = block
        return f"{a}.{b}.{c}.{self._rng.randint(1, 254)}"

    def sibling_block_16(self, block: tuple[int, int, int]) -> tuple[int, int, int]:
        """A different /24 inside the same /16 (for IP16-only pairs)."""
        a, b, c = block
        while True:
            sibling = (a, b, self._rng.randint(0, 255))
            if sibling != block and sibling not in self._used_external_blocks:
                self._used_external_blocks.add(sibling)
                return sibling

    # -- internal space ---------------------------------------------------

    def internal_static_ip(self, index: int) -> str:
        """Statically assigned internal address (servers, LANL hosts)."""
        return f"10.{(index // 65536) % 256}.{(index // 256) % 256}.{index % 256}"

    def dhcp_pool_ip(self, index: int) -> str:
        """Address from the DHCP pool (reassigned across leases)."""
        return f"172.16.{(index // 256) % 240}.{index % 256}"

    def vpn_pool_ip(self, index: int) -> str:
        """Address from the VPN tunnel pool."""
        return f"192.168.{(index // 256) % 250}.{index % 256}"
