"""Domain-name generators for the synthetic world.

Produces the naming families observed in the paper's case studies:

* pronounceable benign names ("parkside-media.com");
* attacker throwaway names, including the ``.ru`` style from Figure 7
  ("usteeptyshehoaboochu.ru") and the ``.org`` Ramdo style of Figure 8;
* the two DGA clusters of Section VI: 4-5 character ``.info`` names
  (``mgwg.info``) and 20-character hex ``.info`` names
  (``f0371288e0a20a541328.info``);
* anonymized LANL-style names (``rainbow-.c3``) where top-level labels
  are stripped by anonymization.

All generators draw from an injected ``random.Random`` so the world is
a pure function of its seed.

The adversarial campaign library (:mod:`repro.synthetic.campaigns`)
additionally needs *standalone* DGA families whose streams are pure
functions of a per-family seed -- independent of the world's shared
randomness stream -- plus a classifier that recovers the family label
from a generated name.  :class:`DgaFamily` and :func:`classify_dga`
provide that: three structurally distinct ``.info`` families
(character-distribution, dictionary, hash-hex) whose generators reroll
any name another family's classifier would claim, so label recovery is
exact by construction.
"""

from __future__ import annotations

import random
import zlib

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"
_WORDS = (
    "park", "side", "media", "cloud", "shop", "news", "tech", "data",
    "blue", "green", "fast", "smart", "prime", "metro", "global", "daily",
    "river", "stone", "north", "pixel", "cargo", "solar", "atlas", "nova",
    "orbit", "cedar", "maple", "swift", "quill", "ember", "haven", "crest",
)
_BENIGN_TLDS = ("com", "net", "org", "io", "co")
_LANL_WORDS = (
    "rainbow", "fluttershy", "pinkiepie", "applejack", "twilight", "rarity",
    "spike", "celestia", "luna", "cadance", "shining", "discord", "zecora",
    "trixie", "scootaloo", "sweetie", "bigmac", "granny", "braeburn", "gilda",
)


def _syllables(rng: random.Random, count: int) -> str:
    return "".join(
        rng.choice(_CONSONANTS) + rng.choice(_VOWELS) for _ in range(count)
    )


class DomainNameFactory:
    """Seeded generator of unique domain names per naming family."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._issued: set[str] = set()

    def _unique(self, make) -> str:
        for _ in range(10_000):
            name = make()
            if name not in self._issued:
                self._issued.add(name)
                return name
        raise RuntimeError("domain namespace exhausted")

    def benign(self) -> str:
        """Pronounceable two-word benign name."""
        rng = self._rng

        def make() -> str:
            words = rng.sample(_WORDS, 2)
            sep = rng.choice(("", "-", ""))
            return f"{words[0]}{sep}{words[1]}.{rng.choice(_BENIGN_TLDS)}"

        return self._unique(make)

    def benign_service(self) -> str:
        """Benign automated-service name (updaters, CDNs, trackers)."""
        rng = self._rng

        def make() -> str:
            stem = rng.choice(("update", "sync", "cdn", "telemetry", "api", "feed"))
            return f"{stem}-{_syllables(rng, 2)}.{rng.choice(_BENIGN_TLDS)}"

        return self._unique(make)

    def attacker_ru(self) -> str:
        """Long pseudo-pronounceable ``.ru`` name (Figure 7 style)."""
        return self._unique(lambda: f"{_syllables(self._rng, 8)}.ru")

    def attacker_org(self) -> str:
        """Ramdo-style 15-16 char random ``.org`` name (Figure 8 style)."""
        rng = self._rng

        def make() -> str:
            length = rng.choice((15, 16))
            return "".join(
                rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(length)
            ) + ".org"

        return self._unique(make)

    def dga_short_info(self) -> str:
        """4-5 character ``.info`` DGA name (Section VI-C cluster)."""
        rng = self._rng

        def make() -> str:
            length = rng.choice((4, 5))
            return "".join(
                rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(length)
            ) + ".info"

        return self._unique(make)

    def dga_hex_info(self) -> str:
        """20 hex character ``.info`` DGA name (Section VI-D cluster)."""
        rng = self._rng

        def make() -> str:
            return "".join(rng.choice("0123456789abcdef") for _ in range(20)) + ".info"

        return self._unique(make)

    def lanl_anonymized(self) -> str:
        """LANL-style anonymized name, folded at the third level."""
        rng = self._rng

        def make() -> str:
            stem = rng.choice(_LANL_WORDS)
            suffix = _syllables(rng, 2)
            return f"{stem}{suffix}.c{rng.randint(1, 4)}"

        return self._unique(make)

    def lanl_benign(self) -> str:
        """Anonymized benign LANL name."""
        return self._unique(
            lambda: f"{_syllables(self._rng, 3)}.n{self._rng.randint(1, 9)}"
        )


# ---------------------------------------------------------------------------
# Adversarial DGA families (per-family seeded streams + label recovery)
# ---------------------------------------------------------------------------

#: Families the adversarial campaign library can rotate through.
ADVERSARIAL_DGA_FAMILIES = ("chardist", "dictionary", "hashhex")

_HEX_CHARS = frozenset("0123456789abcdef")

#: Character weights of the ``chardist`` family: deliberately skewed
#: toward letters that are rare in English (and absent from hex), so
#: the family is separable from both benign names and the other two.
_CHARDIST_ALPHABET = "qxzjwkvygphmnrstu"
_CHARDIST_WEIGHTS = (9, 9, 9, 8, 8, 7, 6, 5, 4, 3, 3, 2, 2, 2, 2, 1, 1)


def _word_decomposition(label: str) -> bool:
    """Whether ``label`` splits fully into words from :data:`_WORDS`."""
    reachable = [False] * (len(label) + 1)
    reachable[0] = True
    for end in range(1, len(label) + 1):
        for word in _WORDS:
            start = end - len(word)
            if start >= 0 and reachable[start] \
                    and label[start:end] == word:
                reachable[end] = True
                break
    return reachable[len(label)]


def classify_dga(domain: str) -> str | None:
    """Recover the adversarial DGA family label of a generated name.

    Purely structural on the leftmost label (all three families share
    the paper's ``.info`` TLD, Section VI): 16+ hex characters is
    ``hashhex``; a full decomposition into dictionary words is
    ``dictionary``; a 10+ letter string that does neither is
    ``chardist``.  Returns ``None`` for anything else -- benign names
    never carry the ``.info`` TLD in this world, so false labels
    cannot arise from the benign workload.
    """
    label, _, tld = domain.partition(".")
    if tld != "info" or not label:
        return None
    if len(label) >= 16 and all(c in _HEX_CHARS for c in label):
        return "hashhex"
    if _word_decomposition(label):
        return "dictionary"
    if len(label) >= 10 and label.isalpha():
        return "chardist"
    return None


class DgaFamily:
    """One adversarial DGA family as a standalone seeded stream.

    Unlike :class:`DomainNameFactory` (which shares the world's
    randomness stream), each instance derives its own
    ``random.Random`` from ``(family, seed)`` -- two instances with
    the same arguments generate byte-identical sequences regardless of
    what else the world generated in between.  Every emitted name
    classifies back to its family via :func:`classify_dga` (generators
    reroll collisions with the other families' structures).
    """

    def __init__(self, family: str, seed: int) -> None:
        if family not in ADVERSARIAL_DGA_FAMILIES:
            raise ValueError(
                f"unknown DGA family {family!r}; "
                f"expected one of {ADVERSARIAL_DGA_FAMILIES}"
            )
        self.family = family
        self.seed = seed
        self._rng = random.Random(
            (zlib.crc32(family.encode()) << 17) ^ (seed & 0xFFFFFFFF)
        )
        self._issued: set[str] = set()

    def _make(self) -> str:
        rng = self._rng
        if self.family == "hashhex":
            length = rng.randint(16, 24)
            return "".join(
                rng.choice("0123456789abcdef") for _ in range(length)
            ) + ".info"
        if self.family == "dictionary":
            words = rng.sample(_WORDS, rng.randint(2, 3))
            return "".join(words) + ".info"
        length = rng.randint(10, 14)
        return "".join(
            rng.choices(_CHARDIST_ALPHABET, weights=_CHARDIST_WEIGHTS,
                        k=length)
        ) + ".info"

    def generate(self, count: int) -> list[str]:
        """The next ``count`` unique names of this family's stream."""
        names: list[str] = []
        for _ in range(count):
            for _ in range(10_000):
                name = self._make()
                if name not in self._issued \
                        and classify_dga(name) == self.family:
                    self._issued.add(name)
                    names.append(name)
                    break
            else:
                raise RuntimeError(
                    f"DGA namespace exhausted for {self.family}"
                )
        return names
