"""Domain-name generators for the synthetic world.

Produces the naming families observed in the paper's case studies:

* pronounceable benign names ("parkside-media.com");
* attacker throwaway names, including the ``.ru`` style from Figure 7
  ("usteeptyshehoaboochu.ru") and the ``.org`` Ramdo style of Figure 8;
* the two DGA clusters of Section VI: 4-5 character ``.info`` names
  (``mgwg.info``) and 20-character hex ``.info`` names
  (``f0371288e0a20a541328.info``);
* anonymized LANL-style names (``rainbow-.c3``) where top-level labels
  are stripped by anonymization.

All generators draw from an injected ``random.Random`` so the world is
a pure function of its seed.
"""

from __future__ import annotations

import random

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"
_WORDS = (
    "park", "side", "media", "cloud", "shop", "news", "tech", "data",
    "blue", "green", "fast", "smart", "prime", "metro", "global", "daily",
    "river", "stone", "north", "pixel", "cargo", "solar", "atlas", "nova",
    "orbit", "cedar", "maple", "swift", "quill", "ember", "haven", "crest",
)
_BENIGN_TLDS = ("com", "net", "org", "io", "co")
_LANL_WORDS = (
    "rainbow", "fluttershy", "pinkiepie", "applejack", "twilight", "rarity",
    "spike", "celestia", "luna", "cadance", "shining", "discord", "zecora",
    "trixie", "scootaloo", "sweetie", "bigmac", "granny", "braeburn", "gilda",
)


def _syllables(rng: random.Random, count: int) -> str:
    return "".join(
        rng.choice(_CONSONANTS) + rng.choice(_VOWELS) for _ in range(count)
    )


class DomainNameFactory:
    """Seeded generator of unique domain names per naming family."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._issued: set[str] = set()

    def _unique(self, make) -> str:
        for _ in range(10_000):
            name = make()
            if name not in self._issued:
                self._issued.add(name)
                return name
        raise RuntimeError("domain namespace exhausted")

    def benign(self) -> str:
        """Pronounceable two-word benign name."""
        rng = self._rng

        def make() -> str:
            words = rng.sample(_WORDS, 2)
            sep = rng.choice(("", "-", ""))
            return f"{words[0]}{sep}{words[1]}.{rng.choice(_BENIGN_TLDS)}"

        return self._unique(make)

    def benign_service(self) -> str:
        """Benign automated-service name (updaters, CDNs, trackers)."""
        rng = self._rng

        def make() -> str:
            stem = rng.choice(("update", "sync", "cdn", "telemetry", "api", "feed"))
            return f"{stem}-{_syllables(rng, 2)}.{rng.choice(_BENIGN_TLDS)}"

        return self._unique(make)

    def attacker_ru(self) -> str:
        """Long pseudo-pronounceable ``.ru`` name (Figure 7 style)."""
        return self._unique(lambda: f"{_syllables(self._rng, 8)}.ru")

    def attacker_org(self) -> str:
        """Ramdo-style 15-16 char random ``.org`` name (Figure 8 style)."""
        rng = self._rng

        def make() -> str:
            length = rng.choice((15, 16))
            return "".join(
                rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(length)
            ) + ".org"

        return self._unique(make)

    def dga_short_info(self) -> str:
        """4-5 character ``.info`` DGA name (Section VI-C cluster)."""
        rng = self._rng

        def make() -> str:
            length = rng.choice((4, 5))
            return "".join(
                rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(length)
            ) + ".info"

        return self._unique(make)

    def dga_hex_info(self) -> str:
        """20 hex character ``.info`` DGA name (Section VI-D cluster)."""
        rng = self._rng

        def make() -> str:
            return "".join(rng.choice("0123456789abcdef") for _ in range(20)) + ".info"

        return self._unique(make)

    def lanl_anonymized(self) -> str:
        """LANL-style anonymized name, folded at the third level."""
        rng = self._rng

        def make() -> str:
            stem = rng.choice(_LANL_WORDS)
            suffix = _syllables(rng, 2)
            return f"{stem}{suffix}.c{rng.randint(1, 4)}"

        return self._unique(make)

    def lanl_benign(self) -> str:
        """Anonymized benign LANL name."""
        return self._unique(
            lambda: f"{_syllables(self._rng, 3)}.n{self._rng.randint(1, 9)}"
        )
