"""Synthetic enterprise ("AC") web-proxy dataset (Sections IV-A, VI).

The real AC corpus is 38 TB of proxy logs from a >100 000-host
enterprise, with DHCP/VPN churn and collectors in several timezones.
This generator reproduces every property the pipeline actually
exercises, at configurable scale:

* proxy records with URL, user-agent, referer, status code;
* collector-local timestamps (per-host timezone offsets) that
  normalization must shift to UTC;
* DHCP leases and VPN sessions rebinding host IPs daily, so IP->host
  resolution is required for host identity;
* subdomain-bearing destinations so second-level folding matters, and
  occasional bare-IP destinations that must be dropped;
* benign workload plus injected malware campaigns, including
  single-host infections and the two DGA clusters of Section VI;
* a WHOIS registry, a VirusTotal oracle with partial coverage, and a
  SOC IOC list for the hints mode.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..intel.ioc import IocList
from ..intel.virustotal import VirusTotalOracle
from ..intel.whois_db import WhoisDatabase
from ..logs.normalize import IpResolver, normalize_proxy_records
from ..logs.records import Connection, DhcpLease, ProxyRecord, VpnSession
from .attacks import Campaign, CampaignFactory, CampaignSpec
from .benign import BenignConfig, BenignWorkload, Visit
from .dga import DomainNameFactory
from .entities import EnterpriseModel, build_enterprise
from .ipspace import IpAllocator

SECONDS_PER_DAY = 86_400.0

_COLLECTOR_OFFSETS = (-8.0, -5.0, 0.0, 1.0, 8.0)
_URL_PATHS = ("/", "/index.html", "/api/v1/ping", "/logo.gif", "/news",
              "/search?q=report", "/static/app.js", "/tan2.html")


@dataclass(frozen=True)
class EnterpriseDatasetConfig:
    """Scale and attack-mix knobs for the synthetic AC world."""

    seed: int = 2014
    n_hosts: int = 120
    n_servers: int = 3
    bootstrap_days: int = 10
    operation_days: int = 12
    quiet_days: int = 4
    """Attack-free leading days so early history is clean."""

    popular_domains: int = 140
    churn_domains_per_day: int = 25
    browsing_visits_per_host: int = 14
    rare_auto_services_per_day: int = 3
    n_campaigns: int = 14
    single_host_campaign_rate: float = 0.3
    dga_campaign_count: int = 2
    vt_coverage: float = 0.65
    ioc_count: int = 10
    bare_ip_noise_per_day: int = 10

    @property
    def total_days(self) -> int:
        return self.bootstrap_days + self.operation_days


@dataclass
class EnterpriseDataset:
    """The generated world plus its oracles and ground truth."""

    config: EnterpriseDatasetConfig
    model: EnterpriseModel
    whois: WhoisDatabase
    campaigns: list[Campaign]
    collector_offset: dict[str, float]
    _workload: BenignWorkload = field(repr=False, default=None)
    _factory: CampaignFactory = field(repr=False, default=None)
    _rng: random.Random = field(repr=False, default=None)
    _ips: IpAllocator = field(repr=False, default=None)
    _lease_cache: dict[int, list] = field(repr=False, default_factory=dict)
    _benign_domains: set[str] = field(repr=False, default_factory=set)

    # -- ground truth ----------------------------------------------------

    @property
    def malicious_domains(self) -> set[str]:
        return {d for c in self.campaigns for d in c.domains}

    def campaigns_active_on(self, day: int) -> list[Campaign]:
        return [c for c in self.campaigns if day in c.active_days]

    def build_virustotal(self) -> VirusTotalOracle:
        """VT oracle with partial coverage of the true malicious set."""
        return VirusTotalOracle(
            self.malicious_domains,
            self._benign_domains,
            coverage=self.config.vt_coverage,
            seed=self.config.seed ^ 0x5EED,
        )

    def build_ioc_list(self) -> IocList:
        """The SOC's IOC list: a deterministic slice of true campaign
        domains (what incident response has already confirmed)."""
        ordered = sorted(self.malicious_domains)
        rng = random.Random(self.config.seed ^ 0x10C)
        count = min(self.config.ioc_count, len(ordered))
        return IocList(rng.sample(ordered, count))

    # -- leases ------------------------------------------------------------

    def day_leases(self, day: int) -> list[DhcpLease | VpnSession]:
        """DHCP/VPN bindings for one day (each host one lease/session)."""
        cached = self._lease_cache.get(day)
        if cached is not None:
            return cached
        rng = random.Random((self.config.seed << 8) ^ day)
        start = day * SECONDS_PER_DAY
        end = start + SECONDS_PER_DAY
        indexes = list(range(len(self.model.hosts)))
        rng.shuffle(indexes)
        leases: list[DhcpLease | VpnSession] = []
        for host, index in zip(self.model.hosts, indexes):
            if rng.random() < host.mobility:
                leases.append(
                    VpnSession(
                        ip=self._ips.vpn_pool_ip(index),
                        hostname=host.name, start=start, end=end,
                    )
                )
            else:
                leases.append(
                    DhcpLease(
                        ip=self._ips.dhcp_pool_ip(index),
                        hostname=host.name, start=start, end=end,
                    )
                )
        self._lease_cache[day] = leases
        return leases

    def resolver_for_day(self, day: int) -> IpResolver:
        return IpResolver(self.day_leases(day))

    # -- raw records -------------------------------------------------------

    def _visit_to_record(
        self, visit: Visit, ip_of_host: dict[str, str], rng: random.Random
    ) -> ProxyRecord:
        offset = self.collector_offset[visit.host]
        prefix = rng.choice(("", "", "www.", "cdn.", "api."))
        status = 200 if rng.random() < 0.95 else rng.choice((301, 404, 503))
        return ProxyRecord(
            timestamp=visit.timestamp + offset * 3600.0,
            source_ip=ip_of_host[visit.host],
            destination=prefix + visit.domain,
            destination_ip=visit.resolved_ip,
            url_path=rng.choice(_URL_PATHS),
            method="GET" if rng.random() < 0.9 else "POST",
            status_code=status,
            user_agent=visit.user_agent,
            referer=visit.referer,
            tz_offset_hours=offset,
        )

    def day_proxy_records(self, day: int) -> list[ProxyRecord]:
        """Raw (pre-normalization) proxy records for one day."""
        rng = random.Random((self.config.seed << 12) ^ (day * 7919))
        ip_of_host = {
            lease.hostname: lease.ip for lease in self.day_leases(day)
        }
        visits = self._workload.day_visits(day)
        self._benign_domains.update(v.domain for v in visits)
        for campaign in self.campaigns_active_on(day):
            visits = visits + self._factory.day_visits(campaign, day)

        records = [self._visit_to_record(v, ip_of_host, rng) for v in visits]

        # Direct-to-IP noise the normalizer must drop.
        hosts = self.model.hosts
        for _ in range(self.config.bare_ip_noise_per_day):
            host = rng.choice(hosts)
            records.append(
                ProxyRecord(
                    timestamp=day * SECONDS_PER_DAY + rng.uniform(0, SECONDS_PER_DAY),
                    source_ip=ip_of_host[host.name],
                    destination=f"{rng.randint(11, 200)}.{rng.randint(0, 255)}"
                                f".{rng.randint(0, 255)}.{rng.randint(1, 254)}",
                    user_agent=host.primary_ua(),
                )
            )
        records.sort(key=lambda r: r.timestamp)
        return records

    # -- normalized convenience --------------------------------------------

    def day_connections(self, day: int) -> list[Connection]:
        """Normalized connections for one day (UTC, hostnames, folded)."""
        return list(
            normalize_proxy_records(
                self.day_proxy_records(day),
                self.resolver_for_day(day),
                fold_level=2,
            )
        )

    def day_batches(
        self, first_day: int = 0, last_day: int | None = None
    ) -> list[tuple[int, list[Connection]]]:
        """Normalized (day, connections) batches over a day range."""
        last = self.config.total_days if last_day is None else last_day
        return [
            (day, self.day_connections(day)) for day in range(first_day, last)
        ]


def _campaign_specs(
    config: EnterpriseDatasetConfig, rng: random.Random
) -> list[CampaignSpec]:
    """The campaign mix: ordinary, single-host, and DGA campaigns."""
    specs: list[CampaignSpec] = []
    ordinary = config.n_campaigns - config.dga_campaign_count
    for _ in range(ordinary):
        single = rng.random() < config.single_host_campaign_rate
        specs.append(
            CampaignSpec(
                n_hosts=1 if single else rng.randint(2, 4),
                n_delivery=rng.randint(1, 3),
                n_cc=1,
                beacon_period=rng.choice((120.0, 300.0, 600.0, 1200.0)),
                beacon_jitter=rng.uniform(1.0, 5.0),
                duration_days=rng.randint(2, 6),
            )
        )
    # The Section VI DGA clusters: ten .info domains each; the hex
    # cluster is partly unregistered at observation time.
    specs.append(
        CampaignSpec(
            n_hosts=2, n_delivery=2, n_cc=1, beacon_period=300.0,
            beacon_jitter=3.0, dga_style="short_info", dga_cluster=10,
            duration_days=2,
        )
    )
    for _ in range(max(config.dga_campaign_count - 1, 0)):
        specs.append(
            CampaignSpec(
                n_hosts=2, n_delivery=2, n_cc=1, beacon_period=600.0,
                beacon_jitter=3.0, dga_style="hex_info", dga_cluster=10,
                duration_days=2, unregistered_rate=0.5,
            )
        )
    return specs


def generate_enterprise_dataset(
    config: EnterpriseDatasetConfig | None = None,
) -> EnterpriseDataset:
    """Build the full synthetic AC world from a seed."""
    config = config or EnterpriseDatasetConfig()
    rng = random.Random(config.seed)
    model = build_enterprise(config.n_hosts, rng, n_servers=config.n_servers)
    ips = IpAllocator(seed=rng.randrange(2**31))
    names = DomainNameFactory(rng)
    whois = WhoisDatabase()

    benign_config = BenignConfig(
        popular_domains=config.popular_domains,
        browsing_visits_per_host=config.browsing_visits_per_host,
        churn_domains_per_day=config.churn_domains_per_day,
        rare_auto_services_per_day=config.rare_auto_services_per_day,
    )
    workload = BenignWorkload(model, names, ips, whois, rng, benign_config)
    factory = CampaignFactory(names, ips, whois, rng, name_style="enterprise")

    collector_offset = {
        host.name: rng.choice(_COLLECTOR_OFFSETS) for host in model.hosts
    }

    campaigns: list[Campaign] = []
    for spec in _campaign_specs(config, rng):
        last_start = config.total_days - spec.duration_days
        start_day = rng.randint(config.quiet_days, max(config.quiet_days, last_start))
        campaigns.append(factory.create(start_day, model.hosts, spec))

    dataset = EnterpriseDataset(
        config=config,
        model=model,
        whois=whois,
        campaigns=campaigns,
        collector_offset=collector_offset,
    )
    dataset._workload = workload
    dataset._factory = factory
    dataset._rng = rng
    dataset._ips = ips
    return dataset
