"""Attack-campaign simulation (Section II-A's infection pattern).

Each campaign reproduces the early-stage pattern the paper detects:

* **delivery** -- the victim host visits a short chain of attacker
  domains within minutes (redirection through the malicious
  infrastructure), with no referer and sometimes a rare UA;
* **foothold / C&C** -- a backdoor beacons to the C&C domain at a
  regular period with bounded jitter for the rest of the day (and on
  subsequent days for multi-day campaigns);
* **infrastructure locality** -- campaign domains are young, short
  registrations co-located in the attacker's /24 (some only /16), and
  DGA campaigns may use domains *not yet registered* at detection time
  (Section VI-D).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from ..intel.whois_db import WhoisDatabase
from .benign import Visit
from .dga import DomainNameFactory
from .entities import Host
from .ipspace import IpAllocator

SECONDS_PER_DAY = 86_400.0
YEAR = 365 * SECONDS_PER_DAY


@dataclass(frozen=True)
class CampaignSpec:
    """Shape parameters for one campaign."""

    n_hosts: int = 2
    n_delivery: int = 2
    n_cc: int = 1
    beacon_period: float = 600.0
    beacon_jitter: float = 3.0
    dga_style: str | None = None
    """``None``, ``"short_info"`` or ``"hex_info"`` -- selects the DGA
    naming family; DGA campaigns add a cluster of sibling domains."""

    dga_cluster: int = 0
    duration_days: int = 1
    unregistered_rate: float = 0.0
    """Fraction of domains with no WHOIS record at observation time."""

    seed: int | None = None
    """Per-campaign seed.  ``None`` (the default) draws beacon timing
    from the factory's shared randomness stream, which forces
    memoization of realized days; with a seed set,
    :meth:`CampaignFactory.day_visits` derives an independent
    ``random.Random`` per (seed, campaign, day), so a realized day is
    a pure function of the spec -- byte-identical regardless of
    generation order.  The adversarial campaign library
    (:mod:`repro.synthetic.campaigns`) relies on this."""


@dataclass
class Campaign:
    """One materialized campaign with its ground truth."""

    campaign_id: str
    start_day: int
    spec: CampaignSpec
    hosts: list[Host]
    delivery_domains: list[str]
    cc_domains: list[str]
    dga_domains: list[str] = field(default_factory=list)
    domain_ips: dict[str, str] = field(default_factory=dict)
    rare_ua: str = ""

    @property
    def domains(self) -> list[str]:
        return self.delivery_domains + self.cc_domains + self.dga_domains

    @property
    def host_names(self) -> list[str]:
        return [host.name for host in self.hosts]

    @property
    def active_days(self) -> range:
        return range(self.start_day, self.start_day + self.spec.duration_days)


class CampaignFactory:
    """Mints campaigns with registered infrastructure and ground truth."""

    def __init__(
        self,
        names: DomainNameFactory,
        ips: IpAllocator,
        whois: WhoisDatabase,
        rng: random.Random,
        *,
        epoch: float = 0.0,
        name_style: str = "enterprise",
    ) -> None:
        self.names = names
        self.ips = ips
        self.whois = whois
        self.rng = rng
        self.epoch = epoch
        self.name_style = name_style
        self._count = 0
        self._day_cache: dict[tuple[str, int], list[Visit]] = {}

    def _mint_name(self, style: str | None) -> str:
        if style == "short_info":
            return self.names.dga_short_info()
        if style == "hex_info":
            return self.names.dga_hex_info()
        if self.name_style == "lanl":
            return self.names.lanl_anonymized()
        return self.rng.choice(
            (self.names.attacker_ru, self.names.attacker_org)
        )()

    def _register_attacker(self, domain: str, start_day: int) -> None:
        """Young, short registration -- the attacker WHOIS profile."""
        observed = self.epoch + start_day * SECONDS_PER_DAY
        registered = observed - self.rng.uniform(1, 30) * SECONDS_PER_DAY
        expires = registered + self.rng.uniform(0.9, 1.1) * YEAR
        self.whois.register(domain, registered, expires)

    def create(
        self,
        start_day: int,
        candidate_hosts: list[Host],
        spec: CampaignSpec,
    ) -> Campaign:
        """Materialize one campaign starting on ``start_day``."""
        self._count += 1
        hosts = self.rng.sample(
            candidate_hosts, min(spec.n_hosts, len(candidate_hosts))
        )
        block = self.ips.attacker_block()
        sibling = self.ips.sibling_block_16(block)

        def mint(style: str | None) -> str:
            domain = self._mint_name(style)
            if self.rng.random() >= spec.unregistered_rate:
                self._register_attacker(domain, start_day)
            # Most infrastructure shares the /24; some only the /16.
            chosen = block if self.rng.random() < 0.7 else sibling
            ip = self.ips.ip_in_block(chosen)
            domain_ips[domain] = ip
            return domain

        domain_ips: dict[str, str] = {}
        delivery = [mint(spec.dga_style) for _ in range(spec.n_delivery)]
        cc = [mint(spec.dga_style) for _ in range(spec.n_cc)]
        dga = [mint(spec.dga_style) for _ in range(spec.dga_cluster)]

        rare_ua = ""
        if self.name_style == "enterprise" and self.rng.random() < 0.7:
            rare_ua = f"Backdoor/{self._count}.{self.rng.randint(0, 99)}"

        return Campaign(
            campaign_id=f"campaign{self._count:03d}",
            start_day=start_day,
            spec=spec,
            hosts=hosts,
            delivery_domains=delivery,
            cc_domains=cc,
            dga_domains=dga,
            domain_ips=domain_ips,
            rare_ua=rare_ua,
        )

    # ------------------------------------------------------------------

    def day_visits(self, campaign: Campaign, day: int) -> list[Visit]:
        """Traffic the campaign generates on ``day`` (empty if inactive).

        Memoized per (campaign, day): the factory shares one randomness
        stream, so regeneration would shift every beacon -- repeated
        reads must return the same realized day.
        """
        if day not in campaign.active_days:
            return []
        cache_key = (campaign.campaign_id, day)
        cached = self._day_cache.get(cache_key)
        if cached is not None:
            return cached
        base = self.epoch + day * SECONDS_PER_DAY
        if campaign.spec.seed is not None:
            rng = random.Random(
                (campaign.spec.seed << 20)
                ^ (zlib.crc32(campaign.campaign_id.encode()) << 4)
                ^ day
            )
        else:
            rng = self.rng
        visits: list[Visit] = []
        infection_time = base + rng.uniform(8 * 3600.0, 13 * 3600.0)

        for index, host in enumerate(campaign.hosts):
            ua = campaign.rare_ua or (
                host.user_agents[0] if host.user_agents else ""
            )
            # Hosts in the same campaign get compromised within a short
            # window of each other (phishing wave).
            host_infection = infection_time + index * rng.uniform(10.0, 300.0)

            if day == campaign.start_day:
                # Delivery chain: domains visited seconds-to-minutes apart.
                t = host_infection
                for domain in campaign.delivery_domains:
                    visits.append(
                        Visit(t, host.name, domain,
                              campaign.domain_ips[domain], ua, "")
                    )
                    t += rng.uniform(5.0, 120.0)
                # DGA cluster probing (e.g., Ramdo's .org set) right after.
                for domain in campaign.dga_domains:
                    visits.append(
                        Visit(t, host.name, domain,
                              campaign.domain_ips[domain], ua, "")
                    )
                    t += rng.uniform(2.0, 30.0)
                beacon_start = t + rng.uniform(10.0, 120.0)
            else:
                beacon_start = base + rng.uniform(0.0, campaign.spec.beacon_period)

            # Periodic C&C beaconing until end of day.
            for domain in campaign.cc_domains:
                t = beacon_start
                end = base + SECONDS_PER_DAY - 60.0
                while t < end:
                    visits.append(
                        Visit(t, host.name, domain,
                              campaign.domain_ips[domain], ua, "")
                    )
                    t += campaign.spec.beacon_period + rng.uniform(
                        -campaign.spec.beacon_jitter, campaign.spec.beacon_jitter
                    )
        visits.sort(key=lambda v: v.timestamp)
        self._day_cache[cache_key] = visits
        return visits
