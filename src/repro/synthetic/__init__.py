"""Synthetic world: enterprises, benign workloads, attack campaigns."""

from .attacks import Campaign, CampaignFactory, CampaignSpec
from .benign import BenignConfig, BenignWorkload, Visit
from .campaigns import (
    CAMPAIGN_NAMES,
    FLEET_CAMPAIGN_NAMES,
    AdversarialCampaignSpec,
    RealizedCampaign,
    WorldView,
    campaign_connections,
    campaign_dns_records,
    campaign_proxy_records,
    churn_fleet_config,
    realize_campaign,
)
from .certs import (
    fleet_cert_observations,
    fleet_rdap_documents,
    write_intel_fixtures,
)
from .dga import (
    ADVERSARIAL_DGA_FAMILIES,
    DgaFamily,
    DomainNameFactory,
    classify_dga,
)
from .entities import POPULAR_USER_AGENTS, EnterpriseModel, Host, build_enterprise
from .enterprise import (
    EnterpriseDataset,
    EnterpriseDatasetConfig,
    generate_enterprise_dataset,
)
from .fleet import (
    FleetDataset,
    FleetScenarioConfig,
    SharedCampaignTruth,
    build_fleet_whois,
    generate_fleet_dataset,
    train_enterprise_detector,
    write_enterprise_layout,
    write_fleet_layout,
)
from .ipspace import IpAllocator
from .lanl import (
    CASE_DATES,
    TRAINING_DATES,
    LanlCampaignTruth,
    LanlConfig,
    LanlDataset,
    generate_lanl_dataset,
)

__all__ = [
    "Campaign",
    "CampaignFactory",
    "CampaignSpec",
    "BenignConfig",
    "BenignWorkload",
    "Visit",
    "ADVERSARIAL_DGA_FAMILIES",
    "CAMPAIGN_NAMES",
    "FLEET_CAMPAIGN_NAMES",
    "AdversarialCampaignSpec",
    "RealizedCampaign",
    "WorldView",
    "campaign_connections",
    "campaign_dns_records",
    "campaign_proxy_records",
    "churn_fleet_config",
    "classify_dga",
    "realize_campaign",
    "DgaFamily",
    "DomainNameFactory",
    "POPULAR_USER_AGENTS",
    "EnterpriseModel",
    "Host",
    "build_enterprise",
    "EnterpriseDataset",
    "EnterpriseDatasetConfig",
    "FleetDataset",
    "FleetScenarioConfig",
    "SharedCampaignTruth",
    "build_fleet_whois",
    "fleet_cert_observations",
    "fleet_rdap_documents",
    "write_intel_fixtures",
    "generate_enterprise_dataset",
    "generate_fleet_dataset",
    "train_enterprise_detector",
    "write_enterprise_layout",
    "write_fleet_layout",
    "IpAllocator",
    "CASE_DATES",
    "TRAINING_DATES",
    "LanlCampaignTruth",
    "LanlConfig",
    "LanlDataset",
    "generate_lanl_dataset",
]
