"""Composable adversarial campaign library (evasion scenarios).

The paper's detectors rest on behavioral signals a motivated attacker
can deliberately degrade: beaconing regularity (the dynamic-histogram
test of Section IV-C), new/rare destinations (the Figure 2 funnel),
WHOIS age, and multi-host graph association.  This module provides a
registry of campaign archetypes, each with an **evasion strength**
knob in ``[0, 1]`` mapping continuously from the cooperative attacker
the happy-path tests use (strength 0) to a detector-aware adversary
(strength 1):

``jitter``
    Randomized beacon timing.  Strength scales the per-beacon jitter
    from the paper's ±3 s up to a full period, pushing the Jeffrey
    divergence of the inter-arrival histogram past ``JT``.
``dga-chardist`` / ``dga-dictionary`` / ``dga-hashhex``
    Domain rotation through one of the three seeded DGA families of
    :mod:`repro.synthetic.dga`.  Strength scales the rotation rate:
    more domains per day, each dwelled on for fewer beacons, until the
    per-(host, domain) series drops below the automation detector's
    ``min_connections`` evidence threshold.
``cdn-fronting``
    Domain fronting behind the world's popular/CDN core.  Strength is
    the fraction of C&C traffic carried by whitelisted popular
    domains (which the reduction funnel never surfaces as rare); the
    attacker's own domains keep only the thinned, gappy residue.
``slow-burn``
    A multi-week low-and-slow campaign.  Strength stretches the
    beacon period toward hours and skips days entirely; each
    activation burns a fresh domain, so the campaign keeps re-entering
    the new-domain funnel across window rollovers (and any
    checkpoint/restore in between).

A sixth, fleet-level archetype -- ``tenant-churn`` (enterprises
joining and leaving mid-fleet) -- is built by
:func:`churn_fleet_config` on top of
:class:`~repro.synthetic.fleet.FleetScenarioConfig` rather than
realized against a single-tenant world.

**Determinism contract.**  Realization and per-day emission derive
every ``random.Random`` from ``(spec.seed, spec.campaign, day)``:
:func:`realize_campaign` twice with equal specs yields byte-identical
campaigns, and :meth:`RealizedCampaign.day_visits` is a pure function
of (spec, day) -- independent of call order, process, or what else
the world generated.  Attacker namespaces are disjoint from the
benign world's by construction: domains use the ``.ru``/``.info``
TLDs (never the benign ``com/net/org/io/co`` set nor LANL's
``.cN``/``.nN``), and infrastructure lives in ``192.0.0.0/16``, which
:class:`~repro.synthetic.ipspace.IpAllocator` explicitly avoids.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from .benign import Visit
from .dga import ADVERSARIAL_DGA_FAMILIES, DgaFamily, _syllables

SECONDS_PER_DAY = 86_400.0
DAY_END_MARGIN = 60.0

#: Fresh pool region the DGA archetypes may rotate through per day.
_DGA_DOMAINS_PER_DAY = 48

#: Campaign archetypes realizable against one tenant's world.
CAMPAIGN_NAMES = (
    "jitter",
    "dga-chardist",
    "dga-dictionary",
    "dga-hashhex",
    "cdn-fronting",
    "slow-burn",
)

#: Fleet-level archetypes (built as fleet scenarios, not realized).
FLEET_CAMPAIGN_NAMES = ("tenant-churn",)


def _mix(*parts: int | str) -> int:
    """Deterministic FNV-style mix of ints and strings into a seed."""
    acc = 0x811C9DC5
    for part in parts:
        value = zlib.crc32(part.encode()) if isinstance(part, str) \
            else (part & 0xFFFFFFFFFFFF)
        acc = ((acc ^ value) * 0x01000193) & 0xFFFFFFFFFFFF
    return acc


@dataclass(frozen=True)
class AdversarialCampaignSpec:
    """One adversarial campaign: archetype, strength knob, seed.

    ``start_day`` and day indexes throughout are *absolute* day
    indexes of the target world (timestamps land in
    ``[day * 86400, (day + 1) * 86400)``), so a realized campaign can
    be overlaid directly onto a dataset's day records.
    """

    campaign: str
    strength: float = 0.0
    seed: int = 7
    start_day: int = 0
    duration_days: int = 2
    n_hosts: int = 3
    beacon_period: float = 600.0

    def __post_init__(self) -> None:
        if self.campaign not in CAMPAIGN_NAMES:
            raise ValueError(
                f"unknown campaign {self.campaign!r}; "
                f"expected one of {CAMPAIGN_NAMES}"
            )
        if not 0.0 <= self.strength <= 1.0:
            raise ValueError(
                f"strength must be in [0, 1], got {self.strength}"
            )
        if self.duration_days < 1:
            raise ValueError("duration_days must be at least 1")
        if self.n_hosts < 1:
            raise ValueError("n_hosts must be at least 1")
        if self.beacon_period <= 0:
            raise ValueError("beacon_period must be positive")

    @property
    def active_days(self) -> range:
        return range(self.start_day, self.start_day + self.duration_days)


@dataclass(frozen=True)
class WorldView:
    """The slice of a tenant world a campaign realization needs."""

    hosts: tuple[str, ...]
    popular_sites: tuple[tuple[str, str], ...]
    """(domain, resolved IP) pairs of the popular/CDN core."""

    host_uas: tuple[tuple[str, str], ...] = ()
    """(host, primary UA) pairs; empty for the DNS world."""

    @classmethod
    def from_dataset(cls, dataset) -> "WorldView":
        """Build from a generated LANL or enterprise dataset."""
        return cls(
            hosts=tuple(h.name for h in dataset.model.hosts),
            popular_sites=dataset._workload.popular_sites,
            host_uas=tuple(
                (h.name, h.primary_ua()) for h in dataset.model.hosts
            ),
        )


@dataclass
class RealizedCampaign:
    """A campaign materialized against one world, with ground truth."""

    spec: AdversarialCampaignSpec
    hosts: tuple[str, ...]
    delivery_domains: tuple[str, ...]
    cc_domains: tuple[str, ...]
    """Every attacker-owned C&C domain across the whole horizon (the
    rotating archetypes schedule a per-day subset)."""

    domain_ips: dict[str, str]
    dga_labels: dict[str, str] = field(default_factory=dict)
    fronted_sites: tuple[tuple[str, str], ...] = ()
    """Popular (domain, IP) pairs carrying fronted C&C traffic."""

    whois_records: tuple[tuple[str, float, float], ...] = ()
    """(domain, registered, expires) for registered attacker domains;
    domains absent here are unregistered at observation time."""

    host_ua: dict[str, str] = field(default_factory=dict)

    @property
    def attacker_domains(self) -> tuple[str, ...]:
        """All attacker-owned domains (delivery chain plus C&C)."""
        return self.delivery_domains + self.cc_domains

    @property
    def active_days(self) -> range:
        return self.spec.active_days

    def truth_domains(self) -> set[str]:
        """The detectable ground truth: attacker domains that actually
        carry traffic on some active day (fronted popular domains are
        excluded -- they are not attacker-owned)."""
        truth: set[str] = set()
        for day in self.active_days:
            truth.update(d for _, d in self._day_schedule(day))
        truth.update(self.delivery_domains)
        return truth

    # ------------------------------------------------------------------
    # Per-day emission (pure in (spec, day))
    # ------------------------------------------------------------------

    def _rng(self, day: int, stage: str) -> random.Random:
        return random.Random(
            _mix(self.spec.seed, self.spec.campaign, stage, day)
        )

    def _beacon_count(self) -> int:
        return int(SECONDS_PER_DAY // self.spec.beacon_period)

    def _day_schedule(self, day: int) -> list[tuple[int, str]]:
        """(slot, domain) beacon schedule for one day.

        Slots index the day's nominal beacon grid (period-spaced).  The
        rotating archetypes map contiguous slot runs to successive
        domains; the fixed archetypes use their single C&C domain, and
        ``slow-burn`` skips days and stretches the grid.
        """
        spec = self.spec
        if day not in self.active_days:
            return []
        offset = day - spec.start_day
        slots = self._beacon_count()
        if spec.campaign.startswith("dga-"):
            # Rotate through the day's fresh region of the domain pool
            # with exponentially distributed dwell runs.  The mean
            # dwell interpolates geometrically from "one domain all
            # day" (strength 0) down to ~2 beacons per domain
            # (strength 1), straddling the automation detector's
            # min_connections threshold smoothly.
            rng = self._rng(day, "sched")
            mean_dwell = slots ** (1.0 - spec.strength) \
                * 2.0 ** spec.strength
            pool = self.cc_domains
            region = offset * _DGA_DOMAINS_PER_DAY
            schedule: list[tuple[int, str]] = []
            slot = 0
            used = 0
            while slot < slots:
                run = int(round(rng.expovariate(1.0 / mean_dwell)))
                run = max(1, min(run, slots - slot))
                domain = pool[
                    (region + used % _DGA_DOMAINS_PER_DAY) % len(pool)
                ]
                used += 1
                schedule.extend(
                    (s, domain) for s in range(slot, slot + run)
                )
                slot += run
            return schedule
        if spec.campaign == "slow-burn":
            # Activate every Nth day with a fresh domain, a stretched
            # beacon grid, and probabilistic slot drops -- the
            # per-domain daily series thins toward (and below) the
            # detector's evidence threshold as strength rises.
            every = 1 + round(spec.strength * 2)
            if offset % every:
                return []
            rng = self._rng(day, "sched")
            stretch = 1 + round(spec.strength * 23)
            keep = 1.0 - 0.7 * spec.strength
            domain = self.cc_domains[
                (offset // every) % len(self.cc_domains)
            ]
            return [
                (slot, domain)
                for slot in range(0, slots, stretch)
                if rng.random() < keep
            ]
        domain = self.cc_domains[0]
        return [(slot, domain) for slot in range(slots)]

    def day_visits(self, day: int) -> list[Visit]:
        """The campaign's traffic on one absolute day, time-sorted.

        Byte-identical across calls and realizations: all randomness
        derives from ``(spec.seed, spec.campaign, day)``.  Days outside
        the active range yield no events, and every timestamp lies in
        ``[day * 86400, (day + 1) * 86400)``.
        """
        spec = self.spec
        schedule = self._day_schedule(day)
        if not schedule:
            return []
        rng = self._rng(day, "emit")
        base = day * SECONDS_PER_DAY
        end = base + SECONDS_PER_DAY - DAY_END_MARGIN
        jitter = 3.0
        if spec.campaign == "jitter":
            jitter = 3.0 + spec.strength * spec.beacon_period
        front_rate = spec.strength if spec.campaign == "cdn-fronting" \
            else 0.0
        visits: list[Visit] = []
        infection = base + rng.uniform(8 * 3600.0, 11 * 3600.0)

        for index, host in enumerate(self.hosts):
            ua = self.host_ua.get(host, "")
            beacon_start = base + rng.uniform(60.0, spec.beacon_period)
            if day == spec.start_day:
                # Delivery chain on the first day, minutes apart.
                t = infection + index * rng.uniform(10.0, 300.0)
                for domain in self.delivery_domains:
                    visits.append(Visit(
                        min(t, end), host, domain,
                        self.domain_ips[domain], ua, "",
                    ))
                    t += rng.uniform(5.0, 120.0)
            t = beacon_start
            previous_slot = 0
            for slot, domain in schedule:
                t += (slot - previous_slot) * spec.beacon_period \
                    + rng.uniform(-jitter, jitter)
                previous_slot = slot
                t = min(max(t, base), end)
                if rng.random() < front_rate:
                    front, front_ip = self.fronted_sites[
                        rng.randrange(len(self.fronted_sites))
                    ]
                    visits.append(Visit(t, host, front, front_ip, ua, ""))
                else:
                    visits.append(Visit(
                        t, host, domain, self.domain_ips[domain], ua, "",
                    ))
        visits.sort(key=lambda v: v.timestamp)
        return visits


# ---------------------------------------------------------------------------
# Realization
# ---------------------------------------------------------------------------

def _attacker_names(rng: random.Random, count: int) -> list[str]:
    """Unique ``.ru``-style attacker names from a dedicated stream."""
    names: list[str] = []
    seen: set[str] = set()
    while len(names) < count:
        name = f"{_syllables(rng, 7)}.ru"
        if name not in seen:
            seen.add(name)
            names.append(name)
    return names


def _cc_pool_size(spec: AdversarialCampaignSpec) -> int:
    """How many C&C domains the archetype can schedule in total."""
    if spec.campaign.startswith("dga-"):
        return spec.duration_days * _DGA_DOMAINS_PER_DAY
    if spec.campaign == "slow-burn":
        return spec.duration_days
    return 1


def realize_campaign(
    world: WorldView, spec: AdversarialCampaignSpec
) -> RealizedCampaign:
    """Materialize one adversarial campaign against a world view.

    Pure in its arguments: equal (world, spec) pairs produce
    byte-identical campaigns.  Nothing in the world is mutated --
    registrations the enterprise pipeline needs are returned as
    :attr:`RealizedCampaign.whois_records` for the caller to apply.
    """
    rng = random.Random(_mix(spec.seed, spec.campaign, "realize"))
    hosts = tuple(rng.sample(world.hosts,
                             min(spec.n_hosts, len(world.hosts))))

    n_cc = _cc_pool_size(spec)
    dga_labels: dict[str, str] = {}
    if spec.campaign.startswith("dga-"):
        family = spec.campaign.removeprefix("dga-")
        generator = DgaFamily(family, _mix(spec.seed, family))
        cc = tuple(generator.generate(n_cc))
        dga_labels = {domain: family for domain in cc}
        delivery = tuple(_attacker_names(rng, 2))
    else:
        names = _attacker_names(rng, 2 + n_cc)
        delivery, cc = tuple(names[:2]), tuple(names[2:])

    # Attacker infrastructure: a /24 inside 192.0.0.0/16, which the
    # world's allocator never hands out.  CDN-fronted campaigns park
    # some C&C domains on popular-site addresses instead (shared
    # infrastructure defeating subnet-association features).
    block_c = rng.randrange(256)
    domain_ips: dict[str, str] = {}
    for domain in delivery + cc:
        if spec.campaign == "cdn-fronting" and world.popular_sites \
                and rng.random() < spec.strength:
            domain_ips[domain] = rng.choice(world.popular_sites)[1]
        else:
            domain_ips[domain] = \
                f"192.0.{block_c}.{rng.randint(1, 254)}"

    fronted: tuple[tuple[str, str], ...] = ()
    if spec.campaign == "cdn-fronting" and world.popular_sites:
        count = min(len(world.popular_sites), 4)
        fronted = tuple(rng.sample(world.popular_sites, count))

    # WHOIS ground truth: young registrations shortly before first
    # use; DGA rotations increasingly skip registration entirely
    # (Section VI-D's unregistered cluster).
    first_use = spec.start_day * SECONDS_PER_DAY
    records: list[tuple[str, float, float]] = []
    unregistered_rate = 0.0
    if dga_labels:
        unregistered_rate = 0.2 + 0.6 * spec.strength
    for domain in delivery + cc:
        if rng.random() < unregistered_rate:
            continue
        registered = first_use - rng.uniform(2, 28) * SECONDS_PER_DAY
        expires = registered + rng.uniform(0.9, 1.1) * 365 * SECONDS_PER_DAY
        records.append((domain, registered, expires))

    return RealizedCampaign(
        spec=spec,
        hosts=hosts,
        delivery_domains=delivery,
        cc_domains=cc,
        domain_ips=domain_ips,
        dga_labels=dga_labels,
        fronted_sites=fronted,
        whois_records=tuple(records),
        host_ua=dict(world.host_uas),
    )


# ---------------------------------------------------------------------------
# Record conversion (overlaying a campaign onto a dataset's days)
# ---------------------------------------------------------------------------

def campaign_dns_records(
    realized: RealizedCampaign, host_ips: dict[str, str], day: int
):
    """The campaign's DNS A-record traffic for one absolute day."""
    from ..logs.records import DnsRecord, DnsRecordType

    return [
        DnsRecord(
            timestamp=visit.timestamp,
            source_ip=host_ips[visit.host],
            domain=visit.domain,
            record_type=DnsRecordType.A,
            resolved_ip=visit.resolved_ip,
        )
        for visit in realized.day_visits(day)
    ]


def campaign_connections(realized: RealizedCampaign, day: int):
    """The campaign's normalized proxy connections for one day."""
    from ..logs.records import Connection

    return [
        Connection(
            timestamp=visit.timestamp,
            host=visit.host,
            domain=visit.domain,
            resolved_ip=visit.resolved_ip,
            user_agent=visit.user_agent,
            referer=visit.referer,
            status_code=200,
        )
        for visit in realized.day_visits(day)
    ]


def campaign_proxy_records(realized: RealizedCampaign, day: int):
    """The campaign's pre-joined proxy log records for one day.

    Same shape the fleet layout writers emit: the stable hostname in
    the source field, zero collector offset -- ready for
    :func:`~repro.logs.format_proxy_line`.
    """
    from ..logs.records import ProxyRecord

    return [
        ProxyRecord(
            timestamp=visit.timestamp,
            source_ip=visit.host,
            destination=visit.domain,
            destination_ip=visit.resolved_ip,
            status_code=200,
            user_agent=visit.user_agent,
            referer=visit.referer,
        )
        for visit in realized.day_visits(day)
    ]


# ---------------------------------------------------------------------------
# Fleet-level archetype: tenant churn
# ---------------------------------------------------------------------------

def churn_fleet_config(
    *,
    strength: float = 0.0,
    seed: int = 42,
    n_tenants: int = 3,
    tenant=None,
    enterprise_tenants: int = 0,
    enterprise_tenant=None,
):
    """Fleet scenario with tenants joining and leaving mid-fleet.

    The last tenant joins ``1 + round(strength * 2)`` rounds into the
    run and is hit by the shared campaign right after joining; the
    second tenant leaves after its own follower date.  Strength also
    feeds the shared campaign's beacon jitter (as in ``jitter``), so
    the fleet curve degrades for the same reason the single-tenant one
    does while exercising join/leave bookkeeping at every measured
    point.  Returns a :class:`~repro.synthetic.fleet
    .FleetScenarioConfig` ready for
    :func:`~repro.synthetic.fleet.generate_fleet_dataset`.
    """
    from .fleet import FleetScenarioConfig

    if not 0.0 <= strength <= 1.0:
        raise ValueError(f"strength must be in [0, 1], got {strength}")
    if n_tenants < 3:
        raise ValueError("tenant churn needs at least 3 tenants")
    join_round = 1 + round(strength * 2)
    join_rounds = [0] * n_tenants
    join_rounds[-1] = join_round
    leave_rounds = [0] * n_tenants
    leave_rounds[1] = join_round + 3
    follower_dates = [3] * n_tenants
    # The joiner's first post-bootstrap detection round lands after
    # join_round bootstrap-shifted files; hit it on its first
    # operational date.
    follower_dates[-1] = join_round + 3
    kwargs = {}
    if tenant is not None:
        kwargs["tenant"] = tenant
    if enterprise_tenant is not None:
        kwargs["enterprise_tenant"] = enterprise_tenant
    return FleetScenarioConfig(
        seed=seed,
        n_tenants=n_tenants,
        enterprise_tenants=enterprise_tenants,
        lead_hosts=2,
        follower_hosts=2,
        beacon_jitter=3.0 + strength * 600.0,
        join_rounds=tuple(join_rounds),
        leave_rounds=tuple(leave_rounds),
        follower_dates=tuple(follower_dates),
        **kwargs,
    )
