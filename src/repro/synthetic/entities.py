"""Enterprise entity model: hosts, software profiles, user agents.

The enterprise-specific features exploited by the paper depend on
structural properties of corporate fleets:

* software is homogeneous, so the vast majority of HTTP traffic uses a
  small pool of *popular* user-agent strings (browsers, OS updaters),
  while a handful of hosts run unpopular software with rare UAs -- the
  ``RareUA`` feature;
* users browse through pages, so most requests carry a referer; the
  paper's average is 7-9 UA strings per user.

:class:`EnterpriseModel` materializes a host fleet with those
properties for the generators to draw on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


#: Browser/OS agents shared fleet-wide (the popular pool).
POPULAR_USER_AGENTS = tuple(
    f"Mozilla/5.0 (Windows NT 6.1) Corp/{major}.{minor}"
    for major in (34, 35, 36)
    for minor in (0, 1)
) + (
    "Microsoft-CryptoAPI/6.1",
    "Windows-Update-Agent/7.6",
    "Corp-AV-Updater/2.3",
    "Mozilla/5.0 (Macintosh; Intel) Corp/36.0",
)


@dataclass(frozen=True)
class Host:
    """One internal machine and the UA strings its software emits."""

    name: str
    user_agents: tuple[str, ...]
    is_server: bool = False
    mobility: float = 0.0
    """Probability the host appears behind VPN rather than DHCP on a
    given day (laptops roam; desktops do not)."""

    def primary_ua(self) -> str:
        return self.user_agents[0]


@dataclass
class EnterpriseModel:
    """A fleet of hosts with realistic UA popularity structure."""

    hosts: list[Host] = field(default_factory=list)
    servers: list[Host] = field(default_factory=list)
    rare_user_agents: list[str] = field(default_factory=list)

    @property
    def client_names(self) -> list[str]:
        return [host.name for host in self.hosts]

    def host(self, index: int) -> Host:
        return self.hosts[index % len(self.hosts)]


def build_enterprise(
    n_hosts: int,
    rng: random.Random,
    *,
    n_servers: int = 4,
    rare_ua_fraction: float = 0.04,
) -> EnterpriseModel:
    """Create a fleet of ``n_hosts`` clients plus internal servers.

    Every client gets 5-9 UAs from the popular pool; a small fraction
    additionally runs one piece of unpopular software with a UA unique
    to at most a couple of machines.
    """
    if n_hosts < 1:
        raise ValueError("need at least one host")
    model = EnterpriseModel()
    for index in range(n_hosts):
        count = rng.randint(5, min(9, len(POPULAR_USER_AGENTS)))
        agents = tuple(rng.sample(POPULAR_USER_AGENTS, count))
        mobility = 0.6 if rng.random() < 0.3 else 0.05
        model.hosts.append(
            Host(name=f"host{index:05d}", user_agents=agents, mobility=mobility)
        )

    n_rare = max(1, int(n_hosts * rare_ua_fraction))
    for rare_index in range(n_rare):
        ua = f"ObscureTool/{rare_index}.{rng.randint(0, 9)}"
        model.rare_user_agents.append(ua)
        owner = model.hosts[rng.randrange(n_hosts)]
        model.hosts[model.hosts.index(owner)] = Host(
            name=owner.name,
            user_agents=owner.user_agents + (ua,),
            mobility=owner.mobility,
        )

    for index in range(n_servers):
        model.servers.append(
            Host(
                name=f"srv{index:03d}",
                user_agents=("Server-Agent/1.0",),
                is_server=True,
            )
        )
    return model
