"""Feature selection by coefficient significance (Sections VI-A).

The paper prunes its regression models exactly this way: "the only one
with low significance was AutoHosts, which we believe is highly
correlated with NoHosts and thus omit it" (C&C model), and "the only
one with low significance was IP16, as we believe it's highly
correlated with IP24" (similarity model).

:func:`backward_eliminate` automates the procedure: fit, drop the least
significant feature if its p-value exceeds the cutoff, refit, repeat.
Collinear twins (AutoHosts/NoHosts, IP16/IP24) are exactly what this
removes first, because collinearity inflates their standard errors.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .regression import LinearModel, fit_linear_model


@dataclass(frozen=True)
class EliminationStep:
    """One round of backward elimination."""

    dropped: str
    p_value: float
    remaining: tuple[str, ...]


@dataclass(frozen=True)
class SelectionResult:
    """The pruned model plus the elimination audit trail."""

    model: LinearModel
    steps: tuple[EliminationStep, ...]

    @property
    def dropped_features(self) -> tuple[str, ...]:
        return tuple(step.dropped for step in self.steps)


def backward_eliminate(
    feature_names: Sequence[str],
    matrix: Sequence[Sequence[float]],
    labels: Sequence[float],
    *,
    p_cutoff: float = 0.05,
    min_features: int = 1,
    ridge: float = 0.0,
) -> SelectionResult:
    """Iteratively drop the least significant feature above ``p_cutoff``.

    Stops when every remaining coefficient is significant at the
    cutoff, or when only ``min_features`` remain.  The intercept is
    never considered for elimination.
    """
    if min_features < 1:
        raise ValueError("min_features must be at least 1")
    names = list(feature_names)
    data = np.asarray(matrix, dtype=float)
    steps: list[EliminationStep] = []

    while True:
        model = fit_linear_model(names, data.tolist(), labels, ridge=ridge)
        if len(names) <= min_features:
            break
        candidates = [
            coef for coef in model.coefficients if coef.name != "(intercept)"
        ]
        worst = max(candidates, key=lambda c: c.p_value)
        if worst.p_value <= p_cutoff:
            break
        index = names.index(worst.name)
        names.pop(index)
        data = np.delete(data, index, axis=1)
        steps.append(
            EliminationStep(
                dropped=worst.name,
                p_value=worst.p_value,
                remaining=tuple(names),
            )
        )

    return SelectionResult(model=model, steps=tuple(steps))


def project_features(
    full_names: Sequence[str],
    kept_names: Sequence[str],
    vector: Sequence[float],
) -> list[float]:
    """Project a full feature vector onto a pruned model's features.

    Lets callers keep extracting the full vectors while scoring with a
    pruned model.
    """
    index_of = {name: i for i, name in enumerate(full_names)}
    missing = [name for name in kept_names if name not in index_of]
    if missing:
        raise KeyError(f"features {missing} not present in {list(full_names)}")
    return [vector[index_of[name]] for name in kept_names]
