"""Ordinary least squares linear model with coefficient significance.

The paper trains linear regression models (R's ``lm``) on labeled rare
domains: reported-by-VirusTotal = 1, legitimate = 0.  The fitted value
for a new domain is its *score*; a threshold on the score (``Tc`` for
C&C, ``Ts`` for similarity) turns it into a detector.  ``lm`` also
reports per-coefficient significance, which the paper uses to drop
low-value features (AutoHosts in the C&C model, IP16 in the similarity
model).  We reproduce both behaviours: OLS via numpy's least squares
plus classical t-statistics/p-values via scipy.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class Coefficient:
    """One fitted model term with its inferential statistics."""

    name: str
    estimate: float
    std_error: float
    t_statistic: float
    p_value: float

    @property
    def significant(self) -> bool:
        """Conventional 5% significance."""
        return self.p_value < 0.05


@dataclass(frozen=True)
class LinearModel:
    """A fitted linear model ``score = intercept + X @ weights``."""

    feature_names: tuple[str, ...]
    intercept: float
    weights: np.ndarray
    coefficients: tuple[Coefficient, ...]
    r_squared: float
    n_samples: int

    def score(self, features: Sequence[float]) -> float:
        """Score one feature vector.

        The accumulation runs feature by feature, left to right --
        the same order :meth:`score_many` applies column-wise -- so a
        vector scored alone and as a matrix row produce bit-identical
        floats.  Belief propagation compares scores against thresholds
        and breaks argmax ties deterministically; keeping the serial
        and batched scorers bit-equal keeps their detections equal.
        """
        if len(features) != len(self.feature_names):
            raise ValueError(
                f"expected {len(self.feature_names)} features, got {len(features)}"
            )
        total = self.intercept
        for weight, value in zip(self.weights, features):
            total += weight * value
        return float(total)

    def score_many(self, matrix: np.ndarray) -> np.ndarray:
        """Score a (n_samples, n_features) matrix in one vector pass.

        Accumulates one weighted column at a time (eight axpy ops for
        the similarity model) rather than ``matrix @ weights``: BLAS
        matvec kernels reorder the reduction, which would break the
        bit-parity contract :meth:`score` documents.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.feature_names):
            raise ValueError(
                f"expected (n, {len(self.feature_names)}) matrix, "
                f"got shape {matrix.shape}"
            )
        scores = np.full(matrix.shape[0], self.intercept, dtype=float)
        for column, weight in enumerate(self.weights):
            scores += weight * matrix[:, column]
        return scores

    def coefficient(self, name: str) -> Coefficient:
        """The named coefficient; raises KeyError when absent."""
        for coef in self.coefficients:
            if coef.name == name:
                return coef
        raise KeyError(name)

    def summary(self) -> str:
        """R-``lm``-style text summary, for logs and the benches."""
        lines = [
            f"Linear model on {self.n_samples} samples "
            f"(R^2 = {self.r_squared:.3f})",
            f"{'term':<16}{'estimate':>12}{'std.err':>12}"
            f"{'t':>10}{'p':>10}",
        ]
        for coef in self.coefficients:
            lines.append(
                f"{coef.name:<16}{coef.estimate:>12.4f}{coef.std_error:>12.4f}"
                f"{coef.t_statistic:>10.3f}{coef.p_value:>10.4f}"
            )
        return "\n".join(lines)


def fit_linear_model(
    feature_names: Sequence[str],
    matrix: Sequence[Sequence[float]],
    labels: Sequence[float],
    *,
    ridge: float = 0.0,
) -> LinearModel:
    """Fit OLS (optionally ridge-stabilized) with an intercept.

    Degenerate designs (constant columns, collinearity, too few
    samples) are handled via the pseudo-inverse, with standard errors
    reported as ``inf`` where the information matrix is singular --
    mirroring how ``lm`` reports ``NA`` for aliased terms.

    ``ridge`` adds an L2 penalty (not applied to the intercept).  The
    paper's enterprise-scale training sets keep plain ``lm`` well
    conditioned; at simulator scale labeled sets can be small and
    near-separable, where unpenalized OLS produces exploding,
    non-generalizing weights -- a small ridge restores the paper's
    behaviour.  Significance statistics are computed from the same
    penalized information matrix (approximate for ``ridge > 0``).
    """
    X = np.asarray(matrix, dtype=float)
    y = np.asarray(labels, dtype=float)
    if X.ndim != 2:
        raise ValueError("feature matrix must be 2-dimensional")
    n, k = X.shape
    if len(feature_names) != k:
        raise ValueError("feature_names length does not match matrix width")
    if y.shape != (n,):
        raise ValueError("labels length does not match matrix rows")
    if n < 2:
        raise ValueError("need at least two samples to fit a model")
    if ridge < 0:
        raise ValueError("ridge penalty must be non-negative")

    design = np.hstack([np.ones((n, 1)), X])
    if ridge > 0.0:
        penalty = ridge * np.eye(k + 1)
        penalty[0, 0] = 0.0
        beta = np.linalg.solve(
            design.T @ design + penalty, design.T @ y
        )
    else:
        beta, *_ = np.linalg.lstsq(design, y, rcond=None)
    fitted = design @ beta
    residuals = y - fitted

    dof = n - (k + 1)
    rss = float(residuals @ residuals)
    tss = float(((y - y.mean()) ** 2).sum())
    r_squared = 1.0 - rss / tss if tss > 0 else 0.0

    if dof > 0:
        sigma2 = rss / dof
        xtx = design.T @ design
        if ridge > 0.0:
            penalty = ridge * np.eye(k + 1)
            penalty[0, 0] = 0.0
            xtx = xtx + penalty
        try:
            covariance = sigma2 * np.linalg.inv(xtx)
            variances = np.diag(covariance)
        except np.linalg.LinAlgError:
            variances = np.full(k + 1, np.inf)
    else:
        variances = np.full(k + 1, np.inf)

    names = ("(intercept)",) + tuple(feature_names)
    coefficients = []
    for index, name in enumerate(names):
        estimate = float(beta[index])
        variance = float(variances[index])
        if np.isfinite(variance) and variance >= 0:
            std_error = float(np.sqrt(variance))
        else:
            std_error = float("inf")
        if std_error > 0 and np.isfinite(std_error):
            t_stat = estimate / std_error
            p_value = float(2.0 * stats.t.sf(abs(t_stat), max(dof, 1)))
        else:
            t_stat = 0.0
            p_value = 1.0
        coefficients.append(
            Coefficient(
                name=name,
                estimate=estimate,
                std_error=std_error,
                t_statistic=t_stat,
                p_value=p_value,
            )
        )

    return LinearModel(
        feature_names=tuple(feature_names),
        intercept=float(beta[0]),
        weights=np.asarray(beta[1:], dtype=float),
        coefficients=tuple(coefficients),
        r_squared=r_squared,
        n_samples=n,
    )
