"""Feature extraction and regression modelling."""

from .extract import (
    CC_FEATURE_NAMES,
    SIMILARITY_FEATURE_NAMES,
    CandCFeatures,
    FeatureExtractor,
    SimilarityFeatures,
    scale_count,
    timing_closeness,
)
from .regression import Coefficient, LinearModel, fit_linear_model
from .selection import (
    EliminationStep,
    SelectionResult,
    backward_eliminate,
    project_features,
)
from .whois import (
    RegistrationFeatures,
    WhoisFeatureExtractor,
    normalize_age,
    normalize_validity,
)

__all__ = [
    "CC_FEATURE_NAMES",
    "SIMILARITY_FEATURE_NAMES",
    "CandCFeatures",
    "FeatureExtractor",
    "SimilarityFeatures",
    "scale_count",
    "timing_closeness",
    "EliminationStep",
    "SelectionResult",
    "backward_eliminate",
    "project_features",
    "Coefficient",
    "LinearModel",
    "fit_linear_model",
    "RegistrationFeatures",
    "WhoisFeatureExtractor",
    "normalize_age",
    "normalize_validity",
]
