"""Registration features: DomAge and DomValidity (Section IV-C).

Raw WHOIS values are unbounded day counts; the regression models work
on normalized features in [0, 1], so we squash them:

* ``DomAge``: days since registration, capped at one year and scaled
  to [0, 1].  A domain observed *before* its registration (the DGA
  pre-registration case of Section VI-D) gets age 0 -- maximally young.
* ``DomValidity``: days until expiry, capped at five years and scaled
  to [0, 1].  Attackers register short; legitimate owners register
  long and renew early.

Domains with no parseable WHOIS record are imputed with the mean of
the observed population (Section VI-C), handled by
:class:`WhoisFeatureExtractor.impute_defaults`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..intel.whois_db import WhoisDatabase

AGE_CAP_DAYS = 365.0
VALIDITY_CAP_DAYS = 5 * 365.0


@dataclass(frozen=True, slots=True)
class RegistrationFeatures:
    """Normalized (dom_age, dom_validity), both in [0, 1]."""

    dom_age: float
    dom_validity: float
    imputed: bool = False


def normalize_age(age_days: float) -> float:
    """Clamp-and-scale days-since-registration to [0, 1]."""
    return min(max(age_days, 0.0), AGE_CAP_DAYS) / AGE_CAP_DAYS


def normalize_validity(validity_days: float) -> float:
    """Clamp-and-scale days-until-expiry to [0, 1]."""
    return min(max(validity_days, 0.0), VALIDITY_CAP_DAYS) / VALIDITY_CAP_DAYS


class WhoisFeatureExtractor:
    """Computes registration features with population-mean imputation."""

    def __init__(self, database: WhoisDatabase) -> None:
        self.database = database
        self._age_sum = 0.0
        self._validity_sum = 0.0
        self._observed = 0

    def extract(self, domain: str, when: float) -> RegistrationFeatures:
        """Features for ``domain`` observed at time ``when``.

        Successful lookups update the running means used for later
        imputation, so the defaults track the population the paper's
        averages would.
        """
        record = self.database.lookup(domain)
        if record is None:
            return self.impute_defaults()
        age = normalize_age(record.age_days(when))
        validity = normalize_validity(record.validity_days(when))
        self._age_sum += age
        self._validity_sum += validity
        self._observed += 1
        return RegistrationFeatures(dom_age=age, dom_validity=validity)

    def extract_known(self, age: float, validity: float) -> RegistrationFeatures:
        """Re-apply a previously successful lookup's normalized values.

        Batched frontier scoring caches each domain's first
        :meth:`extract` result; later rescoring rounds replay the
        cached values through this method so the running imputation
        means advance *exactly* as the per-domain path's repeated
        ``extract`` calls would -- the batch-parity requirement of
        :class:`repro.core.scoring.BatchedSimilarityScorer`.
        """
        self._age_sum += age
        self._validity_sum += validity
        self._observed += 1
        return RegistrationFeatures(dom_age=age, dom_validity=validity)

    def impute_defaults(self) -> RegistrationFeatures:
        """Mean-imputed features for unparseable WHOIS (Section VI-C).

        Before any successful lookup the neutral midpoint 0.5 is used.
        """
        if self._observed == 0:
            return RegistrationFeatures(dom_age=0.5, dom_validity=0.5, imputed=True)
        return RegistrationFeatures(
            dom_age=self._age_sum / self._observed,
            dom_validity=self._validity_sum / self._observed,
            imputed=True,
        )
