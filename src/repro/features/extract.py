"""Feature extraction for C&C scoring and domain similarity (IV-C, IV-D).

Two feature families, both normalized to [0, 1] so regression scores
land on a comparable scale:

**C&C features** (six, Section IV-C) for rare *automated* domains:

================  ====================================================
``no_hosts``      domain connectivity: distinct hosts contacting the
                  domain, capped and scaled
``auto_hosts``    hosts with automated connections to the domain
``no_ref``        fraction of contacting hosts using no web referer
``rare_ua``       fraction of contacting hosts using no or a rare UA
``dom_age``       normalized days since registration (old = high)
``dom_validity``  normalized days until expiry (long = high)
================  ====================================================

**Similarity features** (eight, Section IV-D) for rare domains compared
against the set labeled malicious in earlier belief-propagation
iterations: connectivity, ``dom_interval`` (timing closeness to the
malicious set), ``ip24``/``ip16`` subnet co-location, plus the NoRef /
RareUA / registration features above.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..logs.domains import subnet_key
from ..profiling.rare import DailyTraffic
from ..profiling.ua import UserAgentHistory
from .whois import RegistrationFeatures, WhoisFeatureExtractor

CC_FEATURE_NAMES = (
    "no_hosts",
    "auto_hosts",
    "no_ref",
    "rare_ua",
    "dom_age",
    "dom_validity",
)

SIMILARITY_FEATURE_NAMES = (
    "no_hosts",
    "dom_interval",
    "ip24",
    "ip16",
    "no_ref",
    "rare_ua",
    "dom_age",
    "dom_validity",
)

#: Cap used to scale host counts into [0, 1]; rare domains see at most
#: ~10 hosts by construction (the rarity threshold).
HOST_COUNT_CAP = 10

#: e-folding time (seconds) for timing closeness: visits 30 minutes
#: apart score ~0.37, same-minute visits score ~1.
TIMING_SCALE_SECONDS = 1800.0


def scale_count(count: int, cap: int = HOST_COUNT_CAP) -> float:
    """Scale a small count into [0, 1] with saturation at ``cap``."""
    if count <= 0:
        return 0.0
    return min(count, cap) / cap


def timing_closeness(gap_seconds: float | None) -> float:
    """Exponential closeness of two first-visit times.

    ``None`` (no co-visiting host) maps to 0 -- no timing evidence.
    """
    if gap_seconds is None:
        return 0.0
    return math.exp(-abs(gap_seconds) / TIMING_SCALE_SECONDS)


@dataclass(frozen=True, slots=True)
class CandCFeatures:
    """Feature vector for scoring one rare automated domain."""

    domain: str
    no_hosts: float
    auto_hosts: float
    no_ref: float
    rare_ua: float
    dom_age: float
    dom_validity: float

    def as_vector(self) -> tuple[float, ...]:
        return (
            self.no_hosts,
            self.auto_hosts,
            self.no_ref,
            self.rare_ua,
            self.dom_age,
            self.dom_validity,
        )


@dataclass(frozen=True, slots=True)
class SimilarityFeatures:
    """Feature vector for one rare domain vs. the labeled-malicious set."""

    domain: str
    no_hosts: float
    dom_interval: float
    ip24: float
    ip16: float
    no_ref: float
    rare_ua: float
    dom_age: float
    dom_validity: float

    def as_vector(self) -> tuple[float, ...]:
        return (
            self.no_hosts,
            self.dom_interval,
            self.ip24,
            self.ip16,
            self.no_ref,
            self.rare_ua,
            self.dom_age,
            self.dom_validity,
        )


class FeatureExtractor:
    """Computes both feature families from one day of traffic."""

    def __init__(
        self,
        ua_history: UserAgentHistory | None = None,
        whois: WhoisFeatureExtractor | None = None,
    ) -> None:
        self.ua_history = ua_history
        self.whois = whois

    # -- shared helpers -------------------------------------------------

    def _registration(self, domain: str, when: float) -> RegistrationFeatures:
        if self.whois is None:
            # DNS-only datasets have no WHOIS (anonymized names); a
            # neutral constant keeps the vector shape without signal.
            return RegistrationFeatures(dom_age=0.5, dom_validity=0.5, imputed=True)
        return self.whois.extract(domain, when)

    @staticmethod
    def _fraction(part_hosts: set[str] | None, all_hosts: set[str]) -> float:
        if not all_hosts or not part_hosts:
            return 0.0
        return len(part_hosts & all_hosts) / len(all_hosts)

    # -- C&C features (IV-C) --------------------------------------------

    def cc_features(
        self,
        domain: str,
        traffic: DailyTraffic,
        automated_hosts: set[str],
        when: float,
    ) -> CandCFeatures:
        """Six-feature vector for a rare automated domain.

        ``automated_hosts`` is the set of hosts whose connections to
        ``domain`` the timing detector labeled automated.
        """
        hosts = traffic.hosts_by_domain.get(domain, set())
        registration = self._registration(domain, when)
        return CandCFeatures(
            domain=domain,
            no_hosts=scale_count(len(hosts)),
            auto_hosts=scale_count(len(automated_hosts & hosts)),
            no_ref=self._fraction(traffic.no_referer_hosts.get(domain), hosts),
            rare_ua=self._fraction(traffic.rare_ua_hosts.get(domain), hosts),
            dom_age=registration.dom_age,
            dom_validity=registration.dom_validity,
        )

    def cc_feature_matrix(
        self,
        domains: Sequence[str],
        traffic: DailyTraffic,
        automated_hosts: Mapping[str, set[str]],
        when: float,
    ) -> np.ndarray:
        """One (n_domains, 6) C&C feature matrix for a day's candidates.

        Row ``i`` holds exactly :meth:`cc_features` of ``domains[i]``
        (same scalar expressions, written straight into the matrix), so
        scoring the matrix with
        :meth:`~repro.features.regression.LinearModel.score_many` is
        bit-identical to scoring each domain alone.  Rows are built in
        the given ``domains`` order because :meth:`_registration`
        advances the WHOIS imputation counters per lookup -- callers
        must pass the same order the per-domain loop used
        (``sorted(auto_hosts)`` in Detect_C&C).
        """
        matrix = np.empty((len(domains), len(CC_FEATURE_NAMES)))
        hosts_by_domain = traffic.hosts_by_domain
        no_referer = traffic.no_referer_hosts
        rare_ua = traffic.rare_ua_hosts
        fraction = self._fraction
        for row, domain in enumerate(domains):
            hosts = hosts_by_domain.get(domain, set())
            registration = self._registration(domain, when)
            matrix[row, 0] = scale_count(len(hosts))
            matrix[row, 1] = scale_count(
                len(automated_hosts[domain] & hosts)
            )
            matrix[row, 2] = fraction(no_referer.get(domain), hosts)
            matrix[row, 3] = fraction(rare_ua.get(domain), hosts)
            matrix[row, 4] = registration.dom_age
            matrix[row, 5] = registration.dom_validity
        return matrix

    # -- similarity features (IV-D) ---------------------------------------

    @staticmethod
    def min_visit_gap(
        domain: str, malicious: Iterable[str], traffic: DailyTraffic
    ) -> float | None:
        """Minimum |first-visit(D) - first-visit(M)| over co-visiting hosts.

        Returns ``None`` when no host visited both ``domain`` and some
        malicious domain that day.
        """
        best: float | None = None
        hosts = traffic.hosts_by_domain.get(domain, set())
        for mal in malicious:
            if mal == domain:
                continue
            shared = hosts & traffic.hosts_by_domain.get(mal, set())
            for host in shared:
                t_dom = traffic.first_contact(host, domain)
                t_mal = traffic.first_contact(host, mal)
                if t_dom is None or t_mal is None:
                    continue
                gap = abs(t_dom - t_mal)
                if best is None or gap < best:
                    best = gap
        return best

    @staticmethod
    def subnet_proximity(
        domain: str, malicious: Iterable[str], traffic: DailyTraffic
    ) -> tuple[float, float]:
        """(ip24, ip16) indicators of subnet co-location.

        ``ip16`` is 1 whenever a /16 is shared, including the /24 case;
        the paper observed exactly this correlation and dropped IP16
        from the regression for it.
        """
        own_ips = traffic.resolved_ips.get(domain, set())
        if not own_ips:
            return 0.0, 0.0
        own24 = {subnet_key(ip, 24) for ip in own_ips}
        own16 = {subnet_key(ip, 16) for ip in own_ips}
        ip24 = ip16 = 0.0
        for mal in malicious:
            if mal == domain:
                continue
            for ip in traffic.resolved_ips.get(mal, ()):
                if subnet_key(ip, 24) in own24:
                    ip24 = 1.0
                if subnet_key(ip, 16) in own16:
                    ip16 = 1.0
            if ip24 and ip16:
                break
        return ip24, ip16

    def similarity_static(
        self, domain: str, traffic: DailyTraffic
    ) -> tuple[float, float, float]:
        """(no_hosts, no_ref, rare_ua) -- the similarity features that
        do not depend on the malicious set.

        During belief propagation the malicious set grows every
        iteration but the day's traffic is frozen, so these three are
        computed once per frontier domain and cached by the batched
        scorer (:class:`repro.core.scoring.BatchedSimilarityScorer`);
        only ``dom_interval``/``ip24``/``ip16`` need incremental
        updates, and the registration pair is replayed separately to
        keep WHOIS imputation state batch-identical.
        """
        hosts = traffic.hosts_by_domain.get(domain, set())
        return (
            scale_count(len(hosts)),
            self._fraction(traffic.no_referer_hosts.get(domain), hosts),
            self._fraction(traffic.rare_ua_hosts.get(domain), hosts),
        )

    def similarity_features(
        self,
        domain: str,
        malicious: set[str],
        traffic: DailyTraffic,
        when: float,
    ) -> SimilarityFeatures:
        """Eight-feature vector for a rare domain vs. the malicious set."""
        hosts = traffic.hosts_by_domain.get(domain, set())
        gap = self.min_visit_gap(domain, malicious, traffic)
        ip24, ip16 = self.subnet_proximity(domain, malicious, traffic)
        registration = self._registration(domain, when)
        return SimilarityFeatures(
            domain=domain,
            no_hosts=scale_count(len(hosts)),
            dom_interval=timing_closeness(gap),
            ip24=ip24,
            ip16=ip16,
            no_ref=self._fraction(traffic.no_referer_hosts.get(domain), hosts),
            rare_ua=self._fraction(traffic.rare_ua_hosts.get(domain), hosts),
            dom_age=registration.dom_age,
            dom_validity=registration.dom_validity,
        )
