"""Period-aware automation-verdict caching for the streaming engine.

The batch pipeline tests every rare (host, domain) timestamp series
from scratch once per day; the streaming engine re-tests a series on
every scoring round that saw new events for it.  Most of that work is
redundant: the dynamic histogram clusters intervals in arrival order,
so *appending* events to a series extends the existing clusters
without disturbing them (:func:`repro.timing.histogram.assign_interval`).
The cache exploits three increasingly strong facts, all exact:

``short``
    a series below ``min_connections`` is never automated -- no
    histogram is needed at all;
``incremental``
    when every new event lands at or after the last tested timestamp,
    the cached cluster state is extended with just the new intervals
    and the divergence recomputed over the bins -- O(new + bins)
    instead of O(series);
``periodic``
    when, additionally, the cached verdict was *automated* and every
    new interval joined the dominant bin, the verdict provably cannot
    change: the dominant bin only gains mass, and the Jeffrey
    divergence from the periodic reference is a strictly decreasing
    function of the dominant bin's frequency alone (the off-dominant
    terms sum to ``(1 - h_d) log 2``).  New beacons arriving on period
    therefore skip even the divergence recomputation -- the
    "period-aware invalidation" the roadmap names.

Any out-of-order arrival (a new event earlier than the last tested
timestamp) falls back to a full rebuild, so cached verdicts always
equal what :meth:`AutomationDetector.test_series` would return for the
``automated``/``period``/``connections`` fields -- the only fields
detection consumes.  On a ``periodic`` skip the recorded divergence is
the last computed (upper-bound) value rather than the slightly smaller
current one.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..timing.detector import AutomationDetector, AutomationVerdict
from ..timing.histogram import (
    assign_interval,
    histogram_from_clusters,
    intervals,
)
from ..timing.divergence import divergence_from_periodic


@dataclass
class VerdictCacheStats:
    """Counters for the benchmark to report (one engine's lifetime)."""

    full_tests: int = 0
    incremental_tests: int = 0
    short_skips: int = 0
    periodic_skips: int = 0
    not_rare_skips: int = 0

    @property
    def total(self) -> int:
        return (
            self.full_tests + self.incremental_tests + self.short_skips
            + self.periodic_skips + self.not_rare_skips
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "full_tests": self.full_tests,
            "incremental_tests": self.incremental_tests,
            "short_skips": self.short_skips,
            "periodic_skips": self.periodic_skips,
            "not_rare_skips": self.not_rare_skips,
        }

    def metrics_samples(self) -> dict[str, int]:
        """Counter samples for a metrics-registry collector.

        The plain-int fields stay the hot-path mechanism (no lock per
        skip); registering this method with
        :meth:`repro.obs.MetricsRegistry.add_collector` folds them into
        every snapshot as ``verdict_cache_events_total{kind=...}``, so
        the unified registry serves the verdict-cache stats too.
        """
        from ..obs.metrics import sample_key

        return {
            sample_key("verdict_cache_events_total", kind=kind): value
            for kind, value in self.as_dict().items()
        }


@dataclass
class _SeriesState:
    """Cached cluster state of one (host, domain) series."""

    hubs: list[float] = field(default_factory=list)
    counts: list[int] = field(default_factory=list)
    n_events: int = 0
    last_ts: float = float("-inf")
    verdict: AutomationVerdict | None = None


def _dominant_index(counts: Sequence[int]) -> int:
    """Index of the dominant bin (max count, earliest-created on ties)."""
    best = 0
    for index, count in enumerate(counts):
        if count > counts[best]:
            best = index
    return best


class SeriesVerdictCache:
    """Incrementally maintained automation verdicts for one day's series."""

    def __init__(self, automation: AutomationDetector) -> None:
        self.automation = automation
        self.stats = VerdictCacheStats()
        self._states: dict[tuple[str, str], _SeriesState] = {}

    def __len__(self) -> int:
        return len(self._states)

    # ------------------------------------------------------------------

    def test(
        self,
        host: str,
        domain: str,
        timestamps: Sequence[float],
        new_timestamps: Sequence[float],
    ) -> AutomationVerdict:
        """Verdict for a sorted series, reusing cached cluster state.

        ``new_timestamps`` are the events appended since the previous
        call for this pair (unsorted, as they arrived); they determine
        whether the incremental path is sound.
        """
        pair = (host, domain)
        count = len(timestamps)
        if count < self.automation.config.min_connections:
            self.stats.short_skips += 1
            self._states.pop(pair, None)
            return AutomationVerdict(
                host=host, domain=domain, automated=False,
                divergence=float("inf"), period=0.0, connections=count,
            )

        state = self._states.get(pair)
        appended = (
            state is not None
            and state.verdict is not None
            and new_timestamps
            and count == state.n_events + len(new_timestamps)
            and min(new_timestamps) >= state.last_ts
        )
        if appended:
            verdict = self._extend(pair, state, timestamps, new_timestamps)
        else:
            verdict = self._rebuild(pair, host, domain, timestamps)
        return verdict

    def invalidate(self, pair: tuple[str, str]) -> None:
        self._states.pop(pair, None)

    def count_not_rare_skip(self) -> None:
        """A stale pair whose domain left the rare set needs no test."""
        self.stats.not_rare_skips += 1

    def clear(self) -> None:
        """Drop all series state (day rollover / checkpoint restore)."""
        self._states.clear()

    # ------------------------------------------------------------------

    def _rebuild(
        self,
        pair: tuple[str, str],
        host: str,
        domain: str,
        timestamps: Sequence[float],
    ) -> AutomationVerdict:
        """Full test, retaining the cluster state it builds."""
        self.stats.full_tests += 1
        config = self.automation.config
        state = _SeriesState()
        for value in intervals(timestamps):
            assign_interval(state.hubs, state.counts, value, config.bin_width)
        verdict = self._finish(state, host, domain, len(timestamps))
        state.n_events = len(timestamps)
        state.last_ts = timestamps[-1]
        state.verdict = verdict
        self._states[pair] = state
        return verdict

    def _extend(
        self,
        pair: tuple[str, str],
        state: _SeriesState,
        timestamps: Sequence[float],
        new_timestamps: Sequence[float],
    ) -> AutomationVerdict:
        """Append-only update: extend clusters with the new intervals."""
        config = self.automation.config
        dominant = _dominant_index(state.counts) if state.counts else -1
        all_dominant = bool(state.counts)
        previous = state.last_ts
        for value in sorted(new_timestamps):
            index = assign_interval(
                state.hubs, state.counts, value - previous, config.bin_width
            )
            if index != dominant:
                all_dominant = False
            previous = value
        state.n_events = len(timestamps)
        state.last_ts = timestamps[-1]

        if all_dominant and state.verdict is not None and state.verdict.automated:
            # Every new interval fed the dominant bin: it stays dominant
            # (its count strictly grew, no other changed) and the
            # divergence only decreased, so the automated verdict holds
            # with the same inferred period.
            self.stats.periodic_skips += 1
            verdict = AutomationVerdict(
                host=state.verdict.host,
                domain=state.verdict.domain,
                automated=True,
                divergence=state.verdict.divergence,
                period=state.verdict.period,
                connections=state.n_events,
            )
        else:
            self.stats.incremental_tests += 1
            verdict = self._finish(
                state, pair[0], pair[1], state.n_events
            )
        state.verdict = verdict
        return verdict

    def _finish(
        self, state: _SeriesState, host: str, domain: str, connections: int
    ) -> AutomationVerdict:
        """Divergence test over the (already clustered) bins."""
        config = self.automation.config
        histogram = histogram_from_clusters(state.hubs, state.counts)
        divergence = divergence_from_periodic(
            histogram, metric=self.automation.metric
        )
        return AutomationVerdict(
            host=host,
            domain=domain,
            automated=divergence <= config.jeffrey_threshold,
            divergence=divergence,
            period=histogram.period,
            connections=connections,
        )
