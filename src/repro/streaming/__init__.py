"""Streaming detection engine: the batch pipeline turned online.

The subsystem layers four pieces on top of the unchanged batch
components (Section III's pipeline, Algorithm 1's belief propagation):

* :mod:`~repro.streaming.events` -- host-sharded :class:`EventBus`
  ingestion and incremental reduction/normalization;
* :mod:`~repro.streaming.window` -- :class:`WindowedAggregator`, the
  current day's profiles maintained per micro-batch with end-of-day
  rollover into the long-lived histories;
* :mod:`~repro.streaming.incremental` -- :class:`IncrementalGraph` and
  warm-start belief propagation reusing the previous round's beliefs;
* :mod:`~repro.streaming.detector` -- the :class:`StreamingDetector`
  facade with checkpoint/restore and directory replay.

The engine's invariant: replaying a day's events produces the same
end-of-day detections as the batch :class:`~repro.runner.DnsLogRunner`
over the same records.
"""

from .detector import (
    ReplayResult,
    StreamDayReport,
    StreamingDetector,
    StreamUpdate,
    replay_directory,
)
from .engine import StreamingEngineBase
from .enterprise import StreamingEnterpriseDetector, replay_enterprise_directory
from .events import (
    EventBus,
    dns_batch_stream,
    dns_connection_stream,
    micro_batches,
    shard_of,
)
from .incremental import (
    IncrementalGraph,
    WarmStartConfig,
    warm_start_belief_propagation,
)
from .window import WindowedAggregator

__all__ = [
    "EventBus",
    "IncrementalGraph",
    "ReplayResult",
    "StreamDayReport",
    "StreamUpdate",
    "StreamingDetector",
    "StreamingEngineBase",
    "StreamingEnterpriseDetector",
    "WarmStartConfig",
    "WindowedAggregator",
    "dns_batch_stream",
    "dns_connection_stream",
    "micro_batches",
    "replay_directory",
    "replay_enterprise_directory",
    "shard_of",
    "warm_start_belief_propagation",
]
