"""Streaming enterprise (proxy-path) detection: the paper's headline
workload turned online.

:class:`StreamingEnterpriseDetector` wraps a *trained*
:class:`~repro.core.pipeline.EnterpriseDetector` and accepts proxy
events one at a time or in micro-batches, keeping the destination and
user-agent profiles, the rare-destination window and the host-domain
graph continuously up to date.  Intra-day :meth:`score` rounds run the
regression C&C scorer and warm-start belief propagation over exactly
the state invalidated since the previous round, so detections surface
minutes after the evidence arrives instead of at the nightly batch
close.

**Batch-parity guarantee.**  At a day boundary, :meth:`rollover` runs
:func:`repro.core.pipeline.detect_on_enterprise_traffic` -- the very
routine :meth:`EnterpriseDetector.process_day` runs -- over the
accumulated window, whose indexes are identical to a bulk aggregation
of the same records, and then commits the histories exactly once.
Replaying a day through the streaming engine therefore yields exactly
the batch pipeline's end-of-day detections; the intra-day updates are
strictly additional visibility.

Two enterprise-specific subtleties the implementation preserves:

* **WHOIS imputation state is batch-identical.**  The
  :class:`~repro.features.whois.WhoisFeatureExtractor` keeps running
  means for imputing unregistered domains; intra-day scoring rounds
  would drift those means away from the batch pipeline's (which only
  extracts at end of day).  :meth:`score` therefore snapshots and
  restores the imputation counters around its extractions, leaving the
  rollover pass to advance them exactly as ``process_day`` would.
* **User-agent staging is day-consistent.**  UA observations are
  staged per event but committed only at rollover, and
  ``UserAgentHistory.is_rare`` consults committed state only -- so a
  UA first seen today stays *rare* for today's own detection, matching
  the batch pipeline's end-of-day staging order.

``intel_domains`` passed to :meth:`rollover` are externally confirmed
malicious domains (a fleet's shared intel plane); those rare today
seed belief propagation directly -- extending the DNS path's
cross-tenant seeding to the proxy path.
"""

from __future__ import annotations

from collections.abc import Iterable, Set
from contextlib import contextmanager
from pathlib import Path

from ..core.pipeline import (
    EnterpriseDetector,
    _automated_hosts_by_domain,
    detect_on_enterprise_traffic,
)
from ..core.scoring import BatchedSimilarityScorer
from ..logs.normalize import IpResolver, normalize_proxy_records
from ..logs.proxy import parse_proxy_log
from ..logs.records import ProxyRecord
from ..profiling.rare import extract_rare_domains
from .detector import StreamDayReport, StreamUpdate
from .engine import (
    ReplayResult,
    StreamingEngineBase,
    drive_replay,
    resolve_replay_paths,
    validate_replay_intervals,
)
from .incremental import WarmStartConfig, warm_start_belief_propagation

SECONDS_PER_DAY = 86_400.0


@contextmanager
def _frozen_imputation(detector: EnterpriseDetector):
    """Hold the WHOIS imputation means fixed across a block.

    Intra-day scoring extracts features many times per day; without
    this, the running means used to impute unregistered domains would
    diverge from the batch pipeline's single end-of-day pass and break
    rollover parity for imputed domains.
    """
    whois = detector.extractor.whois
    if whois is None:
        yield
        return
    saved = (whois._age_sum, whois._validity_sum, whois._observed)
    try:
        yield
    finally:
        whois._age_sum, whois._validity_sum, whois._observed = saved


class StreamingEnterpriseDetector(StreamingEngineBase):
    """Online enterprise/proxy-path detector wrapping a trained batch one.

    The wrapped detector's histories, feature extractor, automation
    detector and regression scorers are *shared*, not copied: the
    streaming engine is the same trained system, fed incrementally.
    """

    def __init__(
        self,
        detector: EnterpriseDetector,
        *,
        start_day: int | None = None,
        warm: WarmStartConfig | None = None,
        n_shards: int = 4,
        metrics=None,
    ) -> None:
        if detector.cc_scorer is None or detector.similarity_scorer is None:
            raise RuntimeError(
                "streaming requires a trained EnterpriseDetector "
                "(both regression models fitted)"
            )
        self.batch = detector
        self.config = detector.config
        if start_day is None:
            committed = detector.history.committed_days
            start_day = (max(committed) + 1) if committed else 0
        self.start_day = start_day
        super().__init__(
            history=detector.history,
            automation=detector.automation,
            unpopular_max_hosts=detector.config.rarity.unpopular_max_hosts,
            ua_history=detector.ua_history,
            warm=warm,
            n_shards=n_shards,
            start_day=start_day,
            metrics=metrics,
        )

    # Convenience views onto the wrapped trained detector.

    @property
    def cc_scorer(self):
        """The trained regression C&C scorer (shared with the batch side)."""
        return self.batch.cc_scorer

    @property
    def similarity_scorer(self):
        """The trained regression similarity scorer (shared)."""
        return self.batch.similarity_scorer

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def submit_raw(
        self,
        records: Iterable[ProxyRecord],
        resolver: IpResolver | None = None,
    ) -> int:
        """Normalize raw proxy records onto the event bus.

        ``resolver`` joins dynamic client addresses against DHCP/VPN
        leases; omit it for pre-joined logs whose source field already
        carries a stable hostname (the form fleet layouts ship).
        """
        return self.bus.publish(
            normalize_proxy_records(
                records,
                resolver if resolver is not None else IpResolver(),
                fold_level=self.config.rarity.fold_level,
            )
        )

    # ------------------------------------------------------------------
    # Intra-day scoring
    # ------------------------------------------------------------------

    def score(self) -> StreamUpdate:
        """Re-score the current window and return the live detections.

        The same daily stages as :meth:`EnterpriseDetector.process_day`
        in no-hint mode -- automation test, regression C&C scoring,
        belief propagation -- but each stage touches only state
        invalidated since the previous call, and belief propagation
        warm-starts from the previous round when safe.
        """
        traffic = self.window.traffic
        verdicts = self._refresh_verdicts()
        when = (self.window.day + 1) * SECONDS_PER_DAY
        auto_hosts = _automated_hosts_by_domain(verdicts)
        with _frozen_imputation(self.batch):
            candidates = sorted(auto_hosts)
            scores = self.cc_scorer.score_all(
                candidates, traffic, auto_hosts, when
            )
            cc = {
                domain
                for domain, score in zip(candidates, scores)
                if score >= self.cc_scorer.threshold
            }
            seed_hosts: set[str] = set()
            for domain in cc:
                seed_hosts.update(traffic.hosts_by_domain.get(domain, ()))

            # Regression C&C verdicts are not monotone: new events can
            # push a domain's score back below Tc or flip its series to
            # not-automated.  If any domain the prior round believed
            # C&C-like no longer is, drop the prior entirely so this
            # round recomputes cold (same policy as the DNS engine).
            if self.prior is not None:
                prior_cc = {
                    d.domain for d in self.prior.detections
                    if d.reason in ("seed", "cc")
                }
                if not prior_cc <= cc:
                    self.prior = None

            if not seed_hosts and self.prior is None:
                self.graph.clear_dirty()
                self.metrics.counter(
                    "stream_score_rounds_total", mode="idle"
                ).inc()
                return StreamUpdate(
                    day=self.window.day,
                    events_today=self.window.events_today,
                    rare_count=len(self.window.rare),
                    cc_domains=frozenset(cc),
                    detected=(),
                    mode="idle",
                )

            batched = BatchedSimilarityScorer(
                self.similarity_scorer, traffic, when
            )
            with self.metrics.span("stream_score"):
                result, mode = warm_start_belief_propagation(
                    seed_hosts,
                    set(cc),
                    graph=self.graph,
                    detect_cc=lambda dom: dom in cc,
                    score_frontier=batched.score_frontier,
                    config=self.config,
                    prior=self.prior,
                    warm=self.warm,
                    metrics=self.metrics,
                )
        self.metrics.counter("stream_score_rounds_total", mode=mode).inc()
        self.prior = result
        detected = sorted(cc) + [
            d for d in result.detected_domains if d not in cc
        ]
        return StreamUpdate(
            day=self.window.day,
            events_today=self.window.events_today,
            rare_count=len(self.window.rare),
            cc_domains=frozenset(cc),
            detected=tuple(detected),
            mode=mode,
            bp_result=result,
        )

    # ------------------------------------------------------------------
    # Day boundary
    # ------------------------------------------------------------------

    def rollover(
        self,
        *,
        detect: bool = True,
        soc_seed_domains: Iterable[str] = (),
        intel_domains: Set[str] = frozenset(),
        ct_edges=None,
    ) -> StreamDayReport:
        """Close the day: batch-parity detection, then commit histories.

        The detection pass is
        :func:`repro.core.pipeline.detect_on_enterprise_traffic` -- the
        batch pipeline's own daily routine -- over the full window, so
        the report equals what :meth:`EnterpriseDetector.process_day`
        produces for the same connections.  Histories commit exactly
        once, in :meth:`WindowedAggregator.rollover`.
        """
        stage_seconds: dict[str, float] = {}
        with self.metrics.span("rollover_rare") as rare_span:
            traffic = self.window.traffic
            traffic.finalize()
            rare = extract_rare_domains(
                traffic,
                self.history,
                unpopular_max_hosts=self.config.rarity.unpopular_max_hosts,
            )
        stage_seconds["rare"] = rare_span.elapsed
        if detect:
            result = detect_on_enterprise_traffic(
                traffic,
                rare,
                day=self.window.day,
                automation=self.automation,
                cc_scorer=self.cc_scorer,
                similarity_scorer=self.similarity_scorer,
                config=self.config,
                soc_seed_domains=soc_seed_domains,
                intel_domains=intel_domains,
                ct_edges=ct_edges,
                metrics=self.metrics,
            )
            stage_seconds.update(result.stage_seconds)
            seeds = (
                result.cc_domain_names
                | result.intel_seeded
                | result.ct_seeded
            )
            detected = sorted(seeds)
            if result.no_hint is not None:
                detected += [
                    d for d in result.no_hint.detected_domains
                    if d not in seeds
                ]
            if result.soc_hints is not None:
                detected += [
                    d for d in result.soc_hints.detected_domains
                    if d not in seeds and d not in detected
                ]
            report = StreamDayReport(
                day=self.window.day,
                records=self.window.events_today,
                rare_domains=rare,
                cc_domains=set(result.cc_domain_names),
                detected=detected,
                bp_result=result.no_hint,
                intel_seeded=result.intel_seeded,
                ct_seeded=result.ct_seeded,
                day_result=result,
            )
            self.metrics.counter("stream_detections_total").inc(
                len(detected)
            )
        else:
            report = StreamDayReport(
                day=self.window.day,
                records=self.window.events_today,
                rare_domains=rare,
                cc_domains=set(),
                detected=[],
            )
        with self.metrics.span("rollover_commit") as commit_span:
            self._reset_day()
        stage_seconds["commit"] = commit_span.elapsed
        report.stage_seconds = stage_seconds
        self.metrics.counter("stream_days_total").inc()
        return report


# ---------------------------------------------------------------------------
# Directory replay (the `repro-detect stream --pipeline enterprise` engine)
# ---------------------------------------------------------------------------

def replay_enterprise_directory(
    directory: str | Path,
    *,
    model_state: str | Path,
    bootstrap_files: int = 0,
    pattern: str = "proxy-*.log",
    whois_path: str | Path | None = None,
    whois=None,
    batch_size: int = 500,
    score_every: int = 1,
    warm: WarmStartConfig | None = None,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = 1,
    resume: bool = False,
    max_batches: int | None = None,
    on_update=None,
    metrics=None,
) -> ReplayResult:
    """Replay a directory of daily proxy logs as an event stream.

    The enterprise analogue of :func:`repro.streaming.replay_directory`:
    the trained detector comes from ``model_state`` (as written by
    ``repro-detect enterprise --save-state`` or a generated layout's
    ``model.json``), the first ``bootstrap_files`` logs only extend the
    profiles, and the rest are consumed in ``batch_size`` micro-batches
    with a scoring round every ``score_every`` batches and a day
    rollover per file.  Logs are expected pre-joined (stable hostnames
    in the source field); ``whois_path`` re-attaches the registration
    registry the regression features query.  ``whois`` passes an
    already-built lookup object instead (anything with a
    ``lookup(domain)`` method, e.g. a :class:`repro.intelstore.store
    .StoreCachingWhois` hydrated from a durable intel store) and takes
    precedence over ``whois_path``.

    Checkpoint/resume semantics match the DNS replay: with
    ``checkpoint_path`` the full engine state is persisted every
    ``checkpoint_every`` micro-batches and after each rollover, and
    ``resume=True`` restores from it and continues from the exact
    event where the previous process stopped.
    """
    from ..intel.whois_db import load_whois_file
    from ..state import load_detector, load_streaming_enterprise
    from ..state import save_streaming_enterprise

    validate_replay_intervals(score_every, checkpoint_every)
    paths = resolve_replay_paths(directory, pattern, bootstrap_files)
    if whois is None:
        whois = (
            load_whois_file(whois_path) if whois_path is not None else None
        )

    detector: StreamingEnterpriseDetector | None = None
    if resume:
        if checkpoint_path is None:
            raise ValueError("resume requires a checkpoint path")
        if Path(checkpoint_path).exists():
            detector = load_streaming_enterprise(
                checkpoint_path, whois=whois, metrics=metrics
            )
            if warm is not None:
                detector.warm = warm
    if detector is None:
        detector = StreamingEnterpriseDetector(
            load_detector(model_state, whois=whois),
            warm=warm,
            metrics=metrics,
        )

    def open_events(path: Path):
        with path.open() as handle:
            yield from normalize_proxy_records(
                parse_proxy_log(handle),
                IpResolver(),
                fold_level=detector.config.rarity.fold_level,
            )

    def checkpoint() -> None:
        if checkpoint_path is not None:
            save_streaming_enterprise(detector, checkpoint_path)

    return drive_replay(
        detector,
        paths,
        bootstrap_files=bootstrap_files,
        open_events=open_events,
        checkpoint=checkpoint,
        resume=resume,
        batch_size=batch_size,
        score_every=score_every,
        checkpoint_every=checkpoint_every,
        max_batches=max_batches,
        on_update=on_update,
        # The enterprise engine's day counter starts at its trained
        # start day, so the file index is the offset from it.
        resume_file=detector.window.day - detector.start_day,
    )


__all__ = [
    "StreamingEnterpriseDetector",
    "replay_enterprise_directory",
]
