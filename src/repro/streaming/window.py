"""Windowed profiling: the current day as an incrementally built window.

The batch pipeline rebuilds a :class:`~repro.profiling.rare.DailyTraffic`
aggregate and re-extracts the rare set from scratch for every run; the
:class:`WindowedAggregator` maintains both *as events arrive*:

* the day's traffic indexes grow per micro-batch (append-only);
* the rare-destination set is tracked by a
  :class:`~repro.profiling.rare.RareDomainTracker`, reacting to
  popularity changes instead of rescanning all domains;
* dirty (host, domain) pairs and rarity flips are exposed so the
  detector can invalidate exactly the automation verdicts and graph
  neighborhoods that changed.

At a day boundary, :meth:`rollover` commits the window into the
long-lived :class:`~repro.profiling.history.DestinationHistory` (and
:class:`~repro.profiling.ua.UserAgentHistory` when present) exactly
once -- the same end-of-day update the paper's nightly cycle performs
-- and opens a fresh window.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..logs.records import Connection, ConnectionBatch
from ..profiling.history import DestinationHistory
from ..profiling.rare import DailyTraffic, IngestDigest, RareDomainTracker
from ..profiling.ua import UserAgentHistory


class WindowedAggregator:
    """Maintains the current day's traffic window incrementally."""

    def __init__(
        self,
        day: int,
        history: DestinationHistory,
        *,
        unpopular_max_hosts: int = 10,
        ua_history: UserAgentHistory | None = None,
    ) -> None:
        self.day = day
        self.history = history
        self.ua_history = ua_history
        self.traffic = DailyTraffic(day)
        # Arm the scoring index now: every ingest from here on updates
        # it incrementally, so scoring rounds never rebuild it.
        self.traffic.index()
        self.tracker = RareDomainTracker(
            history, unpopular_max_hosts=unpopular_max_hosts
        )
        self.events_today = 0
        #: (host, domain) pairs with new events since the last drain.
        self.dirty_pairs: set[tuple[str, str]] = set()
        #: domains whose rarity flipped since the last drain.
        self.rare_changes: set[str] = set()

    @property
    def rare(self) -> set[str]:
        """The window's current rare-destination set."""
        return self.tracker.rare

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(
        self, connections: Iterable[Connection] | ConnectionBatch
    ) -> IngestDigest:
        """Fold a micro-batch into the window; returns its digest.

        The columnar :meth:`DailyTraffic.ingest
        <repro.profiling.rare.DailyTraffic.ingest>` already groups the
        batch once; everything here (UA staging apart) reads the
        resulting :class:`~repro.profiling.rare.IngestDigest` instead
        of re-looping over the connections.
        """
        traffic = self.traffic
        if self.ua_history is not None:
            # UA staging rides inside the traffic ingest loop (the
            # ``ua_stage`` hook fires per scalar event with the fields
            # already in hand); columnar batch rows carry no UA by
            # construction, so they stage nothing, matching the scalar
            # DNS-path behaviour of staging ``None``.
            digest = traffic.ingest(
                connections,
                ua_is_rare=self.ua_history.is_rare,
                ua_stage=self.ua_history.stage,
            )
        else:
            digest = traffic.ingest(connections)
        hosts_by_domain = traffic.hosts_by_domain
        update = self.tracker.update
        rare_changes = self.rare_changes
        for domain in digest.domains:
            if update(domain, len(hosts_by_domain[domain])):
                rare_changes.add(domain)
        self.dirty_pairs.update(digest.named_pairs)
        self.events_today += digest.n_events
        return digest

    def drain_changes(self) -> tuple[set[tuple[str, str]], set[str]]:
        """Return and clear (dirty pairs, rarity flips) since last drain."""
        dirty, flips = self.dirty_pairs, self.rare_changes
        self.dirty_pairs, self.rare_changes = set(), set()
        return dirty, flips

    # ------------------------------------------------------------------
    # Day boundary
    # ------------------------------------------------------------------

    def rollover(self) -> DailyTraffic:
        """Close the window: commit histories once, open the next day.

        Staging happens here rather than per event, mirroring
        :class:`~repro.runner.DnsLogRunner`: domains observed today
        still count as *new* for today's own detection, and a mid-day
        checkpoint never holds half-staged history state.
        """
        self.traffic.finalize()
        finished = self.traffic
        for domain in finished.hosts_by_domain:
            self.history.stage(domain, self.day)
        self.history.commit_day(self.day)
        if self.ua_history is not None:
            self.ua_history.commit_day()
        self.day += 1
        self.traffic = DailyTraffic(self.day)
        self.traffic.index()
        self.tracker.reset()
        self.dirty_pairs.clear()
        self.rare_changes.clear()
        self.events_today = 0
        return finished

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def resync(self) -> None:
        """Recompute derived state from the traffic indexes (restore path)."""
        self.traffic.finalize()
        # Checkpoint restore fills the traffic dicts directly, behind
        # the armed index's back -- rebuild it from the restored state.
        self.traffic.drop_index()
        self.traffic.index()
        self.tracker.resync(self.traffic)
        self.dirty_pairs = set(self.traffic.timestamps)
        self.rare_changes = set()
