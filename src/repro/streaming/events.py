"""Event ingestion layer: micro-batches, host sharding, DNS adaptation.

The batch pipeline consumes whole days of records at once; a streaming
deployment receives events continuously from many collectors.  This
module provides the glue between the two worlds:

* :class:`EventBus` -- an in-process, host-sharded queue of normalized
  :class:`~repro.logs.records.Connection` events.  Sharding by host is
  the natural partition for this workload: every per-day index the
  detectors consume (timestamp series, ``host_rdom``) is keyed by
  host first, so shard consumers never contend on the same series.
  Shard assignment uses CRC32 so it is stable across processes and
  Python hash randomization.
* :func:`dns_connection_stream` -- adapts a raw DNS record stream into
  normalized connections by routing single events through the existing
  :class:`~repro.logs.reduction.ReductionFunnel` and
  :func:`~repro.logs.normalize.normalize_dns_records`, so the
  streaming path reuses the exact reduction and normalization code of
  the batch pipeline (and the same Figure 2 accounting).
* :func:`dns_batch_stream` -- the columnar twin of
  :func:`dns_connection_stream`: one fused loop that reduces,
  normalizes, and groups raw DNS records straight into
  :class:`~repro.logs.records.ConnectionBatch` columns, skipping
  per-event object creation entirely.
* :func:`micro_batches` -- group any event iterator into bounded
  batches, the unit of ingestion and scoring.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator
from itertools import islice
from zlib import crc32

from ..logs.domains import fold_domain
from ..logs.normalize import normalize_dns_records
from ..logs.records import Connection, ConnectionBatch, DnsRecord
from ..logs.reduction import ReductionFunnel


def shard_of(host: str, n_shards: int) -> int:
    """Stable shard index of ``host`` (CRC32, not ``hash``)."""
    return crc32(host.encode("utf-8", "replace")) % n_shards


class EventBus:
    """In-process event queue sharded by source host.

    Producers :meth:`publish` connections (singly or in micro-batches);
    consumers :meth:`drain` one shard or all of them.  The bus is
    deliberately synchronous -- it models the partition boundaries a
    distributed deployment would place between collector and detector
    processes, while keeping replays deterministic.  Draining all
    shards interleaves events across hosts, which is safe because every
    downstream aggregate is order-insensitive within a day.
    """

    def __init__(self, n_shards: int = 4) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        self.n_shards = n_shards
        self._shards: list[deque[Connection | ConnectionBatch]] = [
            deque() for _ in range(n_shards)
        ]
        self._shard_memo: dict[str, int] = {}
        self.published = 0
        self.drained = 0

    def __len__(self) -> int:
        """Pending event count (batch items count their rows)."""
        return sum(self.shard_sizes())

    def shard_sizes(self) -> list[int]:
        """Pending event counts per shard (batch items count their rows)."""
        return [
            sum(
                len(item) if isinstance(item, ConnectionBatch) else 1
                for item in shard
            )
            for shard in self._shards
        ]

    def publish(self, events: Iterable[Connection] | ConnectionBatch) -> int:
        """Route events to their host shards; returns the count.

        A :class:`~repro.logs.records.ConnectionBatch` is routed
        columnar: its rows are split into per-shard sub-batches that
        travel through the queue as single items, so a drain hands the
        window whole columns instead of one object per event.
        """
        if isinstance(events, ConnectionBatch):
            return self._publish_batch(events)
        count = 0
        memo = self._shard_memo
        shards = self._shards
        n_shards = self.n_shards
        for event in events:
            host = event.host
            shard = memo.get(host)
            if shard is None:
                shard = shard_of(host, n_shards)
                memo[host] = shard
            shards[shard].append(event)
            count += 1
        self.published += count
        return count

    def _publish_batch(self, batch: ConnectionBatch) -> int:
        """Split a columnar batch into per-shard sub-batches."""
        count = len(batch)
        if not count:
            return 0
        n_shards = self.n_shards
        if n_shards == 1:
            self._shards[0].append(batch)
            self.published += count
            return count
        memo = self._shard_memo
        rows: list[list[int] | None] = [None] * n_shards
        for position, host in enumerate(batch.hosts):
            shard = memo.get(host)
            if shard is None:
                shard = shard_of(host, n_shards)
                memo[host] = shard
            row = rows[shard]
            if row is None:
                rows[shard] = [position]
            else:
                row.append(position)
        times = batch.timestamps
        hosts = batch.hosts
        domains = batch.domains
        ips = batch.resolved_ips
        for shard, row in enumerate(rows):
            if row is None:
                continue
            if len(row) == count:
                # Every row landed on one shard -- ship the original.
                self._shards[shard].append(batch)
                break
            self._shards[shard].append(
                ConnectionBatch(
                    [times[i] for i in row],
                    [hosts[i] for i in row],
                    [domains[i] for i in row],
                    [ips[i] for i in row],
                )
            )
        self.published += count
        return count

    def drain(
        self, shard: int | None = None, max_events: int | None = None
    ) -> list[Connection | ConnectionBatch]:
        """Pop up to ``max_events`` events (all shards unless one is given).

        With ``shard=None`` and a ``max_events`` bound the shards are
        drained round-robin so no single busy host can starve the
        others; an unbounded drain empties shard by shard instead --
        within a day every downstream aggregate is order-insensitive
        (see the class docstring), and the bulk path skips the
        per-event rotation.  The returned list mixes scalar events and
        whole columnar batches; ``max_events`` bounds the total *event*
        count, and a batch is never split, so the bound can overshoot
        by at most one batch.
        """
        shards = self._shards if shard is None else [self._shards[shard]]
        out: list[Connection | ConnectionBatch] = []
        count = 0
        if max_events is None:
            for queue in shards:
                if not queue:
                    continue
                for item in queue:
                    count += (
                        len(item) if item.__class__ is ConnectionBatch else 1
                    )
                out.extend(queue)
                queue.clear()
            self.drained += count
            return out
        while any(shards):
            for queue in shards:
                if queue:
                    item = queue.popleft()
                    out.append(item)
                    count += (
                        len(item)
                        if isinstance(item, ConnectionBatch)
                        else 1
                    )
                    if max_events is not None and count >= max_events:
                        self.drained += count
                        return out
        self.drained += count
        return out


def dns_connection_stream(
    records: Iterable[DnsRecord],
    funnel: ReductionFunnel,
    *,
    fold_level: int = 3,
) -> Iterator[Connection]:
    """Reduce + normalize a raw DNS record stream, one event at a time.

    Both stages are the batch pipeline's own generators, so a replayed
    stream is byte-identical to a bulk pass over the same records.
    """
    return normalize_dns_records(funnel.reduce(records), fold_level=fold_level)


def dns_batch_stream(
    records: Iterable[DnsRecord],
    funnel: ReductionFunnel,
    *,
    fold_level: int = 3,
    batch_size: int = 512,
) -> Iterator[ConnectionBatch]:
    """Reduce + normalize a raw DNS stream into columnar micro-batches.

    Fuses the three per-event generators of the scalar path
    (:meth:`~repro.logs.reduction.ReductionFunnel.reduce`,
    :func:`~repro.logs.normalize.normalize_dns_records`,
    :func:`micro_batches`) into one chunked loop that appends
    surviving records straight into column lists -- no per-event
    :class:`~repro.logs.records.Connection` objects and no generator
    round-trips.  Reduction accounting runs through the funnel's own
    :meth:`~repro.logs.reduction.ReductionFunnel.reduce_batch` and
    folding is memoized exactly like the scalar normalizer, so the
    Figure 2 funnel and the produced events are identical to
    :func:`dns_connection_stream` + :func:`micro_batches`.
    """
    if batch_size < 1:
        raise ValueError("batch size must be positive")
    reduce_batch = funnel.reduce_batch
    folded: dict[str, str] = {}
    times: list[float] = []
    hosts: list[str] = []
    domains: list[str] = []
    ips: list[str] = []
    chunk_size = max(batch_size, 2048)
    source = iter(records)
    try:
        while True:
            chunk = list(islice(source, chunk_size))
            if not chunk:
                break
            for record in reduce_batch(chunk):
                domain = folded.get(record.domain)
                if domain is None:
                    domain = fold_domain(record.domain, fold_level)
                    folded[record.domain] = domain
                times.append(record.timestamp)
                hosts.append(record.source_ip)
                domains.append(domain)
                ips.append(record.resolved_ip)
                if len(times) >= batch_size:
                    yield ConnectionBatch(times, hosts, domains, ips)
                    times, hosts, domains, ips = [], [], [], []
        if times:
            yield ConnectionBatch(times, hosts, domains, ips)
    finally:
        funnel.flush_metrics()


def micro_batches(
    events: Iterable[Connection], size: int
) -> Iterator[list[Connection]]:
    """Group an event stream into micro-batches of at most ``size``."""
    if size < 1:
        raise ValueError("batch size must be positive")
    source = iter(events)
    while batch := list(islice(source, size)):
        yield batch
