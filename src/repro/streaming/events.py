"""Event ingestion layer: micro-batches, host sharding, DNS adaptation.

The batch pipeline consumes whole days of records at once; a streaming
deployment receives events continuously from many collectors.  This
module provides the glue between the two worlds:

* :class:`EventBus` -- an in-process, host-sharded queue of normalized
  :class:`~repro.logs.records.Connection` events.  Sharding by host is
  the natural partition for this workload: every per-day index the
  detectors consume (timestamp series, ``host_rdom``) is keyed by
  host first, so shard consumers never contend on the same series.
  Shard assignment uses CRC32 so it is stable across processes and
  Python hash randomization.
* :func:`dns_connection_stream` -- adapts a raw DNS record stream into
  normalized connections by routing single events through the existing
  :class:`~repro.logs.reduction.ReductionFunnel` and
  :func:`~repro.logs.normalize.normalize_dns_records`, so the
  streaming path reuses the exact reduction and normalization code of
  the batch pipeline (and the same Figure 2 accounting).
* :func:`micro_batches` -- group any event iterator into bounded
  batches, the unit of ingestion and scoring.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator
from zlib import crc32

from ..logs.normalize import normalize_dns_records
from ..logs.records import Connection, DnsRecord
from ..logs.reduction import ReductionFunnel


def shard_of(host: str, n_shards: int) -> int:
    """Stable shard index of ``host`` (CRC32, not ``hash``)."""
    return crc32(host.encode("utf-8", "replace")) % n_shards


class EventBus:
    """In-process event queue sharded by source host.

    Producers :meth:`publish` connections (singly or in micro-batches);
    consumers :meth:`drain` one shard or all of them.  The bus is
    deliberately synchronous -- it models the partition boundaries a
    distributed deployment would place between collector and detector
    processes, while keeping replays deterministic.  Draining all
    shards interleaves events across hosts, which is safe because every
    downstream aggregate is order-insensitive within a day.
    """

    def __init__(self, n_shards: int = 4) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        self.n_shards = n_shards
        self._shards: list[deque[Connection]] = [deque() for _ in range(n_shards)]
        self.published = 0
        self.drained = 0

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def shard_sizes(self) -> list[int]:
        return [len(shard) for shard in self._shards]

    def publish(self, events: Iterable[Connection]) -> int:
        """Route events to their host shards; returns the count."""
        count = 0
        for event in events:
            self._shards[shard_of(event.host, self.n_shards)].append(event)
            count += 1
        self.published += count
        return count

    def drain(
        self, shard: int | None = None, max_events: int | None = None
    ) -> list[Connection]:
        """Pop up to ``max_events`` events (all shards unless one is given).

        With ``shard=None`` the shards are drained round-robin so no
        single busy host can starve the others.
        """
        shards = self._shards if shard is None else [self._shards[shard]]
        out: list[Connection] = []
        while any(shards):
            for queue in shards:
                if queue:
                    out.append(queue.popleft())
                    if max_events is not None and len(out) >= max_events:
                        self.drained += len(out)
                        return out
        self.drained += len(out)
        return out


def dns_connection_stream(
    records: Iterable[DnsRecord],
    funnel: ReductionFunnel,
    *,
    fold_level: int = 3,
) -> Iterator[Connection]:
    """Reduce + normalize a raw DNS record stream, one event at a time.

    Both stages are the batch pipeline's own generators, so a replayed
    stream is byte-identical to a bulk pass over the same records.
    """
    return normalize_dns_records(funnel.reduce(records), fold_level=fold_level)


def micro_batches(
    events: Iterable[Connection], size: int
) -> Iterator[list[Connection]]:
    """Group an event stream into micro-batches of at most ``size``."""
    if size < 1:
        raise ValueError("batch size must be positive")
    batch: list[Connection] = []
    for event in events:
        batch.append(event)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch
