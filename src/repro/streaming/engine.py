"""Shared machinery of the streaming detection engines.

Both online engines -- the DNS/LANL-path
:class:`~repro.streaming.detector.StreamingDetector` and the
enterprise/proxy-path
:class:`~repro.streaming.enterprise.StreamingEnterpriseDetector` --
consume events the same way: publish onto a host-sharded
:class:`~repro.streaming.events.EventBus`, drain into a
:class:`~repro.streaming.window.WindowedAggregator` (whose armed
:class:`~repro.profiling.index.TrafficIndex` absorbs each micro-batch,
keeping frontier scoring rebuild-free), mirror rarity
flips into an :class:`~repro.streaming.incremental.IncrementalGraph`,
and re-test only the (host, domain) timestamp series that saw new
events through a period-aware
:class:`~repro.streaming.verdicts.SeriesVerdictCache`.

:class:`StreamingEngineBase` holds exactly that pipeline-independent
state and its invalidation bookkeeping.  What differs between the two
paths -- how raw records are normalized, which scorers turn automation
verdicts into C&C labels, and what the end-of-day batch-parity pass
runs -- lives in the subclasses (:meth:`submit_raw`, ``score()`` and
``rollover()``).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..logs.records import Connection, ConnectionBatch
from ..obs.logs import get_logger, log_event
from ..obs.metrics import NULL_METRICS
from ..profiling.history import DestinationHistory
from ..profiling.ua import UserAgentHistory
from ..timing.detector import AutomationDetector, AutomationVerdict
from .events import EventBus, micro_batches
from .incremental import IncrementalGraph, WarmStartConfig
from .verdicts import SeriesVerdictCache, VerdictCacheStats
from .window import WindowedAggregator

_LOG = get_logger("stream")


class StreamingEngineBase:
    """Ingestion, windowing and verdict-invalidation shared by engines.

    Subclasses own the detection-specific pieces (scorers, reduction,
    the end-of-day parity pass); this base guarantees that whatever the
    pipeline, the window's indexes, the incremental graph and the
    cached automation verdicts stay mutually consistent as events
    arrive, and that a checkpoint restore can rebuild all derived
    state with :meth:`resync`.
    """

    def __init__(
        self,
        *,
        history: DestinationHistory,
        automation: AutomationDetector,
        unpopular_max_hosts: int,
        ua_history: UserAgentHistory | None = None,
        warm: WarmStartConfig | None = None,
        n_shards: int = 4,
        start_day: int = 0,
        metrics=None,
    ) -> None:
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.history = history
        self.automation = automation
        self.window = WindowedAggregator(
            start_day,
            history,
            unpopular_max_hosts=unpopular_max_hosts,
            ua_history=ua_history,
        )
        self.graph = IncrementalGraph()
        self.bus = EventBus(n_shards)
        self.warm = warm or WarmStartConfig()
        self.prior = None
        self._verdicts: dict[tuple[str, str], AutomationVerdict] = {}
        self._stale_pairs: set[tuple[str, str]] = set()
        self._series_cache = SeriesVerdictCache(self.automation)
        self._pending_times: dict[tuple[str, str], list[float]] = {}
        self.events_total = 0
        # Unified registry: the verdict cache's plain-int skip/test
        # counters are sampled into every metrics snapshot.
        self.metrics.add_collector(self._series_cache.stats.metrics_samples)
        self._events_counter = self.metrics.counter("stream_events_total")
        self._polls_counter = self.metrics.counter("stream_polls_total")

    @property
    def verdict_stats(self) -> VerdictCacheStats:
        """Skip/test counters of the period-aware verdict cache."""
        return self._series_cache.stats

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def submit(
        self, connections: Iterable[Connection] | ConnectionBatch
    ) -> int:
        """Publish already-normalized connections onto the event bus.

        Accepts a scalar event iterable or one columnar
        :class:`~repro.logs.records.ConnectionBatch`; batches travel
        through the bus whole and ingest through the columnar path.
        """
        return self.bus.publish(connections)

    def poll(self, max_events: int | None = None) -> int:
        """Drain the bus into the window; returns events consumed."""
        items = self.bus.drain(max_events=max_events)
        if not items:
            return 0
        self._polls_counter.inc()
        with self.metrics.span("stream_ingest"):
            events = self._ingest(items)
        self._events_counter.inc(events)
        return events

    def ingest(self, connections: Iterable[Connection]) -> int:
        """Synchronous convenience: publish one micro-batch and drain it.

        When the bus is empty the publish/drain round-trip is pure
        ceremony -- there is nothing to interleave with, and draining
        right back is order-equivalent to ingesting directly (within a
        day every aggregate is order-insensitive) -- so the batch goes
        straight to the window.  The bus counters advance either way,
        keeping observability identical.
        """
        if len(self.bus) != 0:
            published = self.submit(connections)
            self.poll()
            return published
        if isinstance(connections, (Connection, ConnectionBatch)):
            items: Sequence[Connection | ConnectionBatch] = (connections,)
        elif isinstance(connections, (list, tuple)):
            items = connections
        else:
            items = list(connections)
        if not items:
            return 0
        self._polls_counter.inc()
        with self.metrics.span("stream_ingest"):
            events = self._ingest(items)
        self._events_counter.inc(events)
        self.bus.published += events
        self.bus.drained += events
        return events

    def _ingest(
        self, batch: Sequence[Connection | ConnectionBatch]
    ) -> int:
        # A drained item list mixes scalar events and whole columnar
        # batches; the window (via the columnar traffic store) stages
        # them all in arrival order and folds the poll through ONE
        # grouping pass.
        digest = self.window.ingest(batch)
        total = digest.n_events
        # The digest's per-pair chunks are exactly the poll's
        # timestamps (sorted within the poll -- the verdict cache
        # sorts pending times anyway), so pending bookkeeping is per
        # *pair*, not per event.
        pending = self._pending_times
        for key, chunk in zip(digest.named_pairs, digest.chunks):
            times = pending.get(key)
            if times is None:
                pending[key] = list(chunk)
            else:
                times += chunk
        self.events_total += total
        dirty_pairs, flips = self.window.drain_changes()
        rare = self.window.rare
        for domain in flips:
            if domain in rare:
                # Newly rare: materialize all of its edges so far.
                for host in self.window.traffic.hosts_by_domain[domain]:
                    self.graph.add_edge(host, domain)
            else:
                self.graph.remove_domain(domain)
                for host in self.window.traffic.hosts_by_domain[domain]:
                    self._verdicts.pop((host, domain), None)
                    self._series_cache.invalidate((host, domain))
        for host, domain in dirty_pairs:
            if domain in rare:
                self.graph.add_edge(host, domain)
        self._stale_pairs.update(dirty_pairs)
        return total

    # ------------------------------------------------------------------
    # Verdict refresh (intra-day scoring support)
    # ------------------------------------------------------------------

    def _refresh_verdicts(self) -> list[AutomationVerdict]:
        """Re-test only (host, domain) series with new events.

        The :class:`SeriesVerdictCache` makes each re-test proportional
        to the *new* events: short series skip the histogram entirely,
        append-only arrivals extend the cached clusters, and on-period
        beacons skip even the divergence recomputation.
        """
        self.window.traffic.finalize()
        rare = self.window.rare
        pending = self._pending_times
        verdicts = self._verdicts
        cache = self._series_cache
        timestamps = self.window.traffic.timestamps
        not_rare = 0
        for pair in self._stale_pairs:
            domain = pair[1]
            if domain not in rare:
                # Not a candidate; the rarity-flip handling already
                # cleared any verdict it could have had.
                verdicts.pop(pair, None)
                not_rare += 1
                continue
            verdict = cache.test(
                pair[0], domain,
                timestamps.get(pair, []),
                pending.pop(pair, ()),
            )
            if verdict.automated:
                verdicts[pair] = verdict
            else:
                verdicts.pop(pair, None)
        if not_rare:
            cache.stats.not_rare_skips += not_rare
        self._stale_pairs.clear()
        self._pending_times.clear()
        return [verdicts[pair] for pair in sorted(verdicts)]

    # ------------------------------------------------------------------
    # Day boundary / restore plumbing
    # ------------------------------------------------------------------

    def _reset_day(self) -> None:
        """Close the window (committing histories once) and clear all
        per-day derived state for the next day."""
        with self.metrics.span("window_rollover"):
            self.window.rollover()
        self.graph.clear()
        self.prior = None
        self._verdicts.clear()
        self._stale_pairs.clear()
        self._series_cache.clear()
        self._pending_times.clear()

    def resync(self) -> None:
        """Rebuild all derived state from the window (restore path)."""
        self.window.resync()
        self.graph = IncrementalGraph.from_traffic(
            self.window.traffic, self.window.rare
        )
        self._verdicts.clear()
        self._series_cache.clear()
        self._pending_times.clear()
        self._stale_pairs = set(self.window.traffic.timestamps)


# ---------------------------------------------------------------------------
# Directory replay driver (shared by both pipelines' replay functions)
# ---------------------------------------------------------------------------

@dataclass
class ReplayResult:
    """What a (possibly interrupted) directory replay produced."""

    reports: list = field(default_factory=list)
    updates: int = 0
    batches: int = 0
    interrupted: bool = False


def validate_replay_intervals(score_every: int, checkpoint_every: int) -> None:
    """Reject nonpositive scoring/checkpoint cadences up front."""
    if score_every < 1:
        raise ValueError("score_every must be positive")
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be positive")


def resolve_replay_paths(
    directory: str | Path, pattern: str, bootstrap_files: int
) -> list[Path]:
    """The directory's daily log files, validated against the bootstrap
    count (a replay needs at least one operational file)."""
    paths = sorted(Path(directory).glob(pattern))
    if len(paths) <= bootstrap_files:
        raise ValueError(
            f"need more than {bootstrap_files} files in {directory}, "
            f"found {len(paths)}"
        )
    return paths


def drive_replay(
    detector,
    paths: Sequence[Path],
    *,
    bootstrap_files: int,
    open_events,
    checkpoint,
    resume: bool,
    batch_size: int,
    score_every: int,
    checkpoint_every: int,
    max_batches: int | None,
    on_update,
    resume_file: int,
) -> ReplayResult:
    """Feed daily log files through a streaming engine, micro-batched.

    The single replay loop both pipelines share -- the engine-specific
    pieces arrive as callables: ``open_events(path)`` yields the file's
    normalized connections (owning the handle), ``checkpoint()``
    persists the engine (no-op without a checkpoint path).  The loop
    invariants live here exactly once: each rollover advances the
    window day, so ``window.day``'s offset from the engine's start day
    (``resume_file``) is the index of the file in progress, and
    ``window.events_today`` counts how many of that file's normalized
    events were already consumed before a restart.
    """
    validate_replay_intervals(score_every, checkpoint_every)
    result = ReplayResult()
    skip_events = detector.window.events_today if resume else 0
    for index, path in enumerate(paths):
        if index < resume_file:
            continue
        is_bootstrap = index < bootstrap_files
        events = open_events(path)
        if index == resume_file and skip_events:
            remaining = skip_events
            for _ in events:
                remaining -= 1
                if remaining == 0:
                    break
        for batch in micro_batches(events, batch_size):
            detector.submit(batch)
            detector.poll()
            result.batches += 1
            if not is_bootstrap and result.batches % score_every == 0:
                update = detector.score()
                result.updates += 1
                if on_update is not None:
                    on_update(update)
            if result.batches % checkpoint_every == 0:
                checkpoint()
            if max_batches is not None and result.batches >= max_batches:
                checkpoint()
                result.interrupted = True
                return result
        report = detector.rollover(detect=not is_bootstrap)
        log_event(
            _LOG,
            "day_rollover",
            day=report.day,
            file=path.name,
            records=report.records,
            rare=len(report.rare_domains),
            detected=len(report.detected),
            bootstrap=is_bootstrap,
        )
        if not is_bootstrap:
            result.reports.append(report)
        checkpoint()
    return result
