"""Streaming detection facade: the batch detector turned online.

:class:`StreamingDetector` accepts DNS events one at a time or in
micro-batches and keeps a continuously updated view of the current
day's detections, minutes after the evidence arrives instead of at
end-of-day batch close.  It composes the streaming substrates --
:class:`~repro.streaming.events.EventBus`,
:class:`~repro.streaming.window.WindowedAggregator`,
:class:`~repro.streaming.incremental.IncrementalGraph` -- on top of the
*unchanged* batch components (reduction funnel, automation detector,
additive scorer, belief propagation).

**Batch-parity guarantee.**  At a day boundary, :meth:`rollover` runs
:func:`repro.runner.detect_on_traffic` -- the very routine
:class:`~repro.runner.DnsLogRunner` runs -- over the accumulated
window, whose indexes are identical to a bulk aggregation of the same
records.  Replaying a day through the streaming engine therefore
yields exactly the batch pipeline's end-of-day detections; the
intra-day :meth:`score` updates are strictly additional visibility.

Mid-day costs stay proportional to what changed: automation verdicts
are cached per (host, domain) series and recomputed only for pairs
with new events, and belief propagation warm-starts from the previous
round's beliefs unless too much of the graph is dirty.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence, Set
from dataclasses import dataclass, field
from pathlib import Path

from ..config import LANL_CONFIG, SystemConfig
from ..core.beliefprop import BeliefPropagationResult
from ..core.scoring import (
    AdditiveSimilarityScorer,
    IncrementalAdditiveScorer,
    group_verdicts_by_domain,
    multi_host_beacon_heuristic,
)
from ..logs.dns import parse_dns_log
from ..logs.records import DnsRecord
from ..logs.reduction import ReductionFunnel
from ..profiling.history import DestinationHistory
from ..profiling.rare import extract_rare_domains
from ..profiling.ua import UserAgentHistory
from ..runner import detect_on_traffic
from ..timing.detector import AutomationDetector
from .engine import (
    ReplayResult,
    StreamingEngineBase,
    drive_replay,
    resolve_replay_paths,
    validate_replay_intervals,
)
from .events import dns_connection_stream
from .incremental import WarmStartConfig, warm_start_belief_propagation


@dataclass(frozen=True)
class StreamUpdate:
    """Snapshot of the current day's detections after a scoring round."""

    day: int
    events_today: int
    rare_count: int
    cc_domains: frozenset[str]
    detected: tuple[str, ...]
    mode: str
    """``"warm"``, ``"full"`` or ``"idle"`` (nothing to propagate)."""

    bp_result: BeliefPropagationResult | None = None


@dataclass
class StreamDayReport:
    """End-of-day report, shaped like the batch runner's.

    ``records`` counts reduced connections (post-funnel), matching
    :attr:`repro.runner.RunnerDayReport.records`.
    """

    day: int
    records: int
    rare_domains: set[str]
    cc_domains: set[str]
    detected: list[str]
    bp_result: BeliefPropagationResult | None = None
    intel_seeded: set[str] = field(default_factory=set)
    """Domains seeded from shared intelligence (fleet mode)."""

    ct_seeded: set[str] = field(default_factory=set)
    """Domains pulled in through CT SAN-pivot sibling edges."""

    day_result: "object | None" = None
    """The enterprise path's full :class:`repro.core.DayResult` (both
    belief-propagation modes, scored C&C domains); ``None`` on the
    DNS path."""

    stage_seconds: dict[str, float] = field(default_factory=dict)
    """Wall-clock seconds per rollover stage (``rare``, ``automation``,
    ``bp``, ``commit``); always measured, observability only."""


class StreamingDetector(StreamingEngineBase):
    """Online DNS-path detector with checkpointable mid-day state."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        internal_suffixes: tuple[str, ...] = (),
        server_ips: frozenset[str] = frozenset(),
        *,
        history: DestinationHistory | None = None,
        ua_history: UserAgentHistory | None = None,
        warm: WarmStartConfig | None = None,
        n_shards: int = 4,
        metrics=None,
    ) -> None:
        self.config = config or LANL_CONFIG
        self.internal_suffixes = internal_suffixes
        self.server_ips = server_ips
        self.funnel = ReductionFunnel(
            internal_suffixes,
            server_ips,
            fold_level=self.config.rarity.fold_level,
            metrics=metrics,
        )
        self.scorer = AdditiveSimilarityScorer()
        super().__init__(
            history=history if history is not None else DestinationHistory(),
            automation=AutomationDetector(self.config.histogram),
            unpopular_max_hosts=self.config.rarity.unpopular_max_hosts,
            ua_history=ua_history,
            warm=warm,
            n_shards=n_shards,
            metrics=metrics,
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def submit_raw(self, records: Iterable[DnsRecord]) -> int:
        """Reduce + normalize raw DNS records onto the event bus."""
        return self.bus.publish(
            dns_connection_stream(
                records, self.funnel, fold_level=self.config.rarity.fold_level
            )
        )

    # ------------------------------------------------------------------
    # Intra-day scoring
    # ------------------------------------------------------------------

    def score(self, *, hint_hosts: Sequence[str] = ()) -> StreamUpdate:
        """Re-score the current window and return the live detections.

        The same four daily stages as the batch path -- automation test,
        C&C heuristic, belief propagation -- but each stage touches only
        state invalidated since the previous call.
        """
        traffic = self.window.traffic
        verdicts = self._refresh_verdicts()
        verdicts_by_domain = group_verdicts_by_domain(verdicts)
        cc = {
            domain for domain, domain_verdicts in verdicts_by_domain.items()
            if multi_host_beacon_heuristic(domain, domain_verdicts, traffic)
        }
        seed_hosts: set[str] = set(hint_hosts)
        seed_domains: set[str] = set()
        if not seed_hosts:
            seed_domains = set(cc)
            for domain in cc:
                seed_hosts.update(traffic.hosts_by_domain.get(domain, ()))

        # C&C verdicts are not monotone: new irregular events can flip
        # a series back to not-automated.  If a domain the prior round
        # believed C&C-like (a seed or a Detect_C&C label) no longer
        # is, every belief derived from it is suspect -- drop the prior
        # entirely so this round recomputes cold.
        if self.prior is not None:
            prior_cc = {
                d.domain for d in self.prior.detections
                if d.reason in ("seed", "cc")
            }
            if not prior_cc <= cc:
                self.prior = None

        if not seed_hosts and self.prior is None:
            self.graph.clear_dirty()
            self.metrics.counter(
                "stream_score_rounds_total", mode="idle"
            ).inc()
            return StreamUpdate(
                day=self.window.day,
                events_today=self.window.events_today,
                rare_count=len(self.window.rare),
                cc_domains=frozenset(cc),
                detected=(),
                mode="idle",
            )

        incremental = IncrementalAdditiveScorer(self.scorer, traffic)
        with self.metrics.span("stream_score"):
            result, mode = warm_start_belief_propagation(
                seed_hosts,
                seed_domains,
                graph=self.graph,
                detect_cc=lambda dom: dom in cc,
                score_frontier=incremental.score_frontier,
                config=self.config,
                prior=self.prior,
                warm=self.warm,
                metrics=self.metrics,
            )
        self.metrics.counter("stream_score_rounds_total", mode=mode).inc()
        self.prior = result
        detected = sorted(seed_domains) + [
            d for d in result.detected_domains if d not in seed_domains
        ]
        return StreamUpdate(
            day=self.window.day,
            events_today=self.window.events_today,
            rare_count=len(self.window.rare),
            cc_domains=frozenset(cc),
            detected=tuple(detected),
            mode=mode,
            bp_result=result,
        )

    # ------------------------------------------------------------------
    # Day boundary
    # ------------------------------------------------------------------

    def rollover(
        self,
        *,
        detect: bool = True,
        hint_hosts: Sequence[str] = (),
        intel_domains: Set[str] = frozenset(),
        ct_edges=None,
    ) -> StreamDayReport:
        """Close the day: batch-parity detection, then commit histories.

        The detection pass is :func:`repro.runner.detect_on_traffic`
        over the full window -- the batch pipeline's own code over the
        same aggregate -- so the report equals what
        :class:`~repro.runner.DnsLogRunner` produces for the same
        records.  Histories commit exactly once, in
        :meth:`WindowedAggregator.rollover`.

        ``intel_domains`` are externally confirmed malicious domains
        (e.g. another tenant's detections shared through a fleet's
        intel plane); those that are rare today seed belief propagation
        directly -- see :func:`repro.runner.detect_on_traffic`.
        ``ct_edges`` (a :class:`repro.intelstore.ct.CtIndex`) likewise
        passes straight through; ``None`` keeps detections
        byte-identical to a build without it.
        """
        stage_seconds: dict[str, float] = {}
        with self.metrics.span("rollover_rare") as rare_span:
            traffic = self.window.traffic
            traffic.finalize()
            rare = extract_rare_domains(
                traffic,
                self.history,
                unpopular_max_hosts=self.config.rarity.unpopular_max_hosts,
            )
        stage_seconds["rare"] = rare_span.elapsed
        if detect:
            detection = detect_on_traffic(
                traffic,
                rare,
                automation=self.automation,
                scorer=self.scorer,
                config=self.config,
                hint_hosts=hint_hosts,
                intel_domains=intel_domains,
                ct_edges=ct_edges,
                metrics=self.metrics,
            )
            stage_seconds.update(detection.stage_seconds)
            report = StreamDayReport(
                day=self.window.day,
                records=self.window.events_today,
                rare_domains=rare,
                cc_domains=detection.cc_domains,
                detected=detection.detected,
                bp_result=detection.bp_result,
                intel_seeded=detection.intel_seeded,
                ct_seeded=detection.ct_seeded,
            )
            self.metrics.counter("stream_detections_total").inc(
                len(detection.detected)
            )
        else:
            report = StreamDayReport(
                day=self.window.day,
                records=self.window.events_today,
                rare_domains=rare,
                cc_domains=set(),
                detected=[],
            )
        with self.metrics.span("rollover_commit") as commit_span:
            self._reset_day()
        stage_seconds["commit"] = commit_span.elapsed
        report.stage_seconds = stage_seconds
        self.metrics.counter("stream_days_total").inc()
        return report

    # ------------------------------------------------------------------
    # Bootstrap plumbing
    # ------------------------------------------------------------------

    def bootstrap(self, paths: Iterable[str | Path]) -> int:
        """Fold training-period files into the history (no detection)."""
        for path in sorted(Path(p) for p in paths):
            with path.open() as handle:
                self.submit_raw(parse_dns_log(handle))
            self.poll()
            self.rollover(detect=False)
        return len(self.history)


# ---------------------------------------------------------------------------
# Directory replay (the `repro-detect stream` engine)
# ---------------------------------------------------------------------------

def replay_directory(
    directory: str | Path,
    *,
    bootstrap_files: int,
    pattern: str = "*.log",
    config: SystemConfig | None = None,
    internal_suffixes: tuple[str, ...] = (),
    server_ips: frozenset[str] = frozenset(),
    batch_size: int = 500,
    score_every: int = 1,
    warm: WarmStartConfig | None = None,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = 1,
    resume: bool = False,
    max_batches: int | None = None,
    on_update=None,
    metrics=None,
) -> ReplayResult:
    """Replay a directory of daily DNS logs as an event stream.

    The streaming analogue of :func:`repro.runner.run_directory`: the
    first ``bootstrap_files`` logs build the destination history, the
    rest are consumed in ``batch_size`` micro-batches with a scoring
    round every ``score_every`` batches and a day rollover per file.

    With ``checkpoint_path`` the engine persists its full state every
    ``checkpoint_every`` micro-batches and after each rollover;
    ``resume=True`` restores from that checkpoint and continues from
    the exact event where the previous process stopped -- detection
    config, filters and histories then come from the checkpoint (only
    the warm-start policy is taken from the arguments).  ``max_batches``
    bounds the number of micro-batches processed (the replay returns
    with ``interrupted=True``), which together with ``resume`` simulates
    a process restart mid-day.
    """
    from ..state import load_streaming, save_streaming

    validate_replay_intervals(score_every, checkpoint_every)
    paths = resolve_replay_paths(directory, pattern, bootstrap_files)

    detector: StreamingDetector | None = None
    if resume:
        if checkpoint_path is None:
            raise ValueError("resume requires a checkpoint path")
        if Path(checkpoint_path).exists():
            detector = load_streaming(checkpoint_path, metrics=metrics)
            # Detection config and histories come from the checkpoint
            # (they define what the stream has already seen); the
            # warm-start policy is the operator's current choice.
            if warm is not None:
                detector.warm = warm
    if detector is None:
        detector = StreamingDetector(
            config=config,
            internal_suffixes=internal_suffixes,
            server_ips=server_ips,
            warm=warm,
            metrics=metrics,
        )

    def open_events(path: Path):
        with path.open() as handle:
            yield from dns_connection_stream(
                parse_dns_log(handle),
                detector.funnel,
                fold_level=detector.config.rarity.fold_level,
            )

    def checkpoint() -> None:
        if checkpoint_path is not None:
            save_streaming(detector, checkpoint_path)

    return drive_replay(
        detector,
        paths,
        bootstrap_files=bootstrap_files,
        open_events=open_events,
        checkpoint=checkpoint,
        resume=resume,
        batch_size=batch_size,
        score_every=score_every,
        checkpoint_every=checkpoint_every,
        max_batches=max_batches,
        on_update=on_update,
        resume_file=detector.window.day,
    )
