"""Streaming detection facade: the batch detector turned online.

:class:`StreamingDetector` accepts DNS events one at a time or in
micro-batches and keeps a continuously updated view of the current
day's detections, minutes after the evidence arrives instead of at
end-of-day batch close.  It composes the streaming substrates --
:class:`~repro.streaming.events.EventBus`,
:class:`~repro.streaming.window.WindowedAggregator`,
:class:`~repro.streaming.incremental.IncrementalGraph` -- on top of the
*unchanged* batch components (reduction funnel, automation detector,
additive scorer, belief propagation).

**Batch-parity guarantee.**  At a day boundary, :meth:`rollover` runs
:func:`repro.runner.detect_on_traffic` -- the very routine
:class:`~repro.runner.DnsLogRunner` runs -- over the accumulated
window, whose indexes are identical to a bulk aggregation of the same
records.  Replaying a day through the streaming engine therefore
yields exactly the batch pipeline's end-of-day detections; the
intra-day :meth:`score` updates are strictly additional visibility.

Mid-day costs stay proportional to what changed: automation verdicts
are cached per (host, domain) series and recomputed only for pairs
with new events, and belief propagation warm-starts from the previous
round's beliefs unless too much of the graph is dirty.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence, Set
from dataclasses import dataclass, field
from pathlib import Path

from ..config import LANL_CONFIG, SystemConfig
from ..core.beliefprop import BeliefPropagationResult
from ..core.scoring import AdditiveSimilarityScorer, multi_host_beacon_heuristic
from ..logs.dns import parse_dns_log
from ..logs.records import Connection, DnsRecord
from ..logs.reduction import ReductionFunnel
from ..profiling.history import DestinationHistory
from ..profiling.rare import extract_rare_domains
from ..profiling.ua import UserAgentHistory
from ..runner import detect_on_traffic
from ..timing.detector import AutomationDetector, AutomationVerdict
from .events import EventBus, dns_connection_stream, micro_batches
from .incremental import (
    IncrementalGraph,
    WarmStartConfig,
    warm_start_belief_propagation,
)
from .verdicts import SeriesVerdictCache, VerdictCacheStats
from .window import WindowedAggregator


@dataclass(frozen=True)
class StreamUpdate:
    """Snapshot of the current day's detections after a scoring round."""

    day: int
    events_today: int
    rare_count: int
    cc_domains: frozenset[str]
    detected: tuple[str, ...]
    mode: str
    """``"warm"``, ``"full"`` or ``"idle"`` (nothing to propagate)."""

    bp_result: BeliefPropagationResult | None = None


@dataclass
class StreamDayReport:
    """End-of-day report, shaped like the batch runner's.

    ``records`` counts reduced connections (post-funnel), matching
    :attr:`repro.runner.RunnerDayReport.records`.
    """

    day: int
    records: int
    rare_domains: set[str]
    cc_domains: set[str]
    detected: list[str]
    bp_result: BeliefPropagationResult | None = None
    intel_seeded: set[str] = field(default_factory=set)
    """Domains seeded from shared intelligence (fleet mode)."""


class StreamingDetector:
    """Online DNS-path detector with checkpointable mid-day state."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        internal_suffixes: tuple[str, ...] = (),
        server_ips: frozenset[str] = frozenset(),
        *,
        history: DestinationHistory | None = None,
        ua_history: UserAgentHistory | None = None,
        warm: WarmStartConfig | None = None,
        n_shards: int = 4,
    ) -> None:
        self.config = config or LANL_CONFIG
        self.internal_suffixes = internal_suffixes
        self.server_ips = server_ips
        self.history = history if history is not None else DestinationHistory()
        self.funnel = ReductionFunnel(
            internal_suffixes,
            server_ips,
            fold_level=self.config.rarity.fold_level,
        )
        self.automation = AutomationDetector(self.config.histogram)
        self.scorer = AdditiveSimilarityScorer()
        self.window = WindowedAggregator(
            0,
            self.history,
            unpopular_max_hosts=self.config.rarity.unpopular_max_hosts,
            ua_history=ua_history,
        )
        self.graph = IncrementalGraph()
        self.bus = EventBus(n_shards)
        self.warm = warm or WarmStartConfig()
        self.prior: BeliefPropagationResult | None = None
        self._verdicts: dict[tuple[str, str], AutomationVerdict] = {}
        self._stale_pairs: set[tuple[str, str]] = set()
        self._series_cache = SeriesVerdictCache(self.automation)
        self._pending_times: dict[tuple[str, str], list[float]] = {}
        self.events_total = 0

    @property
    def verdict_stats(self) -> VerdictCacheStats:
        """Skip/test counters of the period-aware verdict cache."""
        return self._series_cache.stats

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def submit_raw(self, records: Iterable[DnsRecord]) -> int:
        """Reduce + normalize raw DNS records onto the event bus."""
        return self.bus.publish(
            dns_connection_stream(
                records, self.funnel, fold_level=self.config.rarity.fold_level
            )
        )

    def submit(self, connections: Iterable[Connection]) -> int:
        """Publish already-normalized connections onto the event bus."""
        return self.bus.publish(connections)

    def poll(self, max_events: int | None = None) -> int:
        """Drain the bus into the window; returns events consumed."""
        batch = self.bus.drain(max_events=max_events)
        if batch:
            self._ingest(batch)
        return len(batch)

    def ingest(self, connections: Iterable[Connection]) -> int:
        """Synchronous convenience: publish one micro-batch and drain it."""
        published = self.submit(connections)
        self.poll()
        return published

    def _ingest(self, batch: Sequence[Connection]) -> None:
        self.window.ingest(batch)
        self.events_total += len(batch)
        for conn in batch:
            self._pending_times.setdefault(
                (conn.host, conn.domain), []
            ).append(conn.timestamp)
        dirty_pairs, flips = self.window.drain_changes()
        rare = self.window.rare
        for domain in flips:
            if domain in rare:
                # Newly rare: materialize all of its edges so far.
                for host in self.window.traffic.hosts_by_domain[domain]:
                    self.graph.add_edge(host, domain)
            else:
                self.graph.remove_domain(domain)
                for host in self.window.traffic.hosts_by_domain[domain]:
                    self._verdicts.pop((host, domain), None)
                    self._series_cache.invalidate((host, domain))
        for host, domain in dirty_pairs:
            if domain in rare:
                self.graph.add_edge(host, domain)
        self._stale_pairs.update(dirty_pairs)

    # ------------------------------------------------------------------
    # Intra-day scoring
    # ------------------------------------------------------------------

    def _refresh_verdicts(self) -> list[AutomationVerdict]:
        """Re-test only (host, domain) series with new events.

        The :class:`SeriesVerdictCache` makes each re-test proportional
        to the *new* events: short series skip the histogram entirely,
        append-only arrivals extend the cached clusters, and on-period
        beacons skip even the divergence recomputation.
        """
        self.window.traffic.finalize()
        rare = self.window.rare
        for pair in self._stale_pairs:
            host, domain = pair
            new_times = self._pending_times.pop(pair, ())
            if domain not in rare:
                self._verdicts.pop(pair, None)
                self._series_cache.count_not_rare_skip()
                continue
            verdict = self._series_cache.test(
                host, domain,
                self.window.traffic.timestamps.get(pair, []),
                new_times,
            )
            if verdict.automated:
                self._verdicts[pair] = verdict
            else:
                self._verdicts.pop(pair, None)
        self._stale_pairs.clear()
        self._pending_times.clear()
        return [self._verdicts[pair] for pair in sorted(self._verdicts)]

    def score(self, *, hint_hosts: Sequence[str] = ()) -> StreamUpdate:
        """Re-score the current window and return the live detections.

        The same four daily stages as the batch path -- automation test,
        C&C heuristic, belief propagation -- but each stage touches only
        state invalidated since the previous call.
        """
        traffic = self.window.traffic
        verdicts = self._refresh_verdicts()
        cc = {
            domain for domain in {v.domain for v in verdicts}
            if multi_host_beacon_heuristic(domain, verdicts, traffic)
        }
        seed_hosts: set[str] = set(hint_hosts)
        seed_domains: set[str] = set()
        if not seed_hosts:
            seed_domains = set(cc)
            for domain in cc:
                seed_hosts.update(traffic.hosts_by_domain.get(domain, ()))

        # C&C verdicts are not monotone: new irregular events can flip
        # a series back to not-automated.  If a domain the prior round
        # believed C&C-like (a seed or a Detect_C&C label) no longer
        # is, every belief derived from it is suspect -- drop the prior
        # entirely so this round recomputes cold.
        if self.prior is not None:
            prior_cc = {
                d.domain for d in self.prior.detections
                if d.reason in ("seed", "cc")
            }
            if not prior_cc <= cc:
                self.prior = None

        if not seed_hosts and self.prior is None:
            self.graph.clear_dirty()
            return StreamUpdate(
                day=self.window.day,
                events_today=self.window.events_today,
                rare_count=len(self.window.rare),
                cc_domains=frozenset(cc),
                detected=(),
                mode="idle",
            )

        result, mode = warm_start_belief_propagation(
            seed_hosts,
            seed_domains,
            graph=self.graph,
            detect_cc=lambda dom: dom in cc,
            similarity_score=lambda dom, mal: self.scorer.score(
                dom, mal, traffic
            ),
            config=self.config,
            prior=self.prior,
            warm=self.warm,
        )
        self.prior = result
        detected = sorted(seed_domains) + [
            d for d in result.detected_domains if d not in seed_domains
        ]
        return StreamUpdate(
            day=self.window.day,
            events_today=self.window.events_today,
            rare_count=len(self.window.rare),
            cc_domains=frozenset(cc),
            detected=tuple(detected),
            mode=mode,
            bp_result=result,
        )

    # ------------------------------------------------------------------
    # Day boundary
    # ------------------------------------------------------------------

    def rollover(
        self,
        *,
        detect: bool = True,
        hint_hosts: Sequence[str] = (),
        intel_domains: Set[str] = frozenset(),
    ) -> StreamDayReport:
        """Close the day: batch-parity detection, then commit histories.

        The detection pass is :func:`repro.runner.detect_on_traffic`
        over the full window -- the batch pipeline's own code over the
        same aggregate -- so the report equals what
        :class:`~repro.runner.DnsLogRunner` produces for the same
        records.  Histories commit exactly once, in
        :meth:`WindowedAggregator.rollover`.

        ``intel_domains`` are externally confirmed malicious domains
        (e.g. another tenant's detections shared through a fleet's
        intel plane); those that are rare today seed belief propagation
        directly -- see :func:`repro.runner.detect_on_traffic`.
        """
        traffic = self.window.traffic
        traffic.finalize()
        rare = extract_rare_domains(
            traffic,
            self.history,
            unpopular_max_hosts=self.config.rarity.unpopular_max_hosts,
        )
        if detect:
            detection = detect_on_traffic(
                traffic,
                rare,
                automation=self.automation,
                scorer=self.scorer,
                config=self.config,
                hint_hosts=hint_hosts,
                intel_domains=intel_domains,
            )
            report = StreamDayReport(
                day=self.window.day,
                records=self.window.events_today,
                rare_domains=rare,
                cc_domains=detection.cc_domains,
                detected=detection.detected,
                bp_result=detection.bp_result,
                intel_seeded=detection.intel_seeded,
            )
        else:
            report = StreamDayReport(
                day=self.window.day,
                records=self.window.events_today,
                rare_domains=rare,
                cc_domains=set(),
                detected=[],
            )
        self.window.rollover()
        self.graph.clear()
        self.prior = None
        self._verdicts.clear()
        self._stale_pairs.clear()
        self._series_cache.clear()
        self._pending_times.clear()
        return report

    # ------------------------------------------------------------------
    # Bootstrap / restore plumbing
    # ------------------------------------------------------------------

    def bootstrap(self, paths: Iterable[str | Path]) -> int:
        """Fold training-period files into the history (no detection)."""
        for path in sorted(Path(p) for p in paths):
            with path.open() as handle:
                self.submit_raw(parse_dns_log(handle))
            self.poll()
            self.rollover(detect=False)
        return len(self.history)

    def resync(self) -> None:
        """Rebuild all derived state from the window (restore path)."""
        self.window.resync()
        self.graph = IncrementalGraph.from_traffic(
            self.window.traffic, self.window.rare
        )
        self._verdicts.clear()
        self._series_cache.clear()
        self._pending_times.clear()
        self._stale_pairs = set(self.window.traffic.timestamps)


# ---------------------------------------------------------------------------
# Directory replay (the `repro-detect stream` engine)
# ---------------------------------------------------------------------------

@dataclass
class ReplayResult:
    """What a (possibly interrupted) directory replay produced."""

    reports: list[StreamDayReport] = field(default_factory=list)
    updates: int = 0
    batches: int = 0
    interrupted: bool = False


def replay_directory(
    directory: str | Path,
    *,
    bootstrap_files: int,
    pattern: str = "*.log",
    config: SystemConfig | None = None,
    internal_suffixes: tuple[str, ...] = (),
    server_ips: frozenset[str] = frozenset(),
    batch_size: int = 500,
    score_every: int = 1,
    warm: WarmStartConfig | None = None,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = 1,
    resume: bool = False,
    max_batches: int | None = None,
    on_update=None,
) -> ReplayResult:
    """Replay a directory of daily DNS logs as an event stream.

    The streaming analogue of :func:`repro.runner.run_directory`: the
    first ``bootstrap_files`` logs build the destination history, the
    rest are consumed in ``batch_size`` micro-batches with a scoring
    round every ``score_every`` batches and a day rollover per file.

    With ``checkpoint_path`` the engine persists its full state every
    ``checkpoint_every`` micro-batches and after each rollover;
    ``resume=True`` restores from that checkpoint and continues from
    the exact event where the previous process stopped -- detection
    config, filters and histories then come from the checkpoint (only
    the warm-start policy is taken from the arguments).  ``max_batches``
    bounds the number of micro-batches processed (the replay returns
    with ``interrupted=True``), which together with ``resume`` simulates
    a process restart mid-day.
    """
    from ..state import load_streaming, save_streaming

    if score_every < 1:
        raise ValueError("score_every must be positive")
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be positive")
    directory = Path(directory)
    paths = sorted(directory.glob(pattern))
    if len(paths) <= bootstrap_files:
        raise ValueError(
            f"need more than {bootstrap_files} files in {directory}, "
            f"found {len(paths)}"
        )

    detector: StreamingDetector | None = None
    if resume:
        if checkpoint_path is None:
            raise ValueError("resume requires a checkpoint path")
        if Path(checkpoint_path).exists():
            detector = load_streaming(checkpoint_path)
            # Detection config and histories come from the checkpoint
            # (they define what the stream has already seen); the
            # warm-start policy is the operator's current choice.
            if warm is not None:
                detector.warm = warm
    if detector is None:
        detector = StreamingDetector(
            config=config,
            internal_suffixes=internal_suffixes,
            server_ips=server_ips,
            warm=warm,
        )

    result = ReplayResult()
    # Each rollover (bootstrap or operational) advances the day counter,
    # so the counter doubles as the index of the file now in progress.
    resume_file = detector.window.day
    skip_events = detector.window.events_today if resume else 0

    def checkpoint() -> None:
        if checkpoint_path is not None:
            save_streaming(detector, checkpoint_path)

    for index, path in enumerate(paths):
        if index < resume_file:
            continue
        is_bootstrap = index < bootstrap_files
        with path.open() as handle:
            events = dns_connection_stream(
                parse_dns_log(handle),
                detector.funnel,
                fold_level=detector.config.rarity.fold_level,
            )
            if index == resume_file and skip_events:
                remaining = skip_events
                for event in events:
                    remaining -= 1
                    if remaining == 0:
                        break
            for batch in micro_batches(events, batch_size):
                detector.submit(batch)
                detector.poll()
                result.batches += 1
                if not is_bootstrap and result.batches % score_every == 0:
                    update = detector.score()
                    result.updates += 1
                    if on_update is not None:
                        on_update(update)
                if result.batches % checkpoint_every == 0:
                    checkpoint()
                if max_batches is not None and result.batches >= max_batches:
                    checkpoint()
                    result.interrupted = True
                    return result
        report = detector.rollover(detect=not is_bootstrap)
        if not is_bootstrap:
            result.reports.append(report)
        checkpoint()
    return result
