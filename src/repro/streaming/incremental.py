"""Incremental host-domain graph and warm-start belief propagation.

Algorithm 1 consumes two maps -- ``dom_host`` (rare domain -> hosts)
and ``host_rdom`` (host -> rare domains).  The batch pipeline rebuilds
them per run; :class:`IncrementalGraph` maintains them edge by edge as
events arrive, tracking which domains are *dirty* (new evidence since
the last propagation round).

:func:`warm_start_belief_propagation` then re-scores the graph without
starting from zero: the previous round's result seeds the new run
(beliefs as priors), so iterations are spent only on newly labeled
domains.  Because Algorithm 1 is monotone -- labels are only added,
never removed -- this converges to the same fixed point as a cold run
whenever the per-domain scores are monotone in the day's accumulating
traffic (true of the additive LANL scorer: connectivity, timing and IP
proximity components only grow as a day's evidence accumulates).  Two
situations break that assumption and trigger a full cold recompute:

* the dirty fraction of the graph exceeds
  :attr:`WarmStartConfig.full_recompute_fraction` (a large fraction of
  the neighborhood changed, so localized re-propagation would touch
  most of the graph anyway), or
* a previously labeled domain fell out of the rare set (belief
  retraction -- e.g. it crossed the popularity threshold mid-day), which
  monotone warm-starting cannot express.

A third retraction case -- a prior C&C verdict flipping back to
not-automated as irregular events arrive -- is handled one level up:
:meth:`repro.streaming.StreamingDetector.score` discards the prior
outright when any of its C&C-derived beliefs is no longer supported.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..config import SystemConfig
from ..core.beliefprop import (
    BeliefPropagationResult,
    DetectCC,
    ScoreFrontier,
    SimilarityScore,
    belief_propagation,
)
from ..profiling.rare import DailyTraffic


@dataclass(frozen=True)
class WarmStartConfig:
    """Policy for reusing the previous round's beliefs."""

    enabled: bool = True

    full_recompute_fraction: float = 0.25
    """Fall back to cold-start when at least this fraction of the
    graph's domains are dirty since the last round."""


class IncrementalGraph:
    """Bipartite rare-domain graph maintained edge by edge.

    Holds exactly the two adjacency maps Algorithm 1 needs, restricted
    to the current rare set, plus a dirty-domain set recording where
    new evidence landed since the last propagation round.
    """

    def __init__(self) -> None:
        self.dom_host: dict[str, set[str]] = {}
        self.host_rdom: dict[str, set[str]] = {}
        self.dirty_domains: set[str] = set()

    @classmethod
    def from_traffic(cls, traffic: DailyTraffic, rare: set[str]) -> "IncrementalGraph":
        """Build the full graph for a day's aggregate (restore path)."""
        graph = cls()
        for domain in rare:
            for host in traffic.hosts_by_domain.get(domain, ()):
                graph.add_edge(host, domain)
        return graph

    @property
    def domain_count(self) -> int:
        return len(self.dom_host)

    def add_edge(self, host: str, domain: str) -> None:
        """Record evidence of ``host`` contacting rare ``domain``."""
        self.dom_host.setdefault(domain, set()).add(host)
        self.host_rdom.setdefault(host, set()).add(domain)
        self.dirty_domains.add(domain)

    def remove_domain(self, domain: str) -> None:
        """Drop a domain that left the rare set (popularity exceeded)."""
        hosts = self.dom_host.pop(domain, set())
        for host in hosts:
            rdoms = self.host_rdom.get(host)
            if rdoms is not None:
                rdoms.discard(domain)
                if not rdoms:
                    del self.host_rdom[host]
        self.dirty_domains.add(domain)

    def dirty_fraction(self) -> float:
        """Share of domains touched since the last scoring round."""
        if not self.dom_host:
            return 1.0
        return len(self.dirty_domains) / len(self.dom_host)

    def clear_dirty(self) -> None:
        self.dirty_domains.clear()

    def clear(self) -> None:
        """Drop all edges and dirty-tracking (day rollover)."""
        self.dom_host.clear()
        self.host_rdom.clear()
        self.dirty_domains.clear()


def warm_start_belief_propagation(
    seed_hosts: Iterable[str],
    seed_domains: Iterable[str],
    *,
    graph: IncrementalGraph,
    detect_cc: DetectCC,
    similarity_score: SimilarityScore | None = None,
    score_frontier: ScoreFrontier | None = None,
    config: SystemConfig,
    prior: BeliefPropagationResult | None = None,
    warm: WarmStartConfig | None = None,
    metrics=None,
) -> tuple[BeliefPropagationResult, str]:
    """Run Algorithm 1 over the incremental graph, warm when safe.

    Returns ``(result, mode)`` where ``mode`` is ``"warm"`` when the
    previous beliefs were reused and ``"full"`` for a cold recompute.
    The graph's dirty set is consumed either way.  Similarity scoring
    takes either form :func:`~repro.core.beliefprop.belief_propagation`
    accepts: the batch ``score_frontier`` hook (one fresh stateful
    scorer per call -- its incremental state follows this run's
    malicious set) or the per-domain ``similarity_score`` adapter.
    """
    warm = warm or WarmStartConfig()
    use_warm = (
        warm.enabled
        and prior is not None
        and bool(graph.dom_host)
        and graph.dirty_fraction() < warm.full_recompute_fraction
    )
    if use_warm and prior is not None:
        retracted = prior.domains - graph.dom_host.keys()
        if retracted:
            use_warm = False
    result = belief_propagation(
        set(seed_hosts),
        set(seed_domains),
        dom_host=graph.dom_host,
        host_rdom=graph.host_rdom,
        detect_cc=detect_cc,
        similarity_score=similarity_score,
        score_frontier=score_frontier,
        config=config.belief_propagation,
        prior=prior if use_warm else None,
        metrics=metrics,
    )
    graph.clear_dirty()
    return result, "warm" if use_warm else "full"
