"""Configuration objects for the detection system.

Every tunable the paper exposes is collected here so experiments can
sweep them explicitly.  The defaults are the values selected in the
paper: bin width ``W = 10`` seconds and Jeffrey threshold ``JT = 0.06``
(Table II), rarity threshold of 10 distinct hosts per day (SOC
recommendation, Section IV-A), C&C score threshold ``Tc = 0.4`` and
similarity threshold ``Ts`` in the 0.33-0.85 sweep range (Section VI),
and the LANL additive-score threshold ``Ts = 0.25`` (Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

SECONDS_PER_DAY = 86_400


@dataclass(frozen=True)
class HistogramConfig:
    """Parameters of the dynamic-histogram automation detector (IV-C)."""

    bin_width: float = 10.0
    """``W`` -- maximum distance (seconds) between a cluster hub and members."""

    jeffrey_threshold: float = 0.06
    """``JT`` -- maximum Jeffrey divergence from the periodic reference."""

    min_connections: int = 4
    """Minimum connections in a day for a (host, domain) pair to be
    considered for automation detection (at least 3 intervals)."""


@dataclass(frozen=True)
class RarityConfig:
    """Parameters defining rare destinations (III-A, IV-A)."""

    unpopular_max_hosts: int = 10
    """A domain contacted by fewer than this many distinct hosts in a
    single day is *unpopular* (set to 10 on SOC advice)."""

    rare_ua_max_hosts: int = 10
    """A user-agent string used by fewer than this many hosts is *rare*."""

    fold_level: int = 2
    """Fold domains to this many labels (2 = second-level; the LANL
    dataset uses 3 because top-level labels are anonymized away)."""


@dataclass(frozen=True)
class BeliefPropagationConfig:
    """Parameters of Algorithm 1."""

    similarity_threshold: float = 0.4
    """``Ts`` -- minimum similarity score to label a domain malicious."""

    cc_score_threshold: float = 0.4
    """``Tc`` -- minimum C&C score for ``Detect_C&C`` to fire."""

    max_iterations: int = 10
    """Upper bound on belief-propagation iterations."""

    max_domains_per_iteration: int = 1
    """How many top-scoring domains are labeled per iteration when no
    C&C domain is found (the paper labels the single argmax)."""


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration bundling all component parameters."""

    histogram: HistogramConfig = field(default_factory=HistogramConfig)
    rarity: RarityConfig = field(default_factory=RarityConfig)
    belief_propagation: BeliefPropagationConfig = field(
        default_factory=BeliefPropagationConfig
    )

    training_days: int = 28
    """Length of the bootstrap/profiling period (the paper uses one month)."""

    regression_ridge: float = 0.1
    """L2 penalty for the two regression models.  The paper's plain
    ``lm`` is recovered with 0; the default stabilizes the small,
    near-separable labeled sets that simulator-scale training yields."""

    def with_thresholds(
        self,
        *,
        similarity: float | None = None,
        cc_score: float | None = None,
    ) -> "SystemConfig":
        """Return a copy with updated belief-propagation thresholds.

        Convenience for the threshold sweeps in Figure 6.
        """
        bp = self.belief_propagation
        if similarity is not None:
            bp = replace(bp, similarity_threshold=similarity)
        if cc_score is not None:
            bp = replace(bp, cc_score_threshold=cc_score)
        return replace(self, belief_propagation=bp)


#: Configuration used for the LANL challenge: anonymized third-level
#: folding and the additive-score threshold from Section V-B.
LANL_CONFIG = SystemConfig(
    rarity=RarityConfig(fold_level=3),
    belief_propagation=BeliefPropagationConfig(
        similarity_threshold=0.25, max_iterations=5
    ),
)

#: Configuration used for the enterprise (AC) evaluation.
ENTERPRISE_CONFIG = SystemConfig()
