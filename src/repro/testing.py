"""Shared dataset configurations for tests and benchmarks.

The synthetic worlds are deterministic functions of their seeds, so a
single small configuration can be shared across the whole test suite
(and regenerated identically anywhere else).  Keeping these in an
importable module -- rather than in a ``conftest.py`` -- avoids the
classic pytest pitfall where ``from conftest import ...`` resolves to
whichever conftest happens to be first on ``sys.path``.
"""

from __future__ import annotations

from .synthetic import (
    EnterpriseDatasetConfig,
    FleetDataset,
    FleetScenarioConfig,
    LanlConfig,
    generate_fleet_dataset,
)

#: Enterprise tenant template for mixed-pipeline fleet scenarios:
#: small, but rich enough to train both regression models.
SMALL_FLEET_ENTERPRISE_TENANT = EnterpriseDatasetConfig(
    seed=2014,  # replaced per tenant by the fleet generator
    n_hosts=50,
    bootstrap_days=9,
    operation_days=6,
    quiet_days=3,
    popular_domains=60,
    churn_domains_per_day=12,
    n_campaigns=20,
)

#: Small but fully featured LANL world used across the suite.
SMALL_LANL = LanlConfig(
    seed=42,
    n_hosts=60,
    bootstrap_days=3,
    popular_domains=40,
    churn_domains_per_day=8,
    browsing_visits_per_host=8,
)

#: Small enterprise world with enough campaigns to train both models.
SMALL_ENTERPRISE = EnterpriseDatasetConfig(
    seed=2014,
    n_hosts=60,
    bootstrap_days=9,
    operation_days=7,
    quiet_days=3,
    popular_domains=60,
    churn_domains_per_day=12,
    n_campaigns=20,
)

#: Per-tenant world template for small fleet scenarios.
SMALL_FLEET_TENANT = LanlConfig(
    seed=42,  # replaced per tenant by the fleet generator
    n_hosts=40,
    bootstrap_days=2,
    popular_domains=30,
    churn_domains_per_day=6,
    browsing_visits_per_host=6,
)


def make_multi_enterprise_dataset(
    n_tenants: int = 3,
    *,
    seed: int = 42,
    lead_hosts: int = 2,
    follower_hosts: int = 1,
    vt_coverage: float = 0.8,
    enterprise_tenants: int = 0,
    ct_sibling_domains: int = 0,
) -> FleetDataset:
    """Small N-tenant world with a shared attack campaign, in one call.

    The lead tenant is hit on 3/02 with enough hosts for the multi-host
    C&C heuristic; followers are hit on 3/03 with ``follower_hosts``
    hosts (one, by default, so only cross-tenant prior seeding can
    catch the campaign there).  With ``enterprise_tenants`` set, the
    trailing followers are enterprise (proxy-path) worlds -- the
    mixed-pipeline scenario.  Tests and benchmarks share this so a
    fleet dataset is a deterministic function of its arguments.
    """
    return generate_fleet_dataset(FleetScenarioConfig(
        seed=seed,
        n_tenants=n_tenants,
        tenant=SMALL_FLEET_TENANT,
        enterprise_tenants=enterprise_tenants,
        enterprise_tenant=SMALL_FLEET_ENTERPRISE_TENANT,
        lead_hosts=lead_hosts,
        follower_hosts=follower_hosts,
        vt_coverage=vt_coverage,
        ct_sibling_domains=ct_sibling_domains,
    ))
