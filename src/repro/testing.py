"""Shared dataset configurations for tests and benchmarks.

The synthetic worlds are deterministic functions of their seeds, so a
single small configuration can be shared across the whole test suite
(and regenerated identically anywhere else).  Keeping these in an
importable module -- rather than in a ``conftest.py`` -- avoids the
classic pytest pitfall where ``from conftest import ...`` resolves to
whichever conftest happens to be first on ``sys.path``.
"""

from __future__ import annotations

from .synthetic import EnterpriseDatasetConfig, LanlConfig

#: Small but fully featured LANL world used across the suite.
SMALL_LANL = LanlConfig(
    seed=42,
    n_hosts=60,
    bootstrap_days=3,
    popular_domains=40,
    churn_domains_per_day=8,
    browsing_visits_per_host=8,
)

#: Small enterprise world with enough campaigns to train both models.
SMALL_ENTERPRISE = EnterpriseDatasetConfig(
    seed=2014,
    n_hosts=60,
    bootstrap_days=9,
    operation_days=7,
    quiet_days=3,
    popular_domains=60,
    churn_domains_per_day=12,
    n_campaigns=20,
)
