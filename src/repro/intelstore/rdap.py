"""Offline-fixture RDAP client feeding the WHOIS feature path.

RDAP (RFC 9083) is the structured successor to WHOIS: a JSON document
per domain with ``ldhName``, an ``events`` list carrying ISO-8601
``registration``/``expiration`` instants, and registrar entities.  The
paper's Detect_C&C features only need registration age and validity
(conf_dsn_OpreaLYCA15 Section IV), so this module normalizes RDAP
documents into the existing :class:`~repro.intel.whois_db.WhoisRecord`
epoch-seconds shape and builds a
:class:`~repro.intel.whois_db.WhoisDatabase` from a fixture file --
every manifest/CLI path that accepts a WHOIS registry file also
accepts an RDAP fixture via :func:`load_registration_registry`, which
sniffs the format.  All fixtures are offline JSON; nothing here talks
to a network.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

from ..intel.whois_db import WhoisDatabase, WhoisRecord


@dataclass(frozen=True, slots=True)
class RdapRecord:
    """A normalized RDAP domain object.

    ``registered``/``expires`` are epoch seconds (UTC); either may be
    ``None`` when the document lacked the event, in which case the
    record cannot enter the registry and the feature path imputes, as
    it does for plain-WHOIS gaps.
    """

    domain: str
    registered: float | None
    expires: float | None
    registrar: str | None

    def to_whois_record(self) -> WhoisRecord | None:
        """The registry-shaped record, or ``None`` if incomplete or
        inconsistent (expiry not after registration)."""
        if self.registered is None or self.expires is None:
            return None
        if self.expires <= self.registered:
            return None
        return WhoisRecord(
            domain=self.domain,
            registered=self.registered,
            expires=self.expires,
        )


def _parse_event_date(value: str) -> float | None:
    """ISO-8601 instant -> epoch seconds UTC (``None`` on junk)."""
    text = str(value).strip()
    if text.endswith("Z"):
        text = text[:-1] + "+00:00"
    try:
        stamp = datetime.fromisoformat(text)
    except ValueError:
        return None
    if stamp.tzinfo is None:
        stamp = stamp.replace(tzinfo=timezone.utc)
    return stamp.timestamp()


def _registrar_name(doc: dict) -> str | None:
    """Pull the registrar's display name out of the entity list."""
    for entity in doc.get("entities", ()):
        if "registrar" not in entity.get("roles", ()):
            continue
        vcard = entity.get("vcardArray")
        if (
            isinstance(vcard, list) and len(vcard) == 2
            and isinstance(vcard[1], list)
        ):
            for item in vcard[1]:
                if (
                    isinstance(item, list) and len(item) == 4
                    and item[0] == "fn"
                ):
                    return str(item[3])
        handle = entity.get("handle")
        if handle:
            return str(handle)
    return None


def parse_rdap_document(doc: dict) -> RdapRecord | None:
    """Normalize one RDAP domain document; ``None`` if it names no
    domain (``ldhName`` missing) -- anything else degrades to a record
    with ``None`` fields rather than raising, matching how the WHOIS
    path treats unparseable registry answers."""
    name = doc.get("ldhName") or doc.get("unicodeName")
    if not name:
        return None
    registered = expires = None
    for event in doc.get("events", ()):
        action = event.get("eventAction")
        when = event.get("eventDate")
        if when is None:
            continue
        if action == "registration" and registered is None:
            registered = _parse_event_date(when)
        elif action == "expiration" and expires is None:
            expires = _parse_event_date(when)
    return RdapRecord(
        domain=str(name).strip().rstrip(".").lower(),
        registered=registered,
        expires=expires,
        registrar=_registrar_name(doc),
    )


def registry_from_rdap(docs: Iterable[dict]) -> WhoisDatabase:
    """Fold RDAP documents into a WHOIS registry.

    Documents that normalize to an incomplete or inconsistent record
    are skipped (their domains then take the imputation path), so one
    bad fixture entry never poisons the registry.
    """
    database = WhoisDatabase()
    for doc in docs:
        record = parse_rdap_document(doc)
        if record is None:
            continue
        whois = record.to_whois_record()
        if whois is None:
            continue
        database.register(whois.domain, whois.registered, whois.expires)
    return database


def load_rdap_file(path: str | Path) -> WhoisDatabase:
    """Read an RDAP fixture (a JSON list of domain documents, a single
    document, or ``{"domains": [...]}``) into a registry."""
    payload = json.loads(Path(path).read_text())
    if isinstance(payload, dict):
        if "domains" in payload:
            payload = payload["domains"]
        else:
            payload = [payload]
    if not isinstance(payload, list):
        raise ValueError(
            f"RDAP fixture {path} must be a JSON list of domain "
            "documents, a single document, or {'domains': [...]}"
        )
    return registry_from_rdap(payload)


def load_registration_registry(path: str | Path) -> WhoisDatabase:
    """Load a registration registry from either supported format.

    Sniffs the JSON shape: RDAP fixtures are lists (or documents with
    ``ldhName``/``objectClassName``/``domains`` markers); everything
    else is the classic ``{domain: [registered, expires]}`` WHOIS
    file.  This is the loader every manifest/CLI/worker path uses, so
    RDAP fixtures are drop-in replacements for WHOIS files.
    """
    payload = json.loads(Path(path).read_text())
    if isinstance(payload, list):
        return registry_from_rdap(payload)
    if isinstance(payload, dict):
        if "domains" in payload and isinstance(payload["domains"], list):
            return registry_from_rdap(payload["domains"])
        if "ldhName" in payload or "objectClassName" in payload:
            return registry_from_rdap([payload])
        return WhoisDatabase.from_json_dict(payload)
    raise ValueError(
        f"registration registry {path} is neither a WHOIS JSON mapping "
        "nor an RDAP fixture"
    )


def rdap_document(
    domain: str,
    registered: float,
    expires: float,
    *,
    registrar: str = "Example Registrar",
) -> dict:
    """Build a well-formed RDAP document (fixture generator helper)."""

    def _iso(stamp: float) -> str:
        return datetime.fromtimestamp(stamp, tz=timezone.utc).isoformat()

    return {
        "objectClassName": "domain",
        "ldhName": domain,
        "events": [
            {"eventAction": "registration", "eventDate": _iso(registered)},
            {"eventAction": "expiration", "eventDate": _iso(expires)},
        ],
        "entities": [
            {
                "objectClassName": "entity",
                "roles": ["registrar"],
                "vcardArray": [
                    "vcard",
                    [["fn", {}, "text", registrar]],
                ],
            }
        ],
    }


__all__ = [
    "RdapRecord",
    "load_rdap_file",
    "load_registration_registry",
    "parse_rdap_document",
    "rdap_document",
    "registry_from_rdap",
]
