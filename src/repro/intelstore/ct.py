"""Certificate-transparency evidence source: SAN-pivot sibling edges.

The paper's guilt-by-association graph connects hosts and domains
through contacts (conf_dsn_OpreaLYCA15 Section V); this module adds a
second association signal the paper's registration features hint at:
two domains that appear as subject-alternative names (SANs) on the
*same* TLS certificate were provisioned together, so labelling one
malicious is evidence about its siblings.  A CT log fixture (offline
JSON -- no network) is folded into a :class:`CtIndex` whose
``domain -> cert -> sibling domains`` pivots feed detection two ways:

* **seed expansion** -- :func:`expand_ct_seeds` takes the day's seed
  domains and pulls in rare siblings reachable through shared certs
  (transitive closure, restricted to that day's rare set);
* **frontier edges** -- :func:`sibling_map` pre-filters a
  ``domain -> siblings`` mapping over the rare set that belief
  propagation uses to extend its candidate frontier when a domain is
  labelled malicious.

Everything is gated behind ``ct_edges=`` kwargs: when ``None`` (the
default) detection output is byte-identical to a build without this
module.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Set
from dataclasses import dataclass
from pathlib import Path

from ..logs.domains import fold_domain


@dataclass(frozen=True, slots=True)
class CertObservation:
    """One certificate seen in a CT log.

    ``sans`` holds the subject-alternative names exactly as logged
    (unfolded); :class:`CtIndex` folds them when building pivots so
    they line up with folded traffic domains.
    """

    fingerprint: str
    not_before: float
    not_after: float
    issuer: str
    sans: tuple[str, ...]

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "not_before": self.not_before,
            "not_after": self.not_after,
            "issuer": self.issuer,
            "sans": list(self.sans),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CertObservation":
        return cls(
            fingerprint=str(payload["fingerprint"]),
            not_before=float(payload["not_before"]),
            not_after=float(payload["not_after"]),
            issuer=str(payload.get("issuer", "")),
            sans=tuple(str(san) for san in payload.get("sans", ())),
        )


class CtIndex:
    """SAN-pivot index over a set of CT observations.

    Folds every SAN to ``fold_level`` labels (matching the traffic
    normalizer) and answers :meth:`siblings`: the other folded domains
    sharing at least one certificate with the queried domain.
    """

    def __init__(
        self,
        observations: Iterable[CertObservation],
        *,
        fold_level: int = 2,
    ) -> None:
        self.fold_level = fold_level
        self.observations = tuple(observations)
        self._certs_by_domain: dict[str, set[str]] = {}
        self._domains_by_cert: dict[str, set[str]] = {}
        for cert in self.observations:
            folded = {
                fold_domain(san, fold_level) for san in cert.sans if san
            }
            self._domains_by_cert[cert.fingerprint] = folded
            for domain in folded:
                self._certs_by_domain.setdefault(domain, set()).add(
                    cert.fingerprint
                )

    def __len__(self) -> int:
        return len(self.observations)

    def siblings(self, domain: str) -> frozenset[str]:
        """Folded domains sharing a certificate with ``domain``
        (excluding ``domain`` itself); empty when unknown to CT."""
        certs = self._certs_by_domain.get(domain)
        if not certs:
            return frozenset()
        out: set[str] = set()
        for fingerprint in certs:
            out.update(self._domains_by_cert[fingerprint])
        out.discard(domain)
        return frozenset(out)

    def domains(self) -> frozenset[str]:
        """Every folded domain the index knows about."""
        return frozenset(self._certs_by_domain)


def expand_ct_seeds(
    seeds: Set[str], rare: Set[str], ct_edges: CtIndex
) -> set[str]:
    """Rare domains reachable from ``seeds`` through shared certs.

    Transitive closure over SAN pivots, restricted to ``rare`` (the
    day's rare-domain set) at every step so decoy SANs that never
    appear in traffic cannot seed anything.  The result excludes the
    input seeds: it is exactly the *additional* domains CT contributes.
    """
    frontier = list(seeds)
    reached: set[str] = set(seeds)
    added: set[str] = set()
    while frontier:
        domain = frontier.pop()
        for sibling in ct_edges.siblings(domain):
            if sibling in reached or sibling not in rare:
                continue
            reached.add(sibling)
            added.add(sibling)
            frontier.append(sibling)
    return added


def sibling_map(
    ct_edges: CtIndex, rare: Set[str]
) -> dict[str, frozenset[str]]:
    """``domain -> rare siblings`` restricted to the rare set.

    The belief-propagation frontier hook: entries exist only where the
    pivot lands inside ``rare``, so BP never grows its candidate set
    beyond the day's rare domains.
    """
    out: dict[str, frozenset[str]] = {}
    for domain in rare:
        siblings = ct_edges.siblings(domain)
        if not siblings:
            continue
        kept = frozenset(siblings & rare)
        if kept:
            out[domain] = kept
    return out


def load_ct_log(path: str | Path, *, fold_level: int = 2) -> CtIndex:
    """Read a CT fixture file into a :class:`CtIndex`.

    The fixture is offline JSON: either a list of observation dicts or
    ``{"certs": [...]}``.  Raises ``ValueError`` on any other shape so
    the CLI can map it to a config error.
    """
    payload = json.loads(Path(path).read_text())
    if isinstance(payload, dict):
        payload = payload.get("certs")
    if not isinstance(payload, list):
        raise ValueError(
            f"CT fixture {path} must be a JSON list of certificate "
            "observations (or {'certs': [...]})"
        )
    observations = [CertObservation.from_dict(entry) for entry in payload]
    return CtIndex(observations, fold_level=fold_level)


_CT_MEMO: dict[tuple[str, int], CtIndex] = {}


def load_ct_cached(path: str | Path, *, fold_level: int = 2) -> CtIndex:
    """Per-process memoized :func:`load_ct_log` (worker-side loader,
    mirroring the WHOIS memo in ``fleet.workers``)."""
    key = (str(Path(path).resolve()), fold_level)
    index = _CT_MEMO.get(key)
    if index is None:
        index = load_ct_log(path, fold_level=fold_level)
        _CT_MEMO[key] = index
    return index


def save_ct_log(
    observations: Iterable[CertObservation], path: str | Path
) -> None:
    """Write observations as a CT fixture file (fixture generator)."""
    payload = {"certs": [cert.as_dict() for cert in observations]}
    Path(path).write_text(json.dumps(payload, indent=1) + "\n")


__all__ = [
    "CertObservation",
    "CtIndex",
    "expand_ct_seeds",
    "load_ct_cached",
    "load_ct_log",
    "save_ct_log",
    "sibling_map",
]
