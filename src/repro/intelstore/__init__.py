"""Durable intel store and the RDAP/CT evidence sources.

Three pieces layered on the paper's external-intelligence model
(conf_dsn_OpreaLYCA15 Section IV):

* :mod:`repro.intelstore.store` -- a dependency-free SQLite store
  (WAL, write-behind batching, TTLs, schema migration) persisting VT
  verdicts, WHOIS/RDAP records, CT observations and per-tenant
  detection profiles across runs;
* :mod:`repro.intelstore.rdap` -- offline RDAP fixtures normalized
  into the existing WHOIS feature path;
* :mod:`repro.intelstore.ct` -- certificate-transparency SAN pivots
  turned into domain-domain sibling edges for seeding and belief
  propagation (``ct_edges=``, byte-identical detections when off).
"""

from .ct import (
    CertObservation,
    CtIndex,
    expand_ct_seeds,
    load_ct_cached,
    load_ct_log,
    save_ct_log,
    sibling_map,
)
from .rdap import (
    RdapRecord,
    load_rdap_file,
    load_registration_registry,
    parse_rdap_document,
    rdap_document,
    registry_from_rdap,
)
from .store import (
    SCHEMA_VERSION,
    IntelStore,
    IntelStoreError,
    StoreCachingWhois,
    StoreStats,
    create_schema,
    export_json,
)

__all__ = [
    "SCHEMA_VERSION",
    "CertObservation",
    "CtIndex",
    "IntelStore",
    "IntelStoreError",
    "RdapRecord",
    "StoreCachingWhois",
    "StoreStats",
    "create_schema",
    "expand_ct_seeds",
    "export_json",
    "load_ct_cached",
    "load_ct_log",
    "load_rdap_file",
    "load_registration_registry",
    "parse_rdap_document",
    "rdap_document",
    "registry_from_rdap",
    "save_ct_log",
    "sibling_map",
]
