"""Durable intel store: SQLite-backed persistence for the intel plane.

The paper's external evidence -- VirusTotal verdicts and WHOIS
registration records (conf_dsn_OpreaLYCA15 Section IV) -- is global
and slow-changing, yet the fleet's :class:`~repro.fleet.intel
.IntelPlane` caches were memory-only: every restart re-learned
"new/rare" and re-paid every lookup.  :class:`IntelStore` makes the
plane durable with nothing beyond the standard library:

* **SQLite in WAL mode** -- one file, concurrent readers, no server;
* **write-behind batching** -- ``put_*`` calls enqueue rows in memory
  and :meth:`flush` commits them in one transaction at fleet day
  barriers, so the detection hot path never waits on disk;
* **TTL'd entries** -- rows may carry an ``expires_at`` instant;
  expired rows are skipped on hydration and reaped by
  :meth:`purge_expired` (the CLI's ``intel vacuum``);
* **schema versioning + migration** -- the ``meta`` table records the
  schema version and older databases are migrated in place on open.

What is persisted: VT verdicts, WHOIS/RDAP records (with registrar
and source provenance), certificate-transparency observations
(:class:`~repro.intelstore.ct.CertObservation` rows), and rolling
per-tenant detection history profiles.  Only the fleet *manager*
touches the store; resident workers keep shipping deltas over their
queues exactly as before.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..intel.whois_db import WhoisRecord
from ..obs.metrics import NULL_METRICS, sample_key
from .ct import CertObservation

SCHEMA_VERSION = 2

#: v1 of the on-disk schema: VT verdicts plus bare WHOIS intervals.
#: Kept creatable so the migration test can build a genuine old
#: database; production opens always migrate forward to the latest.
_SCHEMA_V1 = (
    "CREATE TABLE IF NOT EXISTS meta ("
    " key TEXT PRIMARY KEY, value TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS vt_verdicts ("
    " domain TEXT PRIMARY KEY, reported INTEGER, tenant TEXT NOT NULL,"
    " updated_at REAL NOT NULL, expires_at REAL)",
    "CREATE TABLE IF NOT EXISTS whois_records ("
    " domain TEXT PRIMARY KEY, registered REAL, expires REAL,"
    " tenant TEXT NOT NULL, updated_at REAL NOT NULL, expires_at REAL)",
)

#: Statements that carry a v1 database to v2: WHOIS provenance columns
#: (registrar, source) plus the CT observation and per-tenant profile
#: tables the wider evidence model needs.
_MIGRATE_V1_TO_V2 = (
    "ALTER TABLE whois_records ADD COLUMN registrar TEXT",
    "ALTER TABLE whois_records ADD COLUMN source TEXT NOT NULL "
    " DEFAULT 'whois'",
    "CREATE TABLE IF NOT EXISTS ct_certs ("
    " fingerprint TEXT PRIMARY KEY, not_before REAL NOT NULL,"
    " not_after REAL NOT NULL, issuer TEXT NOT NULL,"
    " updated_at REAL NOT NULL, expires_at REAL)",
    "CREATE TABLE IF NOT EXISTS ct_sans ("
    " fingerprint TEXT NOT NULL, domain TEXT NOT NULL,"
    " PRIMARY KEY (fingerprint, domain))",
    "CREATE INDEX IF NOT EXISTS ct_sans_by_domain ON ct_sans (domain)",
    "CREATE TABLE IF NOT EXISTS tenant_profiles ("
    " tenant TEXT NOT NULL, domain TEXT NOT NULL,"
    " first_day INTEGER NOT NULL, last_day INTEGER NOT NULL,"
    " days_detected INTEGER NOT NULL, best_score REAL NOT NULL,"
    " PRIMARY KEY (tenant, domain))",
)

_TABLES = (
    "vt_verdicts", "whois_records", "ct_certs", "ct_sans",
    "tenant_profiles",
)

#: Tables whose rows carry a TTL column (``expires_at``).
_TTL_TABLES = ("vt_verdicts", "whois_records", "ct_certs")


class IntelStoreError(RuntimeError):
    """Raised on unreadable, corrupt or future-versioned databases."""


@dataclass
class StoreStats:
    """Plain-int accounting for one store (collector-served).

    ``hits``/``misses`` are keyed by lookup kind (``vt``/``whois``):
    a *hit* is a lookup answered by an entry hydrated from disk, a
    *miss* a lookup that had to be computed and was enqueued for the
    next flush.  The counters live here as plain ints (the hot-path
    mechanism); :meth:`metrics_samples` serves them into snapshots via
    the registry's collector pattern.
    """

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)
    evictions: int = 0
    flush_batches: int = 0
    flushed_rows: int = 0

    def count_hit(self, kind: str) -> None:
        self.hits[kind] = self.hits.get(kind, 0) + 1

    def count_miss(self, kind: str) -> None:
        self.misses[kind] = self.misses.get(kind, 0) + 1

    def total_hits(self) -> int:
        return sum(self.hits.values())

    def total_misses(self) -> int:
        return sum(self.misses.values())

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "evictions": self.evictions,
            "flush_batches": self.flush_batches,
            "flushed_rows": self.flushed_rows,
        }

    def metrics_samples(self) -> dict[str, int]:
        """Counter samples for a metrics-registry collector
        (``intel_store_*`` family)."""
        samples = {
            sample_key("intel_store_hits_total", kind=kind): value
            for kind, value in self.hits.items()
        }
        samples.update({
            sample_key("intel_store_misses_total", kind=kind): value
            for kind, value in self.misses.items()
        })
        samples[sample_key("intel_store_evictions_total")] = self.evictions
        samples[sample_key("intel_store_flush_batches_total")] = (
            self.flush_batches
        )
        return samples


def create_schema(conn: sqlite3.Connection, version: int) -> None:
    """Create the store schema at ``version`` on a raw connection.

    Exposed so the migration tests can build genuine old databases;
    :class:`IntelStore` itself always ends up at the latest version.
    """
    if version < 1 or version > SCHEMA_VERSION:
        raise IntelStoreError(f"cannot create schema version {version}")
    for statement in _SCHEMA_V1:
        conn.execute(statement)
    if version >= 2:
        for statement in _MIGRATE_V1_TO_V2:
            conn.execute(statement)
    conn.execute(
        "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
        ("schema_version", str(version)),
    )
    conn.commit()


class IntelStore:
    """Write-behind, TTL'd, schema-versioned SQLite intel store.

    ``ttl_seconds`` (optional) stamps every written row with an expiry
    instant; ``clock`` injects the time source (tests pass a fake).
    ``batch_size`` bounds the rows per ``executemany`` chunk at flush.
    All methods are thread-safe (one lock); the write path only ever
    appends to in-memory pending lists, so lookups stay cheap.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        ttl_seconds: float | None = None,
        batch_size: int = 500,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise IntelStoreError("ttl_seconds must be positive")
        if batch_size < 1:
            raise IntelStoreError("batch_size must be positive")
        self.path = Path(path)
        self.ttl_seconds = ttl_seconds
        self.batch_size = batch_size
        self.clock = clock
        self.stats = StoreStats()
        self._metrics = NULL_METRICS
        self._lock = threading.Lock()
        self._pending: dict[str, list[tuple]] = {
            "vt": [], "whois": [], "certs": [], "sans": [],
        }
        self._pending_profiles: dict[tuple[str, str], list] = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = sqlite3.connect(
                str(self.path), check_same_thread=False
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._ensure_schema()
        except sqlite3.DatabaseError as exc:
            raise IntelStoreError(
                f"cannot open intel store {self.path}: {exc} "
                "(if the file is corrupt, delete it and re-run -- the "
                "store re-fills from the live feeds; see the "
                "operations runbook)"
            ) from exc

    # ------------------------------------------------------------------
    # Schema lifecycle
    # ------------------------------------------------------------------

    def _ensure_schema(self) -> None:
        """Create a fresh schema or migrate an old one in place."""
        has_meta = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' "
            "AND name='meta'"
        ).fetchone()
        if has_meta is None:
            create_schema(self._conn, SCHEMA_VERSION)
            return
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        version = int(row[0]) if row is not None else 1
        if version > SCHEMA_VERSION:
            raise IntelStoreError(
                f"intel store {self.path} has schema version {version}; "
                f"this build reads up to {SCHEMA_VERSION} -- use a newer "
                "build or a fresh database"
            )
        if version < 2:
            for statement in _MIGRATE_V1_TO_V2:
                self._conn.execute(statement)
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
            self._conn.commit()

    @property
    def schema_version(self) -> int:
        """The on-disk schema version (always current after open)."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        return int(row[0]) if row is not None else 1

    # ------------------------------------------------------------------
    # Write-behind puts
    # ------------------------------------------------------------------

    def _expires_at(self) -> float | None:
        if self.ttl_seconds is None:
            return None
        return self.clock() + self.ttl_seconds

    def put_vt(
        self, domain: str, reported: bool | None, tenant: str = ""
    ) -> None:
        """Enqueue one VT verdict (``None`` = looked up, no feed)."""
        row = (
            domain,
            None if reported is None else int(reported),
            tenant, self.clock(), self._expires_at(),
        )
        with self._lock:
            self._pending["vt"].append(row)

    def put_whois(
        self,
        domain: str,
        record: WhoisRecord | None,
        tenant: str = "",
        *,
        registrar: str | None = None,
        source: str = "whois",
    ) -> None:
        """Enqueue one WHOIS/RDAP record (``None`` = negative entry:
        the registry was asked and had nothing -- worth persisting, so
        a restarted fleet skips the same fruitless lookups)."""
        if record is None:
            row = (domain, None, None, registrar, source, tenant,
                   self.clock(), self._expires_at())
        else:
            row = (domain, record.registered, record.expires, registrar,
                   source, tenant, self.clock(), self._expires_at())
        with self._lock:
            self._pending["whois"].append(row)

    def put_cert(self, cert: CertObservation) -> None:
        """Enqueue one CT certificate observation (plus its SAN rows)."""
        now = self.clock()
        expires = self._expires_at()
        with self._lock:
            self._pending["certs"].append((
                cert.fingerprint, cert.not_before, cert.not_after,
                cert.issuer, now, expires,
            ))
            for san in cert.sans:
                self._pending["sans"].append((cert.fingerprint, san))

    def record_profile(
        self, tenant: str, domain: str, day: int, score: float
    ) -> None:
        """Fold one detection into the tenant's rolling domain profile."""
        with self._lock:
            entry = self._pending_profiles.get((tenant, domain))
            if entry is None:
                self._pending_profiles[(tenant, domain)] = [
                    day, day, 1, float(score),
                ]
            else:
                entry[0] = min(entry[0], day)
                entry[1] = max(entry[1], day)
                entry[2] += 1
                entry[3] = max(entry[3], float(score))

    def pending_rows(self) -> int:
        """Rows currently enqueued and not yet flushed to disk."""
        with self._lock:
            return (
                sum(len(rows) for rows in self._pending.values())
                + len(self._pending_profiles)
            )

    # ------------------------------------------------------------------
    # Flush (the day-barrier commit)
    # ------------------------------------------------------------------

    _INSERTS = {
        "vt": "INSERT OR REPLACE INTO vt_verdicts "
              "(domain, reported, tenant, updated_at, expires_at) "
              "VALUES (?, ?, ?, ?, ?)",
        "whois": "INSERT OR REPLACE INTO whois_records "
                 "(domain, registered, expires, registrar, source, "
                 "tenant, updated_at, expires_at) "
                 "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        "certs": "INSERT OR REPLACE INTO ct_certs "
                 "(fingerprint, not_before, not_after, issuer, "
                 "updated_at, expires_at) VALUES (?, ?, ?, ?, ?, ?)",
        "sans": "INSERT OR REPLACE INTO ct_sans (fingerprint, domain) "
                "VALUES (?, ?)",
    }

    _PROFILE_UPSERT = (
        "INSERT INTO tenant_profiles "
        "(tenant, domain, first_day, last_day, days_detected, best_score) "
        "VALUES (?, ?, ?, ?, ?, ?) "
        "ON CONFLICT (tenant, domain) DO UPDATE SET "
        "first_day=MIN(first_day, excluded.first_day), "
        "last_day=MAX(last_day, excluded.last_day), "
        "days_detected=days_detected+excluded.days_detected, "
        "best_score=MAX(best_score, excluded.best_score)"
    )

    def flush(self) -> int:
        """Commit every pending row in one transaction; rows written.

        Rows are applied in enqueue order per table (last writer wins
        on key collisions -- the ordering the tests pin down), chunked
        ``batch_size`` rows per ``executemany`` batch.
        """
        with self._lock:
            pending = {
                kind: rows for kind, rows in self._pending.items() if rows
            }
            profiles = self._pending_profiles
            if not pending and not profiles:
                return 0
            self._pending = {kind: [] for kind in self._pending}
            self._pending_profiles = {}
            with self._metrics.span("intel_store_flush"):
                written = 0
                batches = 0
                for kind, rows in pending.items():
                    statement = self._INSERTS[kind]
                    for start in range(0, len(rows), self.batch_size):
                        chunk = rows[start:start + self.batch_size]
                        self._conn.executemany(statement, chunk)
                        written += len(chunk)
                        batches += 1
                if profiles:
                    rows = [
                        (tenant, domain, *entry)
                        for (tenant, domain), entry
                        in sorted(profiles.items())
                    ]
                    for start in range(0, len(rows), self.batch_size):
                        chunk = rows[start:start + self.batch_size]
                        self._conn.executemany(self._PROFILE_UPSERT, chunk)
                        written += len(chunk)
                        batches += 1
                self._conn.commit()
            self.stats.flush_batches += batches
            self.stats.flushed_rows += written
            return written

    # ------------------------------------------------------------------
    # Hydration reads
    # ------------------------------------------------------------------

    def _fresh(self, expires_at: float | None, now: float) -> bool:
        """Whether a row's TTL (if any) has not lapsed; expired rows
        count as evictions (they are gone from the caller's view even
        before ``purge_expired`` reaps them from disk)."""
        if expires_at is None or expires_at > now:
            return True
        self.stats.evictions += 1
        return False

    def load_vt(self) -> dict[str, tuple[bool | None, str]]:
        """Every fresh VT verdict: domain -> (reported, owner tenant)."""
        now = self.clock()
        out: dict[str, tuple[bool | None, str]] = {}
        with self._lock:
            rows = self._conn.execute(
                "SELECT domain, reported, tenant, expires_at "
                "FROM vt_verdicts"
            ).fetchall()
            for domain, reported, tenant, expires_at in rows:
                if not self._fresh(expires_at, now):
                    continue
                value = None if reported is None else bool(reported)
                out[str(domain)] = (value, str(tenant))
        return out

    def load_whois(self) -> dict[str, tuple[WhoisRecord | None, str]]:
        """Every fresh WHOIS record: domain -> (record | None, owner).

        ``None`` values are persisted negative entries (domain known
        unregistered/unparseable), hydrated so the imputation path is
        also served from disk.
        """
        now = self.clock()
        out: dict[str, tuple[WhoisRecord | None, str]] = {}
        with self._lock:
            rows = self._conn.execute(
                "SELECT domain, registered, expires, tenant, expires_at "
                "FROM whois_records"
            ).fetchall()
            for domain, registered, expires, tenant, expires_at in rows:
                if not self._fresh(expires_at, now):
                    continue
                record = (
                    WhoisRecord(
                        domain=str(domain),
                        registered=float(registered),
                        expires=float(expires),
                    )
                    if registered is not None and expires is not None
                    else None
                )
                out[str(domain)] = (record, str(tenant))
        return out

    def load_certs(self) -> list[CertObservation]:
        """Every fresh CT observation, SANs re-attached, sorted by
        fingerprint (deterministic hydration order)."""
        now = self.clock()
        out: list[CertObservation] = []
        with self._lock:
            sans: dict[str, list[str]] = {}
            for fingerprint, domain in self._conn.execute(
                "SELECT fingerprint, domain FROM ct_sans ORDER BY "
                "fingerprint, domain"
            ):
                sans.setdefault(str(fingerprint), []).append(str(domain))
            rows = self._conn.execute(
                "SELECT fingerprint, not_before, not_after, issuer, "
                "expires_at FROM ct_certs ORDER BY fingerprint"
            ).fetchall()
            for fingerprint, not_before, not_after, issuer, expires_at \
                    in rows:
                if not self._fresh(expires_at, now):
                    continue
                out.append(CertObservation(
                    fingerprint=str(fingerprint),
                    not_before=float(not_before),
                    not_after=float(not_after),
                    issuer=str(issuer),
                    sans=tuple(sans.get(str(fingerprint), ())),
                ))
        return out

    def load_profiles(self) -> dict[tuple[str, str], dict[str, Any]]:
        """Every per-tenant domain profile, keyed (tenant, domain)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT tenant, domain, first_day, last_day, "
                "days_detected, best_score FROM tenant_profiles"
            ).fetchall()
        return {
            (str(tenant), str(domain)): {
                "first_day": int(first), "last_day": int(last),
                "days_detected": int(days), "best_score": float(best),
            }
            for tenant, domain, first, last, days, best in rows
        }

    # ------------------------------------------------------------------
    # Maintenance (the `repro-detect intel` verbs)
    # ------------------------------------------------------------------

    def purge_expired(self) -> int:
        """Delete every TTL-lapsed row; returns rows reaped."""
        now = self.clock()
        reaped = 0
        with self._lock:
            for table in _TTL_TABLES:
                cursor = self._conn.execute(
                    f"DELETE FROM {table} WHERE expires_at IS NOT NULL "
                    "AND expires_at <= ?",
                    (now,),
                )
                reaped += cursor.rowcount
            # SANs of reaped certs go with them.
            cursor = self._conn.execute(
                "DELETE FROM ct_sans WHERE fingerprint NOT IN "
                "(SELECT fingerprint FROM ct_certs)"
            )
            reaped += cursor.rowcount
            self._conn.commit()
        self.stats.evictions += reaped
        return reaped

    def vacuum(self) -> None:
        """Flush pending rows, then compact the database file."""
        self.flush()
        with self._lock:
            self._conn.execute("VACUUM")

    def stats_document(self) -> dict[str, Any]:
        """Inspectable summary (the ``intel stats`` JSON document)."""
        with self._lock:
            tables = {
                table: int(self._conn.execute(
                    f"SELECT COUNT(*) FROM {table}"
                ).fetchone()[0])
                for table in _TABLES
            }
        return {
            "path": str(self.path),
            "schema_version": self.schema_version,
            "size_bytes": (
                self.path.stat().st_size if self.path.exists() else 0
            ),
            "ttl_seconds": self.ttl_seconds,
            "tables": tables,
            "pending_rows": self.pending_rows(),
            "stats": self.stats.as_dict(),
        }

    def export_document(self) -> dict[str, Any]:
        """The full store contents as one JSON-able document."""
        vt = self.load_vt()
        whois = self.load_whois()
        return {
            "schema_version": self.schema_version,
            "vt_verdicts": {
                domain: {"reported": value, "tenant": tenant}
                for domain, (value, tenant) in sorted(vt.items())
            },
            "whois_records": {
                domain: {
                    "registered": (
                        record.registered if record is not None else None
                    ),
                    "expires": (
                        record.expires if record is not None else None
                    ),
                    "tenant": tenant,
                }
                for domain, (record, tenant) in sorted(whois.items())
            },
            "ct_certs": [
                {
                    "fingerprint": cert.fingerprint,
                    "not_before": cert.not_before,
                    "not_after": cert.not_after,
                    "issuer": cert.issuer,
                    "sans": list(cert.sans),
                }
                for cert in self.load_certs()
            ],
            "tenant_profiles": [
                {"tenant": tenant, "domain": domain, **profile}
                for (tenant, domain), profile
                in sorted(self.load_profiles().items())
            ],
        }

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def bind_metrics(self, metrics) -> None:
        """Serve this store's counters through a metrics registry and
        record flush timings into its ``intel_store_flush_seconds``
        span histogram (the collector pattern the plane uses)."""
        if metrics is None or not getattr(metrics, "enabled", False):
            return
        self._metrics = metrics
        metrics.add_collector(self.stats.metrics_samples)

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Flush pending rows and release the connection."""
        try:
            self.flush()
        finally:
            self._conn.close()


class StoreCachingWhois:
    """A ``WhoisDatabase``-shaped lookup hydrated from an intel store.

    The single-tenant (``repro-detect stream --intel-db``) analogue of
    the fleet plane's hydration: records already on disk answer without
    touching the backing registry (a store *hit*); registry lookups are
    counted as store *misses* and written behind for the next run.
    """

    def __init__(
        self,
        store: IntelStore,
        registry=None,
        *,
        tenant: str = "stream",
    ) -> None:
        self.store = store
        self.registry = registry
        self.tenant = tenant
        self._cache: dict[str, WhoisRecord | None] = {}
        self._hydrated: set[str] = set()
        for domain, (record, _owner) in store.load_whois().items():
            self._cache[domain] = record
            self._hydrated.add(domain)

    def lookup(self, domain: str) -> WhoisRecord | None:
        """Memoized lookup: disk-hydrated entries, then the registry."""
        if domain in self._cache:
            if domain in self._hydrated:
                self.store.stats.count_hit("whois")
            return self._cache[domain]
        record = (
            self.registry.lookup(domain)
            if self.registry is not None else None
        )
        self.store.stats.count_miss("whois")
        self.store.put_whois(domain, record, self.tenant)
        self._cache[domain] = record
        return record


def export_json(store: IntelStore) -> str:
    """The export document rendered as pretty JSON (CLI helper)."""
    return json.dumps(store.export_document(), indent=1) + "\n"


__all__ = [
    "SCHEMA_VERSION",
    "IntelStore",
    "IntelStoreError",
    "StoreCachingWhois",
    "StoreStats",
    "create_schema",
    "export_json",
]
