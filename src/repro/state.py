"""Persistence of trained detector state (Figure 1's daily cycle).

The paper's system trains once per enterprise and then runs daily,
carrying two kinds of state across days: the profiles (destination and
user-agent histories) and the regression models with their thresholds.
A real deployment restarts; this module snapshots that state to a JSON
document and restores it, so an :class:`~repro.core.EnterpriseDetector`
survives process boundaries.

The format is versioned, self-describing JSON -- inspectable by the SOC
and diffable across days.  WHOIS is an external service, not state, so
a restored detector must be re-attached to its registry.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

import numpy as np

from .config import (
    BeliefPropagationConfig,
    HistogramConfig,
    RarityConfig,
    SystemConfig,
)
from .core.pipeline import EnterpriseDetector
from .core.scoring import RegressionCCScorer, RegressionSimilarityScorer
from .features.regression import Coefficient, LinearModel
from .intel.whois_db import WhoisDatabase
from .profiling.history import DestinationHistory
from .profiling.ua import UserAgentHistory

STATE_VERSION = 1


class StateError(RuntimeError):
    """Raised on malformed or incompatible state documents."""


# ---------------------------------------------------------------------------
# Component encoders / decoders
# ---------------------------------------------------------------------------

def encode_history(history: DestinationHistory) -> dict[str, Any]:
    return {
        "first_seen": dict(history._first_seen),
        "committed_days": sorted(history.committed_days),
    }


def decode_history(payload: dict[str, Any]) -> DestinationHistory:
    """Rebuild a DestinationHistory from :func:`encode_history` output."""
    history = DestinationHistory()
    history._first_seen.update(
        {str(domain): int(day) for domain, day in payload["first_seen"].items()}
    )
    history._committed_days.update(int(d) for d in payload["committed_days"])
    return history


def encode_ua_history(history: UserAgentHistory) -> dict[str, Any]:
    return {
        "rare_max_hosts": history.rare_max_hosts,
        "hosts_by_ua": {
            ua: sorted(hosts) for ua, hosts in history._hosts_by_ua.items()
        },
    }


def decode_ua_history(payload: dict[str, Any]) -> UserAgentHistory:
    """Rebuild a UserAgentHistory from :func:`encode_ua_history` output."""
    history = UserAgentHistory(rare_max_hosts=int(payload["rare_max_hosts"]))
    for ua, hosts in payload["hosts_by_ua"].items():
        history._hosts_by_ua[ua] = set(hosts)
    return history


def encode_model(model: LinearModel) -> dict[str, Any]:
    return {
        "feature_names": list(model.feature_names),
        "intercept": model.intercept,
        "weights": [float(w) for w in model.weights],
        "r_squared": model.r_squared,
        "n_samples": model.n_samples,
        "coefficients": [
            {
                "name": c.name,
                "estimate": c.estimate,
                "std_error": c.std_error if np.isfinite(c.std_error) else None,
                "t_statistic": c.t_statistic,
                "p_value": c.p_value,
            }
            for c in model.coefficients
        ],
    }


def decode_model(payload: dict[str, Any]) -> LinearModel:
    """Rebuild a LinearModel from :func:`encode_model` output."""
    coefficients = tuple(
        Coefficient(
            name=c["name"],
            estimate=float(c["estimate"]),
            std_error=(
                float(c["std_error"]) if c["std_error"] is not None
                else float("inf")
            ),
            t_statistic=float(c["t_statistic"]),
            p_value=float(c["p_value"]),
        )
        for c in payload["coefficients"]
    )
    return LinearModel(
        feature_names=tuple(payload["feature_names"]),
        intercept=float(payload["intercept"]),
        weights=np.asarray(payload["weights"], dtype=float),
        coefficients=coefficients,
        r_squared=float(payload["r_squared"]),
        n_samples=int(payload["n_samples"]),
    )


def encode_config(config: SystemConfig) -> dict[str, Any]:
    return {
        "histogram": vars(config.histogram).copy(),
        "rarity": vars(config.rarity).copy(),
        "belief_propagation": vars(config.belief_propagation).copy(),
        "training_days": config.training_days,
        "regression_ridge": config.regression_ridge,
    }


def decode_config(payload: dict[str, Any]) -> SystemConfig:
    return SystemConfig(
        histogram=HistogramConfig(**payload["histogram"]),
        rarity=RarityConfig(**payload["rarity"]),
        belief_propagation=BeliefPropagationConfig(**payload["belief_propagation"]),
        training_days=int(payload["training_days"]),
        regression_ridge=float(payload["regression_ridge"]),
    )


# ---------------------------------------------------------------------------
# Detector-level snapshot
# ---------------------------------------------------------------------------

def detector_state(detector: EnterpriseDetector) -> dict[str, Any]:
    """Full JSON-serializable snapshot of a trained detector."""
    return {
        "version": STATE_VERSION,
        "config": encode_config(detector.config),
        "history": encode_history(detector.history),
        "ua_history": encode_ua_history(detector.ua_history),
        "cc_model": (
            encode_model(detector.cc_scorer.model)
            if detector.cc_scorer is not None else None
        ),
        "cc_threshold": (
            detector.cc_scorer.threshold
            if detector.cc_scorer is not None else None
        ),
        "similarity_model": (
            encode_model(detector.similarity_scorer.model)
            if detector.similarity_scorer is not None else None
        ),
    }


def restore_detector(
    payload: dict[str, Any], whois: WhoisDatabase | None = None
) -> EnterpriseDetector:
    """Rebuild a detector from :func:`detector_state` output.

    ``whois`` re-attaches the external registry (not part of the
    snapshot); omit it for DNS-style deployments without WHOIS.
    """
    version = payload.get("version")
    if version != STATE_VERSION:
        raise StateError(f"unsupported state version {version!r}")
    detector = EnterpriseDetector(decode_config(payload["config"]), whois=whois)
    detector.history = decode_history(payload["history"])
    detector.ua_history = decode_ua_history(payload["ua_history"])
    # The extractor closes over the UA history; rebuild it against the
    # restored instance.
    detector.extractor.ua_history = detector.ua_history
    if payload["cc_model"] is not None:
        detector.cc_scorer = RegressionCCScorer(
            decode_model(payload["cc_model"]),
            detector.extractor,
            threshold=float(payload["cc_threshold"]),
        )
    if payload["similarity_model"] is not None:
        detector.similarity_scorer = RegressionSimilarityScorer(
            decode_model(payload["similarity_model"]), detector.extractor
        )
    return detector


# ---------------------------------------------------------------------------
# Streaming checkpoint (mid-day window state)
# ---------------------------------------------------------------------------

def encode_ua_pending(history: UserAgentHistory) -> dict[str, Any]:
    """Same-day staged UA observations (not yet committed)."""
    return {ua: sorted(hosts) for ua, hosts in history._pending.items()}


def decode_ua_pending(history: UserAgentHistory, payload: dict[str, Any]) -> None:
    for ua, hosts in payload.items():
        history._pending.setdefault(ua, set()).update(hosts)


def encode_bp_result(result) -> dict[str, Any]:
    """Belief-propagation beliefs for warm restart (graph/trace dropped)."""
    return {
        "hosts": sorted(result.hosts),
        "domains": sorted(result.domains),
        "detections": [
            [d.domain, d.iteration, d.reason, d.score] for d in result.detections
        ],
    }


def decode_bp_result(payload: dict[str, Any]):
    """Rebuild a BP result from :func:`encode_bp_result` output."""
    from .core.beliefprop import BeliefPropagationResult, Detection

    return BeliefPropagationResult(
        hosts=set(payload["hosts"]),
        domains=set(payload["domains"]),
        detections=[
            Detection(str(dom), int(it), str(reason), float(score))
            for dom, it, reason, score in payload["detections"]
        ],
        trace=[],
    )


def encode_window(window) -> dict[str, Any]:
    """The mid-day traffic window: every index needed to resume.

    The rare set, the incremental graph and the verdict cache are all
    derived state, recomputed on restore by
    :meth:`repro.streaming.StreamingDetector.resync`.
    """
    traffic = window.traffic
    traffic.finalize()
    return {
        "day": window.day,
        "events_today": window.events_today,
        "series": [
            [host, domain, times]
            for (host, domain), times in sorted(traffic.timestamps.items())
        ],
        "resolved_ips": {
            domain: sorted(ips) for domain, ips in traffic.resolved_ips.items()
        },
        "no_referer_hosts": {
            domain: sorted(hosts)
            for domain, hosts in traffic.no_referer_hosts.items()
        },
        "rare_ua_hosts": {
            domain: sorted(hosts)
            for domain, hosts in traffic.rare_ua_hosts.items()
        },
    }


def decode_window(window, payload: dict[str, Any]) -> None:
    """Refill a fresh :class:`WindowedAggregator` from its snapshot."""
    window.day = int(payload["day"])
    window.events_today = int(payload["events_today"])
    traffic = window.traffic
    traffic.day = window.day
    for host, domain, times in payload["series"]:
        traffic.load_series(host, domain, times)
    for domain, ips in payload["resolved_ips"].items():
        traffic.resolved_ips[domain] = set(ips)
    for domain, hosts in payload["no_referer_hosts"].items():
        traffic.no_referer_hosts[domain] = set(hosts)
    for domain, hosts in payload["rare_ua_hosts"].items():
        traffic.rare_ua_hosts[domain] = set(hosts)


def encode_metrics(detector) -> dict[str, Any] | None:
    """The engine's metrics snapshot, or ``None`` when metrics are off.

    Only meaningful when the engine *owns* its registry (the
    single-engine ``stream`` path); fleet checkpoints pass
    ``include_metrics=False`` because their engines share one
    registry per worker and re-absorbing it per tenant would double
    count -- the fleet-wide snapshot rides in the fleet state instead.
    """
    metrics = getattr(detector, "metrics", None)
    if metrics is None or not metrics.enabled:
        return None
    return metrics.snapshot().as_dict()


def _restore_metrics(payload: dict[str, Any], metrics) -> None:
    """Seed a restored engine's registry from its checkpoint snapshot."""
    snapshot = payload.get("metrics")
    if snapshot and metrics is not None and metrics.enabled:
        from .obs.metrics import MetricsSnapshot

        metrics.restore(MetricsSnapshot.from_dict(snapshot))


def streaming_state(detector, *, include_metrics: bool = True) -> dict[str, Any]:
    """Full JSON-serializable snapshot of a streaming detector.

    Extends the version-1 detector document with the ``"streaming"``
    kind: long-lived histories plus the in-flight day window and the
    previous belief-propagation round, so a restore resumes mid-day
    with warm-start intact.  The reduction funnel's Figure 2 counters
    are observability, not detection state, and are not snapshotted;
    the metrics registry's snapshot *is* (when enabled and
    ``include_metrics``), so counters survive a checkpoint restart.

    Events still queued on the bus are not part of the snapshot;
    callers must drain them (:meth:`StreamingDetector.poll`) first or
    they would be lost across a restore.
    """
    if len(detector.bus) > 0:
        raise StateError(
            f"{len(detector.bus)} events still queued on the event bus; "
            "call poll() before snapshotting"
        )
    return {
        "version": STATE_VERSION,
        "kind": "streaming",
        "config": encode_config(detector.config),
        "internal_suffixes": list(detector.internal_suffixes),
        "server_ips": sorted(detector.server_ips),
        "history": encode_history(detector.history),
        "ua_history": (
            encode_ua_history(detector.window.ua_history)
            if detector.window.ua_history is not None else None
        ),
        "ua_pending": (
            encode_ua_pending(detector.window.ua_history)
            if detector.window.ua_history is not None else None
        ),
        "window": encode_window(detector.window),
        "prior": (
            encode_bp_result(detector.prior)
            if detector.prior is not None else None
        ),
        "events_total": detector.events_total,
        "warm": {
            "enabled": detector.warm.enabled,
            "full_recompute_fraction": detector.warm.full_recompute_fraction,
        },
        "metrics": encode_metrics(detector) if include_metrics else None,
    }


def restore_streaming(payload: dict[str, Any], *, metrics=None):
    """Rebuild a :class:`~repro.streaming.StreamingDetector` snapshot.

    ``metrics`` attaches a :class:`repro.obs.MetricsRegistry` to the
    restored engine; a checkpointed metrics snapshot (if any) is
    folded into it so counters continue across the restart.
    """
    from .streaming import StreamingDetector, WarmStartConfig

    version = payload.get("version")
    if version != STATE_VERSION:
        raise StateError(f"unsupported state version {version!r}")
    if payload.get("kind") != "streaming":
        raise StateError(
            f"not a streaming checkpoint (kind={payload.get('kind')!r})"
        )
    ua_history = None
    if payload["ua_history"] is not None:
        ua_history = decode_ua_history(payload["ua_history"])
        if payload.get("ua_pending"):
            decode_ua_pending(ua_history, payload["ua_pending"])
    detector = StreamingDetector(
        config=decode_config(payload["config"]),
        internal_suffixes=tuple(payload["internal_suffixes"]),
        server_ips=frozenset(payload["server_ips"]),
        history=decode_history(payload["history"]),
        ua_history=ua_history,
        warm=WarmStartConfig(
            enabled=bool(payload["warm"]["enabled"]),
            full_recompute_fraction=float(
                payload["warm"]["full_recompute_fraction"]
            ),
        ),
        metrics=metrics,
    )
    decode_window(detector.window, payload["window"])
    if payload["prior"] is not None:
        detector.prior = decode_bp_result(payload["prior"])
    detector.events_total = int(payload["events_total"])
    _restore_metrics(payload, metrics)
    detector.resync()
    return detector


# ---------------------------------------------------------------------------
# Streaming enterprise checkpoint (trained models + mid-day window)
# ---------------------------------------------------------------------------

def streaming_enterprise_state(
    detector, *, include_metrics: bool = True
) -> dict[str, Any]:
    """Snapshot of a :class:`~repro.streaming.StreamingEnterpriseDetector`.

    Wraps the trained batch detector's document (config, histories,
    both regression models) with the streaming extras: same-day staged
    UA observations, the in-flight window, the previous
    belief-propagation round, and the WHOIS imputation counters --
    the running means are detection state (imputed features depend on
    them), so a restore must resume them exactly.  WHOIS *records* are
    an external registry and are re-attached by the caller.
    """
    if len(detector.bus) > 0:
        raise StateError(
            f"{len(detector.bus)} events still queued on the event bus; "
            "call poll() before snapshotting"
        )
    whois = detector.batch.extractor.whois
    return {
        "version": STATE_VERSION,
        "kind": "streaming-enterprise",
        "detector": detector_state(detector.batch),
        "ua_pending": encode_ua_pending(detector.batch.ua_history),
        "window": encode_window(detector.window),
        "start_day": detector.start_day,
        "prior": (
            encode_bp_result(detector.prior)
            if detector.prior is not None else None
        ),
        "events_total": detector.events_total,
        "warm": {
            "enabled": detector.warm.enabled,
            "full_recompute_fraction": detector.warm.full_recompute_fraction,
        },
        "whois_impute": (
            {
                "age_sum": whois._age_sum,
                "validity_sum": whois._validity_sum,
                "observed": whois._observed,
            }
            if whois is not None else None
        ),
        "metrics": encode_metrics(detector) if include_metrics else None,
    }


def restore_streaming_enterprise(
    payload: dict[str, Any], whois=None, *, metrics=None
):
    """Rebuild a streaming enterprise detector from its snapshot.

    ``whois`` re-attaches the external registration registry (not part
    of the snapshot); without it the regression features fall back to
    imputation, resumed from the snapshotted counters.
    """
    from .streaming import StreamingEnterpriseDetector, WarmStartConfig

    version = payload.get("version")
    if version != STATE_VERSION:
        raise StateError(f"unsupported state version {version!r}")
    if payload.get("kind") != "streaming-enterprise":
        raise StateError(
            f"not a streaming-enterprise checkpoint "
            f"(kind={payload.get('kind')!r})"
        )
    batch = restore_detector(payload["detector"], whois=whois)
    if payload.get("ua_pending"):
        decode_ua_pending(batch.ua_history, payload["ua_pending"])
    detector = StreamingEnterpriseDetector(
        batch,
        start_day=int(payload["start_day"]),
        warm=WarmStartConfig(
            enabled=bool(payload["warm"]["enabled"]),
            full_recompute_fraction=float(
                payload["warm"]["full_recompute_fraction"]
            ),
        ),
        metrics=metrics,
    )
    _restore_metrics(payload, metrics)
    decode_window(detector.window, payload["window"])
    if payload["prior"] is not None:
        detector.prior = decode_bp_result(payload["prior"])
    detector.events_total = int(payload["events_total"])
    impute = payload.get("whois_impute")
    if impute is not None:
        extractor = batch.extractor.whois
        if extractor is None:
            # The original engine had a registry; keep imputing from
            # the snapshotted means even when it isn't re-attached, so
            # registration features degrade gracefully instead of
            # snapping to the cold defaults.
            from .features.whois import WhoisFeatureExtractor
            from .intel.whois_db import WhoisDatabase

            extractor = WhoisFeatureExtractor(WhoisDatabase())
            batch.extractor.whois = extractor
        extractor._age_sum = float(impute["age_sum"])
        extractor._validity_sum = float(impute["validity_sum"])
        extractor._observed = int(impute["observed"])
    detector.resync()
    return detector


def save_streaming_enterprise(detector, path: str | Path) -> None:
    """Write a streaming enterprise detector's checkpoint as JSON."""
    save_json_atomic(streaming_enterprise_state(detector), path)


def load_streaming_enterprise(path: str | Path, whois=None, *, metrics=None):
    """Restore a checkpoint saved with :func:`save_streaming_enterprise`."""
    return restore_streaming_enterprise(
        load_json(path), whois=whois, metrics=metrics
    )


# ---------------------------------------------------------------------------
# Engine-generic dispatch (the fleet holds engines of either pipeline)
# ---------------------------------------------------------------------------

def encode_engine(engine) -> dict[str, Any]:
    """Snapshot a streaming engine of either pipeline (kind-tagged).

    Fleet checkpoints never embed metrics snapshots: fleet engines
    share one registry per worker process, so per-tenant snapshots
    would multiply the shared counters on restore.  The fleet-wide
    metrics snapshot is persisted in the fleet state instead.
    """
    from .streaming import StreamingEnterpriseDetector

    if isinstance(engine, StreamingEnterpriseDetector):
        return streaming_enterprise_state(engine, include_metrics=False)
    return streaming_state(engine, include_metrics=False)


def restore_engine(payload: dict[str, Any], whois=None, *, metrics=None):
    """Rebuild a streaming engine from :func:`encode_engine` output,
    dispatching on the snapshot's ``kind`` tag."""
    kind = payload.get("kind")
    if kind == "streaming-enterprise":
        return restore_streaming_enterprise(
            payload, whois=whois, metrics=metrics
        )
    if kind == "streaming":
        return restore_streaming(payload, metrics=metrics)
    raise StateError(f"not a streaming engine checkpoint (kind={kind!r})")


# ---------------------------------------------------------------------------
# Barrier delta checkpoints (resident fleet workers)
# ---------------------------------------------------------------------------

def _require_barrier(detector) -> None:
    """Reject delta snapshots taken away from a day barrier.

    Right after :meth:`rollover` an engine's volatile state is empty --
    fresh window, no queued events, no staged profile entries, no
    belief-propagation prior -- so everything that changed since the
    previous barrier lives in the committed histories and a handful of
    counters.  That is the whole reason deltas are cheap; anywhere else
    they would silently drop mid-day state.
    """
    if len(detector.bus) > 0:
        raise StateError(
            f"{len(detector.bus)} events still queued on the event bus; "
            "delta checkpoints are barrier-only"
        )
    if detector.window.events_today != 0:
        raise StateError(
            "window holds same-day events; delta checkpoints are "
            "barrier-only (call rollover() first)"
        )
    if detector.history._pending:
        raise StateError(
            "destination history has staged entries; delta checkpoints "
            "are barrier-only"
        )
    ua = detector.window.ua_history
    if ua is not None and ua._pending:
        raise StateError(
            "user-agent history has staged entries; delta checkpoints "
            "are barrier-only"
        )


class EngineDeltaTracker:
    """Computes per-barrier deltas of a streaming engine's state.

    A full :func:`encode_engine` snapshot re-serializes the entire
    destination history every round -- O(lifetime) work that made the
    fleet's process executor slower than serial.  At a day barrier the
    only state that changed since the previous barrier is *additive*:
    new first-seen history entries, newly committed days, new
    user-agent host sightings, plus a few scalar counters.  The tracker
    keeps a baseline of what was last persisted and emits exactly those
    additions (:meth:`delta`), advancing the baseline each call.

    First-seen additions are recovered from dict insertion order (the
    history only ever appends), so a delta costs O(changes), not
    O(history).  UA host sets have no such order; the tracker keeps a
    per-UA copy of the persisted sets -- bounded by the UA vocabulary,
    which is small next to the domain history.
    """

    def __init__(self, detector) -> None:
        self.detector = detector
        self._n_domains = 0
        self._days: set[int] = set()
        self._ua: dict[str, set[str]] | None = None
        self.rebase()

    def rebase(self) -> None:
        """Reset the baseline to the engine's current state (call after
        persisting a full snapshot)."""
        history = self.detector.history
        self._n_domains = len(history._first_seen)
        self._days = set(history.committed_days)
        ua = self.detector.window.ua_history
        self._ua = (
            {u: set(hosts) for u, hosts in ua._hosts_by_ua.items()}
            if ua is not None else None
        )

    def delta(self) -> dict[str, Any]:
        """Additions since the baseline, as a JSON-able document.

        Barrier-only (see :func:`_require_barrier`); advances the
        baseline, so consecutive calls chain.
        """
        from itertools import islice

        detector = self.detector
        _require_barrier(detector)
        history = detector.history
        first_seen = dict(
            islice(history._first_seen.items(), self._n_domains, None)
        )
        committed = sorted(set(history.committed_days) - self._days)
        ua = detector.window.ua_history
        ua_hosts: dict[str, list[str]] | None = None
        if ua is not None:
            assert self._ua is not None
            ua_hosts = {}
            for agent, hosts in ua._hosts_by_ua.items():
                seen = self._ua.get(agent)
                new = hosts - seen if seen is not None else set(hosts)
                if new:
                    ua_hosts[agent] = sorted(new)
        payload: dict[str, Any] = {
            "window_day": detector.window.day,
            "events_total": detector.events_total,
            "first_seen": first_seen,
            "committed_days": committed,
            "ua_hosts": ua_hosts,
        }
        batch = getattr(detector, "batch", None)
        if batch is not None and batch.extractor.whois is not None:
            extractor = batch.extractor.whois
            payload["whois_impute"] = {
                "age_sum": extractor._age_sum,
                "validity_sum": extractor._validity_sum,
                "observed": extractor._observed,
            }
        self.rebase()
        return payload


def apply_engine_delta(detector, delta: dict[str, Any]) -> None:
    """Replay one barrier delta onto a restored streaming engine.

    Applies the history/UA additions, advances the window to the
    delta's (empty) day and restores the scalar counters.  Callers
    apply deltas in round order and finish the chain with a single
    ``detector.resync()``.
    """
    from .profiling.rare import DailyTraffic

    history = detector.history
    for domain, day in delta["first_seen"].items():
        history._first_seen.setdefault(str(domain), int(day))
    history._committed_days.update(int(d) for d in delta["committed_days"])
    ua = detector.window.ua_history
    if delta.get("ua_hosts") and ua is not None:
        for agent, hosts in delta["ua_hosts"].items():
            ua._hosts_by_ua.setdefault(agent, set()).update(hosts)
    window = detector.window
    window.day = int(delta["window_day"])
    window.traffic = DailyTraffic(window.day)
    window.events_today = 0
    window.tracker.reset()
    window.dirty_pairs.clear()
    window.rare_changes.clear()
    detector.prior = None
    detector.events_total = int(delta["events_total"])
    impute = delta.get("whois_impute")
    if impute is not None:
        batch = getattr(detector, "batch", None)
        extractor = batch.extractor.whois if batch is not None else None
        if extractor is not None:
            extractor._age_sum = float(impute["age_sum"])
            extractor._validity_sum = float(impute["validity_sum"])
            extractor._observed = int(impute["observed"])


def save_json_atomic(payload: dict[str, Any], path: str | Path) -> None:
    """Serialize ``payload`` to ``path`` atomically (temp file + rename).

    Checkpoints are written continuously while streaming (and
    concurrently across fleet tenants), and a crash mid-write must
    never destroy the previous good document -- that file is exactly
    what ``--resume`` needs afterwards.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload))
    os.replace(tmp, path)


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a JSON state document, wrapping parse errors in StateError."""
    try:
        return json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise StateError(f"corrupt state file {path}: {exc}") from exc


def save_streaming(detector, path: str | Path) -> None:
    """Write a streaming detector's checkpoint to ``path`` as JSON."""
    save_json_atomic(streaming_state(detector), path)


def load_streaming(path: str | Path, *, metrics=None):
    """Restore a checkpoint previously saved with :func:`save_streaming`."""
    return restore_streaming(load_json(path), metrics=metrics)


def save_detector(detector: EnterpriseDetector, path: str | Path) -> None:
    """Write a trained detector's state to ``path`` as JSON."""
    Path(path).write_text(json.dumps(detector_state(detector), indent=1))


def load_detector(
    path: str | Path, whois: WhoisDatabase | None = None
) -> EnterpriseDetector:
    """Restore a detector previously saved with :func:`save_detector`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise StateError(f"corrupt state file {path}: {exc}") from exc
    return restore_detector(payload, whois=whois)
