"""repro -- reproduction of Oprea et al., "Detection of Early-Stage
Enterprise Infection by Mining Large-Scale Log Data" (DSN 2015).

Public API overview
-------------------

* :mod:`repro.core` -- belief propagation (Algorithm 1), domain
  scorers, and the end-to-end :class:`~repro.core.EnterpriseDetector`.
* :mod:`repro.timing` -- dynamic-histogram automation detection and
  baseline periodicity detectors.
* :mod:`repro.logs` -- DNS / web-proxy log parsing, normalization and
  the data-reduction funnel.
* :mod:`repro.profiling` -- destination and user-agent histories,
  rare-destination extraction.
* :mod:`repro.features` -- feature extraction and linear regression.
* :mod:`repro.intel` -- WHOIS / VirusTotal / IOC substrates.
* :mod:`repro.synthetic` -- seeded generators for the LANL and
  enterprise (AC) datasets, including attack campaigns.
* :mod:`repro.eval` -- metrics and the harnesses regenerating every
  table and figure of the paper.
* :mod:`repro.streaming` -- the online engine: host-sharded event
  ingestion, incrementally maintained daily windows, warm-start belief
  propagation and a checkpointable :class:`~repro.streaming.StreamingDetector`
  whose end-of-day detections are batch-identical by construction.

Quickstart::

    from repro.synthetic import generate_lanl_dataset
    from repro.eval import LanlChallengeSolver

    dataset = generate_lanl_dataset()
    solver = LanlChallengeSolver(dataset)
    report = solver.solve_all()
    print(report.overall.tdr)
"""

from .config import (
    ENTERPRISE_CONFIG,
    LANL_CONFIG,
    BeliefPropagationConfig,
    HistogramConfig,
    RarityConfig,
    SystemConfig,
)
from .core import (
    BeliefPropagationResult,
    EnterpriseDetector,
    belief_propagation,
)
from .runner import DnsLogRunner, run_directory
from .state import (
    load_detector,
    load_streaming,
    save_detector,
    save_streaming,
)
from .streaming import StreamingDetector, replay_directory

__version__ = "1.0.0"

__all__ = [
    "ENTERPRISE_CONFIG",
    "LANL_CONFIG",
    "BeliefPropagationConfig",
    "HistogramConfig",
    "RarityConfig",
    "SystemConfig",
    "BeliefPropagationResult",
    "EnterpriseDetector",
    "belief_propagation",
    "DnsLogRunner",
    "run_directory",
    "StreamingDetector",
    "replay_directory",
    "load_detector",
    "save_detector",
    "load_streaming",
    "save_streaming",
    "__version__",
]
