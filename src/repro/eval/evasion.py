"""Detection-rate-vs-evasion-strength curves over adversarial campaigns.

The harness realizes one :class:`~repro.synthetic.campaigns
.AdversarialCampaignSpec` per (strength, trial), overlays it onto a
fixed benign world, and drives the *same merged record lists* through
both the batch pipeline and the streaming engine -- asserting
batch/streaming detection parity at every measured point while
recording how recall over the campaign's ground truth degrades as the
evasion strength knob rises.

Two single-tenant pipelines are covered:

* **DNS** -- a campaign-free span of the synthetic LANL world
  (March dates past the Table I case layout), batch
  :class:`~repro.runner.DnsLogRunner` vs
  :class:`~repro.streaming.StreamingDetector`;
* **enterprise** -- a proxy world trained on its bootstrap month and
  evaluated on campaign-free post-training days,
  :meth:`~repro.core.pipeline.EnterpriseDetector.process_day` vs
  :class:`~repro.streaming.enterprise.StreamingEnterpriseDetector`.
  Both arms run from the *same* serialized trained state, so every
  trial starts from byte-identical profiles.

The fleet-level ``tenant-churn`` archetype gets its own curve:
detection of a shared campaign across follower tenants while
enterprises join and leave mid-fleet (see
:func:`~repro.synthetic.campaigns.churn_fleet_config`).

Everything is a pure function of seeds: curves are reproducible to the
digit, which is what lets BENCH_perf.json track robustness as a
trajectory the way it tracks throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import LANL_CONFIG
from ..runner import DnsLogRunner
from ..streaming.detector import StreamingDetector
from ..synthetic import (
    EnterpriseDatasetConfig,
    LanlConfig,
    generate_enterprise_dataset,
    generate_lanl_dataset,
)
from ..synthetic.campaigns import (
    AdversarialCampaignSpec,
    WorldView,
    campaign_connections,
    campaign_dns_records,
    realize_campaign,
)

#: First campaign-free March date of the synthetic LANL world (the
#: Table I cases occupy 3/02 through 3/22).
_FIRST_FREE_DATE = 23

#: Small LANL world shared by every DNS-path curve.
DNS_EVAL_WORLD = LanlConfig(
    seed=1097,
    n_hosts=36,
    bootstrap_days=2,
    popular_domains=30,
    churn_domains_per_day=6,
    browsing_visits_per_host=6,
    rare_auto_services_per_day=2,
)

#: Small enterprise world shared by every proxy-path curve.  All of
#: its built-in campaigns live inside the bootstrap month (they train
#: the regression models); post-training days are campaign-free, so
#: the overlaid adversarial campaign is the only ground truth.
ENTERPRISE_EVAL_WORLD = EnterpriseDatasetConfig(
    seed=2097,
    n_hosts=40,
    bootstrap_days=16,
    operation_days=0,
    quiet_days=2,
    popular_domains=40,
    churn_domains_per_day=8,
    n_campaigns=16,
)

#: (campaign duration, evaluation horizon) per archetype; slow-burn
#: needs a multi-week span to exercise day-skipping activations.
_HORIZONS: dict[str, tuple[int, int]] = {"slow-burn": (6, 7)}
_DEFAULT_HORIZON = (2, 3)


def campaign_horizon(campaign: str) -> tuple[int, int]:
    """(duration_days, evaluation days) the curve uses per archetype."""
    return _HORIZONS.get(campaign, _DEFAULT_HORIZON)


@dataclass(frozen=True)
class EvasionPoint:
    """One measured point of a detection-rate curve."""

    campaign: str
    pipeline: str
    strength: float
    trials: int
    batch_rate: float
    stream_rate: float
    parity: bool
    """Whether batch and streaming detections matched on every day of
    every trial at this point."""

    truth_count: int
    """Ground-truth attacker domains across the point's trials."""

    detected_count: int


@dataclass
class EvasionCurve:
    """Detection rate as a function of evasion strength."""

    campaign: str
    pipeline: str
    points: list[EvasionPoint]

    @property
    def parity(self) -> bool:
        return all(point.parity for point in self.points)

    def as_dict(self) -> dict:
        return {
            "campaign": self.campaign,
            "pipeline": self.pipeline,
            "parity": self.parity,
            "points": [
                {
                    "strength": p.strength,
                    "trials": p.trials,
                    "batch_rate": round(p.batch_rate, 4),
                    "stream_rate": round(p.stream_rate, 4),
                    "parity": p.parity,
                    "truth_count": p.truth_count,
                    "detected_count": p.detected_count,
                }
                for p in self.points
            ],
        }


def _chunks(items, size):
    for start in range(0, len(items), size):
        yield items[start:start + size]


# ---------------------------------------------------------------------------
# DNS pipeline
# ---------------------------------------------------------------------------

def _dns_trial(
    dataset, campaign, strength, seed, *, metrics=None
) -> tuple[set[str], set[str], set[str], bool]:
    """(truth, batch detected, stream detected, parity) for one trial."""
    duration, horizon = campaign_horizon(campaign)
    start_day = dataset.config.bootstrap_days + (_FIRST_FREE_DATE - 1)
    spec = AdversarialCampaignSpec(
        campaign=campaign,
        strength=strength,
        seed=seed,
        start_day=start_day,
        duration_days=duration,
        n_hosts=3,
    )
    realized = realize_campaign(WorldView.from_dataset(dataset), spec)

    runner = DnsLogRunner(
        config=LANL_CONFIG,
        internal_suffixes=dataset.internal_suffixes,
        server_ips=dataset.server_ips,
        metrics=metrics,
    )
    runner.history.bootstrap(dataset.bootstrap_domains)
    stream = StreamingDetector(
        config=LANL_CONFIG,
        internal_suffixes=dataset.internal_suffixes,
        server_ips=dataset.server_ips,
        metrics=metrics,
    )
    stream.history.bootstrap(dataset.bootstrap_domains)

    batch_detected: set[str] = set()
    stream_detected: set[str] = set()
    parity = True
    for offset in range(horizon):
        date = _FIRST_FREE_DATE + offset
        records = dataset.day_records(date) + campaign_dns_records(
            realized, dataset.host_ips, start_day + offset
        )
        records.sort(key=lambda r: r.timestamp)
        batch_report = runner.process_records(
            records, label=f"march-{date:02d}"
        )
        for chunk in _chunks(records, 500):
            stream.submit_raw(chunk)
            stream.poll()
            stream.score()
        stream_report = stream.rollover()
        parity = parity and (
            batch_report.detected == stream_report.detected
        )
        batch_detected.update(batch_report.detected)
        stream_detected.update(stream_report.detected)
    return realized.truth_domains(), batch_detected, stream_detected, parity


def dns_evasion_curve(
    campaign: str,
    strengths=(0.0, 0.25, 0.5, 0.75, 1.0),
    *,
    trials: int = 3,
    seed: int = 11,
    dataset=None,
    metrics=None,
) -> EvasionCurve:
    """Detection-rate curve for one archetype on the DNS pipeline.

    ``dataset`` shares a pre-generated :data:`DNS_EVAL_WORLD` across
    curves (the benign world is identical at every point -- only the
    campaign realization varies with strength and trial seed).
    """
    if dataset is None:
        dataset = generate_lanl_dataset(DNS_EVAL_WORLD)
    points: list[EvasionPoint] = []
    for strength in strengths:
        truth_n = hit_b = hit_s = 0
        parity = True
        for trial in range(trials):
            truth, batch, stream, ok = _dns_trial(
                dataset, campaign, strength, seed + 1000 * trial,
                metrics=metrics,
            )
            truth_n += len(truth)
            hit_b += len(truth & batch)
            hit_s += len(truth & stream)
            parity = parity and ok
        points.append(EvasionPoint(
            campaign=campaign,
            pipeline="dns",
            strength=strength,
            trials=trials,
            batch_rate=hit_b / truth_n if truth_n else 0.0,
            stream_rate=hit_s / truth_n if truth_n else 0.0,
            parity=parity,
            truth_count=truth_n,
            detected_count=hit_b,
        ))
    return EvasionCurve(campaign=campaign, pipeline="dns", points=points)


# ---------------------------------------------------------------------------
# Enterprise pipeline
# ---------------------------------------------------------------------------

def trained_enterprise_world(config: EnterpriseDatasetConfig | None = None):
    """(dataset, serialized trained state) for the proxy-path curves.

    Training happens once; every trial restores a fresh detector from
    the returned state payload so both arms start from byte-identical
    profiles.
    """
    from ..state import detector_state
    from ..synthetic.fleet import train_enterprise_detector

    dataset = generate_enterprise_dataset(
        config or ENTERPRISE_EVAL_WORLD
    )
    detector = train_enterprise_detector(dataset)
    return dataset, detector_state(detector)


def _enterprise_trial(
    dataset, state, campaign, strength, seed, *, metrics=None
) -> tuple[set[str], set[str], set[str], bool]:
    """(truth, batch detected, stream detected, parity) for one trial."""
    from ..state import restore_detector
    from ..streaming.enterprise import StreamingEnterpriseDetector

    duration, horizon = campaign_horizon(campaign)
    start_day = dataset.config.total_days
    spec = AdversarialCampaignSpec(
        campaign=campaign,
        strength=strength,
        seed=seed,
        start_day=start_day,
        duration_days=duration,
        n_hosts=3,
    )
    realized = realize_campaign(WorldView.from_dataset(dataset), spec)
    for domain, registered, expires in realized.whois_records:
        dataset.whois.register(domain, registered, expires)

    days: list[tuple[int, list]] = []
    for offset in range(horizon):
        day = start_day + offset
        connections = dataset.day_connections(day) + campaign_connections(
            realized, day
        )
        connections.sort(key=lambda c: c.timestamp)
        days.append((day, connections))

    batch = restore_detector(state, whois=dataset.whois)
    stream = StreamingEnterpriseDetector(
        restore_detector(state, whois=dataset.whois), metrics=metrics
    )

    batch_detected: set[str] = set()
    stream_detected: set[str] = set()
    parity = True
    for day, connections in days:
        result = batch.process_day(day, connections)
        day_batch = result.all_detected_domains()
        for chunk in _chunks(connections, 500):
            stream.ingest(chunk)
            stream.score()
        report = stream.rollover()
        parity = parity and (set(report.detected) == day_batch)
        batch_detected.update(day_batch)
        stream_detected.update(report.detected)
    return realized.truth_domains(), batch_detected, stream_detected, parity


def enterprise_evasion_curve(
    campaign: str,
    strengths=(0.0, 0.25, 0.5, 0.75, 1.0),
    *,
    trials: int = 2,
    seed: int = 23,
    world=None,
    metrics=None,
) -> EvasionCurve:
    """Detection-rate curve for one archetype on the proxy pipeline.

    ``world`` is the (dataset, trained state) pair from
    :func:`trained_enterprise_world`, shared across curves so the
    expensive training step runs once.
    """
    if world is None:
        world = trained_enterprise_world()
    dataset, state = world
    points: list[EvasionPoint] = []
    for strength in strengths:
        truth_n = hit_b = hit_s = 0
        parity = True
        for trial in range(trials):
            truth, batch, stream, ok = _enterprise_trial(
                dataset, state, campaign, strength,
                seed + 1000 * trial, metrics=metrics,
            )
            truth_n += len(truth)
            hit_b += len(truth & batch)
            hit_s += len(truth & stream)
            parity = parity and ok
        points.append(EvasionPoint(
            campaign=campaign,
            pipeline="enterprise",
            strength=strength,
            trials=trials,
            batch_rate=hit_b / truth_n if truth_n else 0.0,
            stream_rate=hit_s / truth_n if truth_n else 0.0,
            parity=parity,
            truth_count=truth_n,
            detected_count=hit_b,
        ))
    return EvasionCurve(
        campaign=campaign, pipeline="enterprise", points=points
    )


# ---------------------------------------------------------------------------
# Fleet pipeline: tenant churn
# ---------------------------------------------------------------------------

def churn_evasion_curve(
    strengths=(0.0, 0.5, 1.0),
    *,
    seed: int = 42,
    n_tenants: int = 3,
    workers: int = 2,
    executor: str = "thread",
    metrics=None,
) -> EvasionCurve:
    """Detection rate of a shared campaign across a churning fleet.

    For each strength, generates a fleet where the last tenant joins
    mid-run and another leaves early
    (:func:`~repro.synthetic.campaigns.churn_fleet_config`), writes
    the layout, runs the fleet manager, and measures the fraction of
    campaign-hit tenants whose shared C&C domains were detected.  The
    "parity" flag asserts a serial (1-worker) rerun produces identical
    per-tenant detections -- the fleet analogue of batch/streaming
    parity.
    """
    import tempfile
    from pathlib import Path

    from ..fleet.manager import FleetManager
    from ..fleet.manifest import load_manifest
    from ..synthetic.campaigns import churn_fleet_config
    from ..synthetic.fleet import generate_fleet_dataset, write_fleet_layout
    from ..testing import SMALL_FLEET_TENANT

    points: list[EvasionPoint] = []
    for strength in strengths:
        config = churn_fleet_config(
            strength=strength,
            seed=seed,
            n_tenants=n_tenants,
            tenant=SMALL_FLEET_TENANT,
        )
        fleet = generate_fleet_dataset(config)
        with tempfile.TemporaryDirectory() as tmp:
            directory = Path(tmp) / "fleet"
            manifest = load_manifest(
                write_fleet_layout(fleet, directory, days=8)
            )

            def run(n_workers: int):
                manager = FleetManager.from_manifest(
                    manifest, workers=n_workers, executor=executor,
                    metrics=metrics,
                )
                report = manager.run()
                return {
                    tenant: sorted(domains)
                    for tenant, domains in
                    report.detected_by_tenant().items()
                }

            parallel = run(workers)
            serial = run(1)
        parity = parallel == serial
        # Every tenant is hit by the shared campaign; the fleet's
        # detection rate is the fraction of hit tenants that surfaced
        # any of its domains (locally or through intel seeding).
        truth = set(fleet.shared.domains)
        hit_tenants = list(fleet.shared.hosts_by_tenant)
        detected = sum(
            1 for tenant in hit_tenants
            if truth & set(parallel.get(tenant, ()))
        )
        rate = detected / len(hit_tenants) if hit_tenants else 0.0
        points.append(EvasionPoint(
            campaign="tenant-churn",
            pipeline="fleet",
            strength=strength,
            trials=1,
            batch_rate=rate,
            stream_rate=rate,
            parity=parity,
            truth_count=len(hit_tenants),
            detected_count=detected,
        ))
    return EvasionCurve(
        campaign="tenant-churn", pipeline="fleet", points=points
    )
