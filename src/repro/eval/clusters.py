"""Post-detection triage: clustering detected domains (Sections VI-C/D).

After detection, the paper's analysts grouped the flagged domains into
campaign clusters before investigating:

* five domains hosting URLs with the same ``/logo.gif?`` pattern
  (confirmed Sality), 15 more sharing another URL pattern;
* ten 4-5 character ``.info`` DGA names, nine of which served the same
  ``/tan2.html`` path;
* ten 20-hex-character ``.info`` DGA names found in hints mode;
* domains co-hosted in the same /24.

This module automates those groupings so a SOC can triage hundreds of
detections as a handful of campaigns.  Three complementary views:

:func:`cluster_by_name`
    groups algorithmically-similar names (same TLD, length class, and
    character class -- hex vs alpha vs wordlike, judged by digit ratio
    and bigram entropy).
:func:`cluster_by_url_pattern`
    groups domains that served the same URL path.
:func:`cluster_by_subnet`
    groups domains resolving into the same /24 (or /16).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from ..logs.domains import subnet_key

_HEX_DIGITS = set("0123456789abcdef")


@dataclass(frozen=True)
class DomainCluster:
    """One group of detections that look like a single campaign."""

    key: str
    """Human-readable cluster signature (e.g. ``".info len4-5 alpha"``,
    ``"path:/tan2.html"``, ``"subnet:5.5.5.0/24"``)."""

    domains: tuple[str, ...]

    @property
    def size(self) -> int:
        return len(self.domains)


def _label_of(domain: str) -> str:
    return domain.split(".", 1)[0]


def _tld_of(domain: str) -> str:
    return domain.rsplit(".", 1)[-1]


def name_entropy(label: str) -> float:
    """Shannon entropy (bits/char) of a domain label.

    DGA labels approach the entropy of their alphabet; dictionary-word
    labels sit lower.  Used as a coarse character-class discriminator.
    """
    if not label:
        return 0.0
    counts = Counter(label)
    total = len(label)
    return -sum(
        (count / total) * math.log2(count / total) for count in counts.values()
    )


def _length_class(label: str) -> str:
    length = len(label)
    if length <= 5:
        return "len4-5"
    if length <= 9:
        return "len6-9"
    if length <= 16:
        return "len10-16"
    return "len17+"


def _charset_class(label: str) -> str:
    cleaned = label.replace("-", "")
    if cleaned and all(c in _HEX_DIGITS for c in cleaned) and any(
        c.isdigit() for c in cleaned
    ):
        return "hex"
    if any(c.isdigit() for c in cleaned):
        return "alnum"
    return "alpha"


def name_signature(domain: str) -> str:
    """The naming-family signature used by :func:`cluster_by_name`."""
    label = _label_of(domain)
    return f".{_tld_of(domain)} {_length_class(label)} {_charset_class(label)}"


def cluster_by_name(
    domains: Iterable[str], *, min_size: int = 2
) -> list[DomainCluster]:
    """Group domains sharing a naming-family signature.

    Reproduces the paper's DGA-cluster observations: the 4-5 char
    ``.info`` set and the 20-hex-char ``.info`` set land in separate
    clusters; ordinary benign two-word names do not cluster with them.
    """
    groups: dict[str, list[str]] = defaultdict(list)
    for domain in sorted(set(domains)):
        groups[name_signature(domain)].append(domain)
    return _to_clusters(groups, min_size)


def cluster_by_url_pattern(
    paths_by_domain: Mapping[str, Iterable[str]], *, min_size: int = 2
) -> list[DomainCluster]:
    """Group domains that served an identical URL path.

    ``paths_by_domain`` maps each detected domain to the URL paths
    observed for it in the proxy logs.  A domain appears in one cluster
    per shared path (the paper's ``/logo.gif?`` and ``/tan2.html``
    groups were exactly such views).
    """
    groups: dict[str, list[str]] = defaultdict(list)
    for domain in sorted(paths_by_domain):
        for path in set(paths_by_domain[domain]):
            groups[f"path:{path}"].append(domain)
    return _to_clusters(groups, min_size)


def cluster_by_subnet(
    ips_by_domain: Mapping[str, Iterable[str]],
    *,
    prefix: int = 24,
    min_size: int = 2,
) -> list[DomainCluster]:
    """Group domains resolving into the same /``prefix`` network."""
    groups: dict[str, list[str]] = defaultdict(list)
    for domain in sorted(ips_by_domain):
        networks = {subnet_key(ip, prefix) for ip in ips_by_domain[domain]}
        for network in sorted(networks):
            groups[f"subnet:{network}"].append(domain)
    return _to_clusters(groups, min_size)


def _to_clusters(
    groups: Mapping[str, list[str]], min_size: int
) -> list[DomainCluster]:
    clusters = [
        DomainCluster(key=key, domains=tuple(sorted(set(members))))
        for key, members in groups.items()
        if len(set(members)) >= min_size
    ]
    clusters.sort(key=lambda c: (-c.size, c.key))
    return clusters


def triage_report(
    domains: Iterable[str],
    *,
    paths_by_domain: Mapping[str, Iterable[str]] | None = None,
    ips_by_domain: Mapping[str, Iterable[str]] | None = None,
    min_size: int = 2,
) -> str:
    """Render all cluster views into one SOC-facing text report."""
    domains = sorted(set(domains))
    lines = [f"triage of {len(domains)} detected domains"]

    lines.append("\nby naming family:")
    for cluster in cluster_by_name(domains, min_size=min_size):
        lines.append(f"  [{cluster.size}] {cluster.key}: "
                     f"{', '.join(cluster.domains[:6])}"
                     + (" ..." if cluster.size > 6 else ""))

    if paths_by_domain:
        lines.append("\nby shared URL path:")
        for cluster in cluster_by_url_pattern(paths_by_domain, min_size=min_size):
            lines.append(f"  [{cluster.size}] {cluster.key}: "
                         f"{', '.join(cluster.domains[:6])}"
                         + (" ..." if cluster.size > 6 else ""))

    if ips_by_domain:
        lines.append("\nby /24 co-hosting:")
        for cluster in cluster_by_subnet(ips_by_domain, min_size=min_size):
            lines.append(f"  [{cluster.size}] {cluster.key}: "
                         f"{', '.join(cluster.domains[:6])}"
                         + (" ..." if cluster.size > 6 else ""))
    return "\n".join(lines)
