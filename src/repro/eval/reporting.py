"""Text rendering of the paper's tables and figures.

The benches print these renderings so the regenerated rows/series can
be compared to the paper side by side (EXPERIMENTS.md records both).
"""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_cdf(
    samples: Sequence[float],
    *,
    points: int = 11,
    label: str = "",
) -> str:
    """Render a CDF as 'value -> fraction' checkpoints."""
    if not samples:
        return f"{label}: (no samples)"
    ordered = sorted(samples)
    n = len(ordered)
    lines = [f"{label} (n={n})" if label else f"(n={n})"]
    for step in range(points):
        fraction = step / (points - 1)
        index = min(int(fraction * (n - 1)), n - 1)
        lines.append(f"  p{fraction:>4.0%}  {ordered[index]:>12.2f}")
    return "\n".join(lines)


def cdf_at(samples: Sequence[float], value: float) -> float:
    """Empirical CDF of ``samples`` evaluated at ``value``."""
    if not samples:
        return 0.0
    return sum(1 for s in samples if s <= value) / len(samples)


def render_series(
    xs: Sequence[object], ys: Sequence[object], *, x_label: str, y_label: str
) -> str:
    """Two-column series rendering for figure data."""
    header = f"{x_label:>12}  {y_label:>12}"
    lines = [header, "-" * len(header)]
    for x, y in zip(xs, ys):
        lines.append(f"{str(x):>12}  {str(y):>12}")
    return "\n".join(lines)
