"""SOC-facing incident reports (Section III-E's system output).

The system's deliverable to the SOC is "an ordered list of suspicious
domains presented ... for further investigation".  An analyst needs the
evidence, not just the list: which hosts contacted each domain, the
beacon period if the connection was automated, WHOIS age, whether
VirusTotal already knows it, and how the domain entered the graph (C&C
detection vs similarity, at which belief-propagation iteration, at what
score).  :func:`build_incident` assembles that evidence from a
belief-propagation result plus the day's traffic; the rendering is the
artifact a SOC queue would receive.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from ..core.beliefprop import BeliefPropagationResult
from ..intel.virustotal import VirusTotalOracle
from ..intel.whois_db import WhoisDatabase
from ..profiling.rare import DailyTraffic
from ..timing.detector import AutomationVerdict


@dataclass(frozen=True)
class DomainEvidence:
    """Everything an analyst sees for one suspicious domain."""

    domain: str
    reason: str
    iteration: int
    score: float
    hosts: tuple[str, ...]
    connection_count: int
    beacon_period: float | None
    """Inferred beacon period in seconds, when any contacting host's
    series was labeled automated."""

    resolved_ips: tuple[str, ...]
    dom_age_days: float | None
    vt_reported: bool | None


@dataclass
class IncidentReport:
    """One day's detection outcome, ready for the SOC queue."""

    day: int
    evidence: list[DomainEvidence] = field(default_factory=list)
    compromised_hosts: tuple[str, ...] = ()

    @property
    def domains(self) -> list[str]:
        return [e.domain for e in self.evidence]

    def render(self) -> str:
        """The incident as an analyst-readable multi-line summary."""
        lines = [
            f"incident report, day {self.day}: "
            f"{len(self.evidence)} suspicious domains, "
            f"{len(self.compromised_hosts)} hosts implicated",
        ]
        for ev in self.evidence:
            vt = ("VT-known" if ev.vt_reported
                  else "VT-unknown" if ev.vt_reported is not None else "VT: n/a")
            age = (f"{ev.dom_age_days:.0f}d old" if ev.dom_age_days is not None
                   else "no WHOIS")
            beacon = (f"beacon {ev.beacon_period:.0f}s"
                      if ev.beacon_period is not None else "no beacon")
            lines.append(
                f"  [{ev.reason} iter {ev.iteration} score {ev.score:.2f}] "
                f"{ev.domain}  ({len(ev.hosts)} hosts, "
                f"{ev.connection_count} conns, {beacon}, {age}, {vt})"
            )
        lines.append(
            "  hosts: " + (", ".join(self.compromised_hosts) or "(none)")
        )
        return "\n".join(lines)


def build_incident(
    result: BeliefPropagationResult,
    traffic: DailyTraffic,
    *,
    verdicts: Iterable[AutomationVerdict] = (),
    whois: WhoisDatabase | None = None,
    virustotal: VirusTotalOracle | None = None,
    when: float = 0.0,
    include_seeds: bool = False,
) -> IncidentReport:
    """Assemble the evidence dossier for one BP run.

    ``verdicts`` are the day's automation verdicts (for beacon
    periods); ``whois``/``virustotal`` enrich with registration age and
    reported status when available.  Seed domains are excluded by
    default since the SOC already knows them.
    """
    period_by_domain: dict[str, float] = {}
    for verdict in verdicts:
        if verdict.automated:
            period_by_domain.setdefault(verdict.domain, verdict.period)

    evidence: list[DomainEvidence] = []
    for detection in result.detections:
        if detection.reason == "seed" and not include_seeds:
            continue
        domain = detection.domain
        hosts = tuple(sorted(traffic.hosts_by_domain.get(domain, ())))
        connection_count = sum(
            len(traffic.connection_times(host, domain)) for host in hosts
        )
        age_days = None
        if whois is not None:
            record = whois.lookup(domain)
            if record is not None:
                age_days = record.age_days(when)
        evidence.append(
            DomainEvidence(
                domain=domain,
                reason=detection.reason,
                iteration=detection.iteration,
                score=detection.score,
                hosts=hosts,
                connection_count=connection_count,
                beacon_period=period_by_domain.get(domain),
                resolved_ips=tuple(sorted(traffic.resolved_ips.get(domain, ()))),
                dom_age_days=age_days,
                vt_reported=(
                    virustotal.is_reported(domain)
                    if virustotal is not None else None
                ),
            )
        )
    return IncidentReport(
        day=traffic.day,
        evidence=evidence,
        compromised_hosts=tuple(sorted(result.hosts)),
    )
