"""Detection metrics (Sections V-C and VI-B).

The paper reports:

* **TDR** (true detection rate) -- fraction of detected domains that
  are truly malicious (= precision; the paper's "fraction of true
  positives among all detected domains");
* **FDR** (false detection rate) -- fraction of detections that are
  benign (``FDR = 1 - TDR``);
* **FNR** (false negative rate) -- fraction of truly malicious domains
  the detector labeled legitimate (missed);
* **NDR** (new-discovery rate, enterprise evaluation) -- fraction of
  detections that are malicious/suspicious *and* unknown to both
  VirusTotal and the SOC.
"""

from __future__ import annotations

from collections.abc import Iterable, Set
from dataclasses import dataclass


@dataclass(frozen=True)
class DetectionCounts:
    """Raw confusion counts over domains."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def detected(self) -> int:
        return self.true_positives + self.false_positives

    @property
    def tdr(self) -> float:
        """True detection rate (precision over detections)."""
        return self.true_positives / self.detected if self.detected else 0.0

    @property
    def fdr(self) -> float:
        """False detection rate = 1 - TDR (0 when nothing detected)."""
        return self.false_positives / self.detected if self.detected else 0.0

    @property
    def fnr(self) -> float:
        """Fraction of truly malicious domains that were missed."""
        total_malicious = self.true_positives + self.false_negatives
        return self.false_negatives / total_malicious if total_malicious else 0.0

    def __add__(self, other: "DetectionCounts") -> "DetectionCounts":
        return DetectionCounts(
            self.true_positives + other.true_positives,
            self.false_positives + other.false_positives,
            self.false_negatives + other.false_negatives,
        )


ZERO_COUNTS = DetectionCounts(0, 0, 0)


def score_detections(
    detected: Iterable[str], truth: Set[str]
) -> DetectionCounts:
    """Confusion counts of a detected-domain set against ground truth."""
    detected_set = set(detected)
    tp = len(detected_set & truth)
    fp = len(detected_set - truth)
    fn = len(truth - detected_set)
    return DetectionCounts(tp, fp, fn)


def new_discovery_rate(
    detected_malicious: Set[str],
    vt_reported: Set[str],
    soc_known: Set[str],
) -> float:
    """NDR: detections unknown to both VT and the SOC (Section VI-B)."""
    if not detected_malicious:
        return 0.0
    new = detected_malicious - vt_reported - soc_known
    return len(new) / len(detected_malicious)


@dataclass(frozen=True)
class ValidationBreakdown:
    """Enterprise validation categories (Section VI-B).

    Every detected domain lands in exactly one of: known malicious
    (VT/SOC confirmed), new malicious/suspicious (truly malicious but
    unknown to VT and the SOC -- the paper's new discoveries), or
    legitimate (a false positive).
    """

    known_malicious: int
    new_malicious: int
    legitimate: int

    @property
    def detected(self) -> int:
        return self.known_malicious + self.new_malicious + self.legitimate

    @property
    def tdr(self) -> float:
        """True-detection rate: confirmed malicious over all detected."""
        if not self.detected:
            return 0.0
        return (self.known_malicious + self.new_malicious) / self.detected

    @property
    def ndr(self) -> float:
        """New-discovery rate: new malicious over all detected."""
        if not self.detected:
            return 0.0
        return self.new_malicious / self.detected


def validate_detections(
    detected: Iterable[str],
    truth: Set[str],
    vt_reported: Set[str],
    soc_known: Set[str] = frozenset(),
) -> ValidationBreakdown:
    """Classify detections into the Section VI-B categories."""
    known = new = legit = 0
    for domain in set(detected):
        if domain in truth:
            if domain in vt_reported or domain in soc_known:
                known += 1
            else:
                new += 1
        else:
            legit += 1
    return ValidationBreakdown(known, new, legit)
