"""LANL challenge solver and evaluation (Section V).

Replays the paper's methodology on the synthetic LANL world, one March
date at a time and strictly in order (histories update at end of day):

1. reduce the day's raw DNS records through the Section IV-A funnel;
2. extract rare destinations against the incrementally built history;
3. run the dynamic-histogram automation detector over rare
   (host, domain) series;
4. apply the LANL C&C heuristic -- at least two distinct hosts
   beaconing to the domain at similar periods (Section V-B);
5. run belief propagation with the additive similarity scorer, seeded
   by the case's hint hosts (cases 1-3) or by the detected C&C domains
   (case 4);
6. score detections against the challenge answers (Table III).

The module also computes the Figure 3 timing CDFs and the Table II
(W, JT) parameter sweep from the same day contexts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import LANL_CONFIG, SystemConfig
from ..core.beliefprop import BeliefPropagationResult, belief_propagation
from ..core.scoring import AdditiveSimilarityScorer, multi_host_beacon_heuristic
from ..logs.normalize import normalize_dns_records
from ..logs.reduction import ReductionFunnel
from ..profiling.history import DestinationHistory
from ..profiling.rare import DailyTraffic, extract_rare_domains, rare_domains_by_host
from ..synthetic.lanl import LanlCampaignTruth, LanlDataset
from ..timing.detector import AutomationDetector, AutomationVerdict
from .metrics import DetectionCounts, ZERO_COUNTS, score_detections

SECONDS_PER_DAY = 86_400.0


@dataclass
class LanlDayContext:
    """Aggregated state for one March date, ready for detection."""

    march_date: int
    day: int
    traffic: DailyTraffic
    rare: set[str]
    truth: LanlCampaignTruth | None

    def rare_series(self) -> list[tuple[tuple[str, str], list[float]]]:
        """(host, domain) timestamp series restricted to rare domains."""
        return self.traffic.rare_series(self.rare)


@dataclass
class DayOutcome:
    """Detection result for one challenge day."""

    march_date: int
    case: int
    detected: list[str]
    counts: DetectionCounts
    cc_seeds: set[str]
    bp_result: BeliefPropagationResult | None


@dataclass
class ChallengeReport:
    """Aggregate results over all 20 campaigns (Table III)."""

    outcomes: list[DayOutcome] = field(default_factory=list)

    def counts_for(self, case: int, training: bool) -> DetectionCounts:
        """Detection counts for one case, split by training/test dates."""
        from ..synthetic.lanl import TRAINING_DATES

        total = ZERO_COUNTS
        for outcome in self.outcomes:
            if outcome.case != case:
                continue
            if (outcome.march_date in TRAINING_DATES) != training:
                continue
            total = total + outcome.counts
        return total

    def totals(self, training: bool) -> DetectionCounts:
        """Detection counts summed over all cases for one date split."""
        from ..synthetic.lanl import TRAINING_DATES

        total = ZERO_COUNTS
        for outcome in self.outcomes:
            if (outcome.march_date in TRAINING_DATES) == training:
                total = total + outcome.counts
        return total

    @property
    def overall(self) -> DetectionCounts:
        return self.totals(True) + self.totals(False)


class LanlChallengeSolver:
    """Stateful solver; call :meth:`solve_day` in chronological order."""

    def __init__(
        self,
        dataset: LanlDataset,
        config: SystemConfig | None = None,
    ) -> None:
        self.dataset = dataset
        self.config = config or LANL_CONFIG
        self.history = DestinationHistory()
        self.history.bootstrap(dataset.bootstrap_domains)
        self.funnel = ReductionFunnel(
            dataset.internal_suffixes,
            dataset.server_ips,
            fold_level=self.config.rarity.fold_level,
        )
        self.automation = AutomationDetector(self.config.histogram)
        self.scorer = AdditiveSimilarityScorer()
        self._solved_dates: list[int] = []

    # ------------------------------------------------------------------

    def day_context(self, march_date: int) -> LanlDayContext:
        """Reduce, normalize and aggregate one day (no detection yet)."""
        day = self.dataset.config.bootstrap_days + (march_date - 1)
        records = self.dataset.day_records(march_date)
        reduced = self.funnel.reduce(records)
        connections = list(
            normalize_dns_records(
                reduced, fold_level=self.config.rarity.fold_level
            )
        )
        traffic = DailyTraffic(day)
        traffic.ingest(connections)
        traffic.finalize()

        new_domains = {
            domain
            for domain in traffic.hosts_by_domain
            if self.history.is_new(domain)
        }
        rare = extract_rare_domains(
            traffic,
            self.history,
            unpopular_max_hosts=self.config.rarity.unpopular_max_hosts,
        )
        self.funnel.observe_profiling_step("new", day, new_domains)
        self.funnel.observe_profiling_step("rare", day, rare)
        return LanlDayContext(
            march_date=march_date,
            day=day,
            traffic=traffic,
            rare=rare,
            truth=self.dataset.campaign_for_date(march_date),
        )

    def _commit_day(self, context: LanlDayContext) -> None:
        for domain in context.traffic.hosts_by_domain:
            self.history.stage(domain, context.day)
        self.history.commit_day(context.day)
        self._solved_dates.append(context.march_date)

    def detect_cc_domains(
        self, context: LanlDayContext
    ) -> tuple[set[str], list[AutomationVerdict]]:
        """LANL C&C heuristic over the day's rare automated domains."""
        verdicts = self.automation.automated_pairs(context.rare_series())
        cc: set[str] = set()
        for domain in {v.domain for v in verdicts}:
            if multi_host_beacon_heuristic(domain, verdicts, context.traffic):
                cc.add(domain)
        return cc, verdicts

    def run_belief_propagation(
        self,
        context: LanlDayContext,
        seed_hosts: set[str],
        seed_domains: set[str],
        cc_set: set[str],
    ) -> BeliefPropagationResult:
        """Run BP for one day's context; returns the result or None."""
        host_rdom = rare_domains_by_host(context.traffic, context.rare)
        dom_host = {
            domain: frozenset(context.traffic.hosts_by_domain.get(domain, ()))
            for domain in context.rare
        }

        def detect_cc(domain: str) -> bool:
            return domain in cc_set

        def similarity(domain: str, malicious: set[str]) -> float:
            return self.scorer.score(domain, malicious, context.traffic)

        return belief_propagation(
            seed_hosts,
            seed_domains,
            dom_host=dom_host,
            host_rdom=host_rdom,
            detect_cc=detect_cc,
            similarity_score=similarity,
            config=self.config.belief_propagation,
        )

    def solve_day(self, march_date: int) -> DayOutcome:
        """Full detection for one day; updates histories afterwards."""
        context = self.day_context(march_date)
        truth = context.truth
        cc_set, _verdicts = self.detect_cc_domains(context)

        bp_result: BeliefPropagationResult | None = None
        detected: list[str] = []
        if truth is not None and truth.hint_hosts:
            # Cases 1-3: seed with the hint hosts only.
            bp_result = self.run_belief_propagation(
                context, set(truth.hint_hosts), set(), cc_set
            )
            detected = bp_result.detected_domains
        elif cc_set:
            # Case 4 (or any unhinted day): seed with detected C&C.
            seed_hosts: set[str] = set()
            for domain in cc_set:
                seed_hosts.update(context.traffic.hosts_by_domain.get(domain, ()))
            bp_result = self.run_belief_propagation(
                context, seed_hosts, set(cc_set), cc_set
            )
            detected = sorted(cc_set) + bp_result.detected_domains

        truth_domains = set(truth.malicious_domains) if truth else set()
        counts = score_detections(detected, truth_domains)
        outcome = DayOutcome(
            march_date=march_date,
            case=truth.case if truth else 0,
            detected=detected,
            counts=counts,
            cc_seeds=cc_set,
            bp_result=bp_result,
        )
        self._commit_day(context)
        return outcome

    def solve_all(self) -> ChallengeReport:
        """Solve every challenge date in chronological order."""
        report = ChallengeReport()
        dates = sorted(t.march_date for t in self.dataset.campaigns)
        for march_date in dates:
            report.outcomes.append(self.solve_day(march_date))
        return report


def timing_gap_samples(
    solver: LanlChallengeSolver, march_dates: list[int]
) -> tuple[list[float], list[float]]:
    """Figure 3 inputs: first-visit gaps for domain pairs by one host.

    Returns (malicious-to-malicious gaps, malicious-to-rare-legitimate
    gaps), collected over compromised hosts on the given dates.  The
    solver's history is consumed in order, so pass dates before solving
    them elsewhere (or use a dedicated solver instance).
    """
    mal_mal: list[float] = []
    mal_legit: list[float] = []
    for march_date in sorted(march_dates):
        context = solver.day_context(march_date)
        truth = context.truth
        if truth is None:
            solver._commit_day(context)
            continue
        malicious = set(truth.malicious_domains)
        for host in truth.compromised_hosts:
            visited = [
                domain
                for domain in context.traffic.domains_by_host.get(host, ())
                if domain in context.rare
            ]
            first = {
                domain: context.traffic.first_contact(host, domain)
                for domain in visited
            }
            mal_visited = [d for d in visited if d in malicious]
            legit_visited = [d for d in visited if d not in malicious]
            for index, dom_a in enumerate(mal_visited):
                for dom_b in mal_visited[index + 1:]:
                    mal_mal.append(abs(first[dom_a] - first[dom_b]))
                for dom_b in legit_visited:
                    mal_legit.append(abs(first[dom_a] - first[dom_b]))
        solver._commit_day(context)
    return mal_mal, mal_legit


@dataclass(frozen=True)
class SweepRow:
    """One Table II row."""

    bin_width: float
    jeffrey_threshold: float
    malicious_pairs_training: int
    malicious_pairs_testing: int
    all_pairs_testing: int


def sweep_histogram_parameters(
    dataset: LanlDataset,
    bin_widths: tuple[float, ...] = (5.0, 10.0, 20.0),
    thresholds: tuple[float, ...] = (0.0, 0.034, 0.06, 0.35),
    *,
    config: SystemConfig | None = None,
) -> list[SweepRow]:
    """Table II: automated-pair counts per (W, JT) combination.

    "Malicious pairs" are (host, C&C-domain) beacon pairs from the
    ground truth; "all pairs" counts every (host, rare domain) series
    labeled automated on testing days.
    """
    from ..config import HistogramConfig
    from ..synthetic.lanl import TRAINING_DATES

    solver = LanlChallengeSolver(dataset, config)
    contexts: list[LanlDayContext] = []
    for march_date in sorted(t.march_date for t in dataset.campaigns):
        context = solver.day_context(march_date)
        contexts.append(context)
        solver._commit_day(context)

    rows: list[SweepRow] = []
    for width in bin_widths:
        for threshold in thresholds:
            detector = AutomationDetector(
                HistogramConfig(bin_width=width, jeffrey_threshold=threshold)
            )
            mal_train = mal_test = all_test = 0
            for context in contexts:
                truth = context.truth
                cc_pairs: set[tuple[str, str]] = set()
                if truth is not None:
                    for domain in truth.cc_domains:
                        for host in truth.compromised_hosts:
                            cc_pairs.add((host, domain))
                training = truth is not None and truth.is_training
                for verdict in detector.automated_pairs(context.rare_series()):
                    pair = (verdict.host, verdict.domain)
                    if pair in cc_pairs:
                        if training:
                            mal_train += 1
                        else:
                            mal_test += 1
                    if not training:
                        all_test += 1
            rows.append(
                SweepRow(
                    bin_width=width,
                    jeffrey_threshold=threshold,
                    malicious_pairs_training=mal_train,
                    malicious_pairs_testing=mal_test,
                    all_pairs_testing=all_test,
                )
            )
    return rows
