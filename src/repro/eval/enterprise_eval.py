"""Enterprise (AC) evaluation harness (Section VI).

Trains the full pipeline on the synthetic enterprise's bootstrap month,
replays the operation month once to cache per-day aggregation state,
then sweeps thresholds cheaply over the cached state:

* :meth:`EnterpriseEvaluation.cc_sweep` -- Figure 6(a): domains labeled
  C&C as the automated-domain score threshold varies;
* :meth:`EnterpriseEvaluation.no_hint_sweep` -- Figure 6(b): belief
  propagation seeded by detected C&C, varying the similarity threshold;
* :meth:`EnterpriseEvaluation.soc_hints_sweep` -- Figure 6(c): belief
  propagation seeded by SOC IOC domains;
* :meth:`EnterpriseEvaluation.score_samples` -- Figure 5: automated
  domain scores split by VirusTotal label.

Validation mirrors Section VI-B: detections are classified as known
malicious (VT or SOC), new malicious (truly malicious, unknown to
both -- the paper's new discoveries), or legitimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ENTERPRISE_CONFIG, SystemConfig
from ..core.beliefprop import belief_propagation
from ..core.pipeline import EnterpriseDetector, _automated_hosts_by_domain
from ..intel.ioc import IocList
from ..intel.virustotal import VirusTotalOracle
from ..profiling.rare import DailyTraffic, rare_domains_by_host
from ..synthetic.enterprise import EnterpriseDataset
from .metrics import ValidationBreakdown, validate_detections

SECONDS_PER_DAY = 86_400.0


@dataclass
class OperationalDay:
    """Cached aggregation state for one operation day."""

    day: int
    traffic: DailyTraffic
    rare: set[str]
    auto_hosts: dict[str, set[str]]
    cc_scores: dict[str, float]
    when: float

    def dom_host(self) -> dict[str, frozenset[str]]:
        return {
            domain: frozenset(self.traffic.hosts_by_domain.get(domain, ()))
            for domain in self.rare
        }


@dataclass(frozen=True)
class SweepPoint:
    """One threshold point of a Figure 6 sweep."""

    threshold: float
    detected: frozenset[str]
    breakdown: ValidationBreakdown

    @property
    def detected_count(self) -> int:
        return len(self.detected)


@dataclass
class EnterpriseEvaluation:
    """Trained pipeline plus cached operation-month state."""

    dataset: EnterpriseDataset
    config: SystemConfig = field(default_factory=lambda: ENTERPRISE_CONFIG)
    detector: EnterpriseDetector = field(init=False)
    virustotal: VirusTotalOracle = field(init=False)
    ioc: IocList = field(init=False)
    days: list[OperationalDay] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self.virustotal = self.dataset.build_virustotal()
        self.ioc = self.dataset.build_ioc_list()
        self.detector = EnterpriseDetector(self.config, whois=self.dataset.whois)
        training = self.dataset.day_batches(0, self.dataset.config.bootstrap_days)
        self.detector.train(training, self.virustotal)
        if self.detector.cc_scorer is None or self.detector.similarity_scorer is None:
            raise RuntimeError(
                "training did not produce both models; enlarge the dataset"
            )
        self._replay_operation_month()

    def _replay_operation_month(self) -> None:
        """Aggregate every operation day once, updating profiles in order."""
        first = self.dataset.config.bootstrap_days
        last = self.dataset.config.total_days
        for day, connections in self.dataset.day_batches(first, last):
            traffic, rare = self.detector._aggregate_day(day, connections)
            when = (day + 1) * SECONDS_PER_DAY
            verdicts = self.detector._automation_verdicts(traffic, rare)
            auto_hosts = _automated_hosts_by_domain(verdicts)
            cc_scores = {
                domain: self.detector.cc_scorer.score(
                    domain, traffic, auto_hosts[domain], when
                )
                for domain in sorted(auto_hosts)
            }
            self.days.append(
                OperationalDay(
                    day=day,
                    traffic=traffic,
                    rare=rare,
                    auto_hosts=auto_hosts,
                    cc_scores=cc_scores,
                    when=when,
                )
            )
            self.detector._profile_day(day, connections)

    # ------------------------------------------------------------------
    # Figure 5
    # ------------------------------------------------------------------

    def score_samples(self) -> tuple[list[float], list[float]]:
        """(reported scores, legitimate scores) of automated domains."""
        reported: list[float] = []
        legitimate: list[float] = []
        for op_day in self.days:
            for domain, score in op_day.cc_scores.items():
                if self.virustotal.is_reported(domain):
                    reported.append(score)
                else:
                    legitimate.append(score)
        return reported, legitimate

    # ------------------------------------------------------------------
    # Detection at a given threshold
    # ------------------------------------------------------------------

    def cc_detections(self, tc: float) -> set[str]:
        """Domains labeled C&C over the month at threshold ``tc``."""
        detected: set[str] = set()
        for op_day in self.days:
            detected.update(
                domain
                for domain, score in op_day.cc_scores.items()
                if score >= tc
            )
        return detected

    def _run_bp(
        self,
        op_day: OperationalDay,
        seed_hosts: set[str],
        seed_domains: set[str],
        cc_set: set[str],
        ts: float,
    ) -> set[str]:
        scorer = self.detector.similarity_scorer
        config = self.config.belief_propagation.__class__(
            similarity_threshold=ts,
            cc_score_threshold=self.config.belief_propagation.cc_score_threshold,
            max_iterations=self.config.belief_propagation.max_iterations,
        )

        def detect_cc(domain: str) -> bool:
            return domain in cc_set

        def similarity(domain: str, malicious: set[str]) -> float:
            return scorer.score(domain, malicious, op_day.traffic, op_day.when)

        result = belief_propagation(
            seed_hosts,
            seed_domains,
            dom_host=op_day.dom_host(),
            host_rdom=rare_domains_by_host(op_day.traffic, op_day.rare),
            detect_cc=detect_cc,
            similarity_score=similarity,
            config=config,
        )
        return set(result.detected_domains)

    def no_hint_detections(self, ts: float, tc: float = 0.4) -> set[str]:
        """No-hint mode over the month: C&C seeds + BP expansion."""
        detected: set[str] = set()
        for op_day in self.days:
            cc_set = {
                domain
                for domain, score in op_day.cc_scores.items()
                if score >= tc
            }
            if not cc_set:
                continue
            seed_hosts: set[str] = set()
            for domain in cc_set:
                seed_hosts.update(op_day.traffic.hosts_by_domain.get(domain, ()))
            detected.update(cc_set)
            detected.update(
                self._run_bp(op_day, seed_hosts, set(cc_set), cc_set, ts)
            )
        return detected

    def soc_hints_detections(self, ts: float, tc: float = 0.4) -> set[str]:
        """SOC-hints mode: IOC-seeded BP; seeds excluded from output."""
        seeds = set(self.ioc.seeds())
        detected: set[str] = set()
        for op_day in self.days:
            present = {
                domain for domain in seeds
                if domain in op_day.traffic.hosts_by_domain
            }
            if not present:
                continue
            cc_set = {
                domain
                for domain, score in op_day.cc_scores.items()
                if score >= tc
            }
            seed_hosts: set[str] = set()
            for domain in present:
                seed_hosts.update(op_day.traffic.hosts_by_domain.get(domain, ()))
            detected.update(
                self._run_bp(op_day, seed_hosts, present, cc_set, ts)
            )
        return detected - seeds

    # ------------------------------------------------------------------
    # Sweeps (Figure 6)
    # ------------------------------------------------------------------

    def _validate(self, detected: set[str]) -> ValidationBreakdown:
        return validate_detections(
            detected,
            self.dataset.malicious_domains,
            self.virustotal.reported_domains,
            set(self.ioc.seeds()),
        )

    def cc_sweep(
        self, thresholds: tuple[float, ...] = (0.40, 0.42, 0.44, 0.45, 0.46, 0.48)
    ) -> list[SweepPoint]:
        """Figure 6(a)."""
        return [
            SweepPoint(tc, frozenset(d := self.cc_detections(tc)), self._validate(d))
            for tc in thresholds
        ]

    def no_hint_sweep(
        self,
        thresholds: tuple[float, ...] = (0.33, 0.5, 0.65, 0.75, 0.85),
        tc: float = 0.4,
    ) -> list[SweepPoint]:
        """Figure 6(b)."""
        return [
            SweepPoint(
                ts,
                frozenset(d := self.no_hint_detections(ts, tc)),
                self._validate(d),
            )
            for ts in thresholds
        ]

    def soc_hints_sweep(
        self,
        thresholds: tuple[float, ...] = (0.33, 0.37, 0.40, 0.41, 0.45),
        tc: float = 0.4,
    ) -> list[SweepPoint]:
        """Figure 6(c)."""
        return [
            SweepPoint(
                ts,
                frozenset(d := self.soc_hints_detections(ts, tc)),
                self._validate(d),
            )
            for ts in thresholds
        ]
