"""Multi-day detection ledger (Section VIII's longitudinal monitoring).

The paper closes by noting that "monitoring activity to these
suspicious domains over longer periods of time ... will answer"
whether detections belong to advanced campaigns or mainstream malware.
The ledger is that longitudinal view: it accumulates each day's
detections and builds per-domain dossiers across the month --
first/last seen, how often redetected, by which mode, with which hosts
-- plus cross-day correlation (domains repeatedly co-detected with the
same partners are almost certainly one campaign).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable
from dataclasses import dataclass, field


@dataclass
class DomainDossier:
    """Longitudinal record for one detected domain."""

    domain: str
    first_day: int
    last_day: int
    detection_days: list[int] = field(default_factory=list)
    modes: set[str] = field(default_factory=set)
    hosts: set[str] = field(default_factory=set)
    best_score: float = 0.0

    @property
    def persistence_days(self) -> int:
        """Span between first and last detection (inclusive)."""
        return self.last_day - self.first_day + 1

    @property
    def redetections(self) -> int:
        return len(self.detection_days) - 1


class DetectionLedger:
    """Accumulates daily detections into longitudinal dossiers."""

    def __init__(self) -> None:
        self._dossiers: dict[str, DomainDossier] = {}
        self._co_detections: dict[frozenset[str], int] = defaultdict(int)

    def __len__(self) -> int:
        return len(self._dossiers)

    def __contains__(self, domain: str) -> bool:
        return domain in self._dossiers

    def record_day(
        self,
        day: int,
        detections: Iterable[tuple[str, float]],
        *,
        mode: str,
        hosts_by_domain: dict[str, set[str]] | None = None,
    ) -> None:
        """Fold one day's detections in.

        ``detections`` yields (domain, score) pairs; ``mode`` is
        ``"no-hint"`` / ``"soc-hints"`` / etc.; ``hosts_by_domain``
        optionally attaches the implicated hosts.
        """
        hosts_by_domain = hosts_by_domain or {}
        todays: list[str] = []
        for domain, score in detections:
            todays.append(domain)
            dossier = self._dossiers.get(domain)
            if dossier is None:
                dossier = DomainDossier(
                    domain=domain, first_day=day, last_day=day
                )
                self._dossiers[domain] = dossier
            dossier.last_day = max(dossier.last_day, day)
            if day not in dossier.detection_days:
                dossier.detection_days.append(day)
            dossier.modes.add(mode)
            dossier.hosts.update(hosts_by_domain.get(domain, ()))
            dossier.best_score = max(dossier.best_score, score)
        # Co-detection counts drive the cross-day campaign correlation.
        unique = sorted(set(todays))
        for i, dom_a in enumerate(unique):
            for dom_b in unique[i + 1:]:
                self._co_detections[frozenset((dom_a, dom_b))] += 1

    def dossier(self, domain: str) -> DomainDossier:
        return self._dossiers[domain]

    def dossiers(self) -> list[DomainDossier]:
        """All dossiers, most persistent first."""
        return sorted(
            self._dossiers.values(),
            key=lambda d: (-len(d.detection_days), d.first_day, d.domain),
        )

    def recurring(self, min_days: int = 2) -> list[DomainDossier]:
        """Domains detected on at least ``min_days`` distinct days --
        the strongest candidates for active long-lived campaigns."""
        return [
            d for d in self.dossiers() if len(d.detection_days) >= min_days
        ]

    def campaign_components(self, min_co_detections: int = 1) -> list[set[str]]:
        """Connected components of the co-detection graph.

        Domains repeatedly detected together are merged into one
        campaign candidate; returns components of size >= 2, largest
        first.
        """
        adjacency: dict[str, set[str]] = defaultdict(set)
        for pair, count in self._co_detections.items():
            if count >= min_co_detections:
                dom_a, dom_b = sorted(pair)
                adjacency[dom_a].add(dom_b)
                adjacency[dom_b].add(dom_a)
        seen: set[str] = set()
        components: list[set[str]] = []
        for start in sorted(adjacency):
            if start in seen:
                continue
            stack, component = [start], set()
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(adjacency[node] - component)
            seen.update(component)
            if len(component) >= 2:
                components.append(component)
        components.sort(key=lambda c: (-len(c), sorted(c)[0]))
        return components

    def render(self, *, limit: int = 20) -> str:
        """Month-level summary for the SOC."""
        dossiers = self.dossiers()
        lines = [
            f"detection ledger: {len(dossiers)} domains across "
            f"{len({d for dos in dossiers for d in dos.detection_days})} days",
        ]
        for dossier in dossiers[:limit]:
            modes = "+".join(sorted(dossier.modes))
            lines.append(
                f"  {dossier.domain:<34} days {dossier.detection_days} "
                f"[{modes}] hosts={len(dossier.hosts)} "
                f"score<={dossier.best_score:.2f}"
            )
        components = self.campaign_components()
        if components:
            lines.append("campaign candidates (co-detection components):")
            for component in components[:limit]:
                lines.append(f"  {sorted(component)}")
        return "\n".join(lines)
