"""Evaluation harness: metrics, LANL challenge, enterprise sweeps."""

from .clusters import (
    DomainCluster,
    cluster_by_name,
    cluster_by_subnet,
    cluster_by_url_pattern,
    name_entropy,
    name_signature,
    triage_report,
)
from .enterprise_eval import EnterpriseEvaluation, OperationalDay, SweepPoint
from .evasion import (
    EvasionCurve,
    EvasionPoint,
    campaign_horizon,
    churn_evasion_curve,
    dns_evasion_curve,
    enterprise_evasion_curve,
    trained_enterprise_world,
)
from .incident import DomainEvidence, IncidentReport, build_incident
from .ledger import DetectionLedger, DomainDossier
from .lanl_challenge import (
    ChallengeReport,
    DayOutcome,
    LanlChallengeSolver,
    LanlDayContext,
    SweepRow,
    sweep_histogram_parameters,
    timing_gap_samples,
)
from .metrics import (
    DetectionCounts,
    ValidationBreakdown,
    new_discovery_rate,
    score_detections,
    validate_detections,
)
from .reporting import cdf_at, render_cdf, render_series, render_table

__all__ = [
    "DomainCluster",
    "cluster_by_name",
    "cluster_by_subnet",
    "cluster_by_url_pattern",
    "name_entropy",
    "name_signature",
    "triage_report",
    "DetectionLedger",
    "DomainDossier",
    "DomainEvidence",
    "IncidentReport",
    "build_incident",
    "EnterpriseEvaluation",
    "OperationalDay",
    "SweepPoint",
    "EvasionCurve",
    "EvasionPoint",
    "campaign_horizon",
    "churn_evasion_curve",
    "dns_evasion_curve",
    "enterprise_evasion_curve",
    "trained_enterprise_world",
    "ChallengeReport",
    "DayOutcome",
    "LanlChallengeSolver",
    "LanlDayContext",
    "SweepRow",
    "sweep_histogram_parameters",
    "timing_gap_samples",
    "DetectionCounts",
    "ValidationBreakdown",
    "new_discovery_rate",
    "score_detections",
    "validate_detections",
    "cdf_at",
    "render_cdf",
    "render_series",
    "render_table",
]
