"""Timing analysis: dynamic histograms and automation detection."""

from .baselines import (
    AutocorrelationDetector,
    FftDetector,
    StaticBinDetector,
    StdDevDetector,
)
from .detector import AutomationDetector, AutomationVerdict
from .divergence import (
    divergence_from_periodic,
    jeffrey_divergence,
    l1_distance,
    periodic_reference,
)
from .histogram import (
    Bin,
    DynamicHistogram,
    build_histogram,
    histogram_from_timestamps,
    intervals,
)

__all__ = [
    "AutocorrelationDetector",
    "FftDetector",
    "StaticBinDetector",
    "StdDevDetector",
    "AutomationDetector",
    "AutomationVerdict",
    "divergence_from_periodic",
    "jeffrey_divergence",
    "l1_distance",
    "periodic_reference",
    "Bin",
    "DynamicHistogram",
    "build_histogram",
    "histogram_from_timestamps",
    "intervals",
]
