"""Automated-connection detection (Section IV-C).

A (host, domain) pair's connections on a day are *automated* when the
dynamic histogram of their inter-connection intervals lies within
Jeffrey divergence ``JT`` of the periodic reference.  ``W`` (bin width)
and ``JT`` jointly control resilience to outliers and attacker-added
jitter; the paper selects ``W = 10 s`` and ``JT = 0.06`` on the LANL
training campaigns (Table II).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..config import HistogramConfig
from .divergence import divergence_from_periodic
from .histogram import DynamicHistogram, histogram_from_timestamps

#: Parity-only path: :meth:`AutomationDetector.automated_pairs_scalar`
#: is the per-series reference the vectorized
#: :func:`repro.timing.batch.automated_pairs_batch` is pinned against
#: (``pytest -m parity``).  Production callers all dispatch through
#: :meth:`AutomationDetector.automated_pairs`; the scalar loop is kept
#: green only to anchor those tests and is slated for retirement with
#: the rest of the scalar hot paths (ROADMAP).
_parity = "automated_pairs_scalar"


@dataclass(frozen=True, slots=True)
class AutomationVerdict:
    """Result of testing one (host, domain) connection series."""

    host: str
    domain: str
    automated: bool
    divergence: float
    period: float
    """Inferred beacon period in seconds (hub of the dominant bin);
    0.0 when the series was too short to test."""

    connections: int


class AutomationDetector:
    """Applies the dynamic-histogram periodicity test to daily series."""

    def __init__(self, config: HistogramConfig | None = None, *, metric: str = "jeffrey") -> None:
        self.config = config or HistogramConfig()
        self.metric = metric

    def histogram(self, timestamps: Sequence[float]) -> DynamicHistogram:
        return histogram_from_timestamps(timestamps, self.config.bin_width)

    def test_series(
        self, host: str, domain: str, timestamps: Sequence[float]
    ) -> AutomationVerdict:
        """Test one (host, domain) daily timestamp series.

        Series shorter than ``min_connections`` are never automated --
        there is not enough evidence either way, and the paper targets
        regular *repeated* beaconing.
        """
        count = len(timestamps)
        if count < self.config.min_connections:
            return AutomationVerdict(
                host=host, domain=domain, automated=False,
                divergence=float("inf"), period=0.0, connections=count,
            )
        histogram = self.histogram(timestamps)
        divergence = divergence_from_periodic(histogram, metric=self.metric)
        return AutomationVerdict(
            host=host,
            domain=domain,
            automated=divergence <= self.config.jeffrey_threshold,
            divergence=divergence,
            period=histogram.period,
            connections=count,
        )

    def automated_pairs(
        self,
        series: Iterable[tuple[tuple[str, str], Sequence[float]]],
    ) -> list[AutomationVerdict]:
        """Test many (host, domain) series; return the automated ones.

        ``series`` yields ``((host, domain), sorted_timestamps)`` pairs,
        the shape produced by :class:`repro.profiling.DailyTraffic`.
        Dispatches to the vectorized batch in
        :func:`repro.timing.batch.automated_pairs_batch`, which is
        bit-identical to calling :meth:`test_series` per pair (the
        ``parity`` tests pin the two together).
        """
        from .batch import automated_pairs_batch

        return automated_pairs_batch(self, series)

    def automated_pairs_scalar(
        self,
        series: Iterable[tuple[tuple[str, str], Sequence[float]]],
    ) -> list[AutomationVerdict]:
        """Per-series scalar loop (parity reference for the batch)."""
        verdicts = []
        for (host, domain), timestamps in series:
            verdict = self.test_series(host, domain, timestamps)
            if verdict.automated:
                verdicts.append(verdict)
        return verdicts
