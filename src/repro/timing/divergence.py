"""Statistical distances between interval histograms (Section IV-C).

The automation test compares the observed inter-connection histogram to
a *periodic reference* -- the histogram a perfectly regular beacon
would produce, i.e. all mass on a single bin located at the dominant
hub.  The comparison metric is the Jeffrey divergence

    d_J(H, K) = sum_i [ h_i log(h_i / m_i) + k_i log(k_i / m_i) ],
    m_i = (h_i + k_i) / 2

chosen because it is numerically stable and robust to noise and bin
size (Rubner et al.).  ``0 * log 0`` is taken as 0.  An L1 distance is
provided as the ablation the paper mentions ("we experimented with
other statistical metrics (e.g., L1 distance), but the results were
very similar").
"""

from __future__ import annotations

import math

from .histogram import DynamicHistogram


def _aligned_frequencies(
    observed: DynamicHistogram, reference: dict[float, float]
) -> list[tuple[float, float]]:
    """Pair up frequencies of two histograms over the union of hubs.

    Bins are keyed by hub value.  The reference for our use is defined
    on the observed histogram's own hubs, so exact float keys align.
    """
    pairs: list[tuple[float, float]] = []
    seen: set[float] = set()
    for bin_ in observed.bins:
        pairs.append((bin_.frequency, reference.get(bin_.hub, 0.0)))
        seen.add(bin_.hub)
    for hub, freq in reference.items():
        if hub not in seen:
            pairs.append((0.0, freq))
    return pairs


def periodic_reference(observed: DynamicHistogram) -> dict[float, float]:
    """Periodic histogram with the observed dominant hub as period.

    All probability mass sits on the highest-frequency cluster hub --
    what a jitter-free beacon with that period would produce under the
    same binning.
    """
    if not observed.bins:
        raise ValueError("cannot build a reference for an empty histogram")
    return {observed.period: 1.0}


def _xlogx_ratio(numerator: float, denominator: float) -> float:
    """``numerator * log(numerator / denominator)`` with 0 log 0 := 0."""
    if numerator == 0.0:
        return 0.0
    return numerator * math.log(numerator / denominator)


def jeffrey_divergence(
    observed: DynamicHistogram, reference: dict[float, float]
) -> float:
    """Jeffrey divergence between an observed histogram and a reference.

    Symmetric and bounded by ``2 log 2`` for probability histograms.
    """
    total = 0.0
    for h, k in _aligned_frequencies(observed, reference):
        m = (h + k) / 2.0
        if m == 0.0:
            continue
        total += _xlogx_ratio(h, m) + _xlogx_ratio(k, m)
    return total


def l1_distance(
    observed: DynamicHistogram, reference: dict[float, float]
) -> float:
    """L1 (total variation x2) distance -- the paper's ablation metric."""
    return sum(abs(h - k) for h, k in _aligned_frequencies(observed, reference))


def divergence_from_periodic(
    observed: DynamicHistogram, *, metric: str = "jeffrey"
) -> float:
    """Distance of an observed histogram from its own periodic reference.

    ``metric`` is ``"jeffrey"`` (default) or ``"l1"``.
    """
    reference = periodic_reference(observed)
    if metric == "jeffrey":
        return jeffrey_divergence(observed, reference)
    if metric == "l1":
        return l1_distance(observed, reference)
    raise ValueError(f"unknown metric {metric!r}")
