"""Baseline periodicity detectors the paper compares against (IV-C).

Three alternatives to the dynamic-histogram method:

* **Standard deviation** -- the paper's own abandoned first attempt:
  label a series automated when the std-dev of its intervals is small.
  A single outlier gap (laptop asleep over lunch) inflates the std-dev
  and breaks it, which is precisely why the paper moved on.
* **FFT** (BotFinder-style): detect a strong spectral peak in the
  binary connection time series.
* **Autocorrelation** (BotSniffer-style): detect a strong peak in the
  autocorrelation of the same series.

All share the :class:`AutomationVerdict` output shape so the ablation
bench can swap them freely.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from .detector import AutomationVerdict
from .histogram import intervals


class StdDevDetector:
    """Label automated when interval std-dev / mean falls below a bound.

    Uses the coefficient of variation rather than raw std-dev so one
    threshold works across beacon periods.
    """

    def __init__(self, max_cv: float = 0.1, min_connections: int = 4) -> None:
        self.max_cv = max_cv
        self.min_connections = min_connections

    def test_series(
        self, host: str, domain: str, timestamps: Sequence[float]
    ) -> AutomationVerdict:
        """Automation verdict from the inter-arrival std-dev test."""
        count = len(timestamps)
        if count < self.min_connections:
            return AutomationVerdict(host, domain, False, float("inf"), 0.0, count)
        gaps = intervals(timestamps)
        mean = sum(gaps) / len(gaps)
        if mean <= 0:
            return AutomationVerdict(host, domain, False, float("inf"), 0.0, count)
        variance = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        cv = math.sqrt(variance) / mean
        return AutomationVerdict(
            host, domain, cv <= self.max_cv, cv, mean, count
        )


def _binary_series(timestamps: Sequence[float], resolution: float) -> np.ndarray:
    """Binary activity vector: 1 in each resolution slot with a hit."""
    start = timestamps[0]
    span = timestamps[-1] - start
    slots = max(int(span / resolution) + 1, 2)
    series = np.zeros(slots)
    for t in timestamps:
        series[min(int((t - start) / resolution), slots - 1)] = 1.0
    return series


class FftDetector:
    """BotFinder-style detector: a strong spectral peak over the noise floor.

    The series is the binary per-slot activity signal.  A periodic
    impulse train concentrates its power on the fundamental and its
    harmonics, so the *peak-to-mean* power ratio (an SNR) is large;
    human browsing produces a roughly flat spectrum whose maximum stays
    within a few multiples of the mean.
    """

    def __init__(
        self,
        min_snr: float = 15.0,
        resolution: float = 10.0,
        min_connections: int = 4,
    ) -> None:
        self.min_snr = min_snr
        self.resolution = resolution
        self.min_connections = min_connections

    def test_series(
        self, host: str, domain: str, timestamps: Sequence[float]
    ) -> AutomationVerdict:
        """Automation verdict from the FFT dominant-peak test."""
        count = len(timestamps)
        if count < self.min_connections:
            return AutomationVerdict(host, domain, False, float("inf"), 0.0, count)
        series = _binary_series(timestamps, self.resolution)
        spectrum = np.abs(np.fft.rfft(series - series.mean())) ** 2
        spectrum = spectrum[1:]  # drop DC
        mean_power = float(spectrum.mean()) if spectrum.size else 0.0
        if mean_power <= 0.0:
            return AutomationVerdict(host, domain, False, float("inf"), 0.0, count)
        peak_index = int(np.argmax(spectrum)) + 1
        snr = float(spectrum[peak_index - 1]) / mean_power
        period = len(series) * self.resolution / peak_index
        return AutomationVerdict(
            host, domain, snr >= self.min_snr, 1.0 / snr, period, count,
        )


class AutocorrelationDetector:
    """BotSniffer-style detector: strong peak in signal autocorrelation."""

    def __init__(
        self,
        min_peak: float = 0.5,
        resolution: float = 10.0,
        min_connections: int = 4,
    ) -> None:
        self.min_peak = min_peak
        self.resolution = resolution
        self.min_connections = min_connections

    def test_series(
        self, host: str, domain: str, timestamps: Sequence[float]
    ) -> AutomationVerdict:
        """Automation verdict from the autocorrelation-peak test."""
        count = len(timestamps)
        if count < self.min_connections:
            return AutomationVerdict(host, domain, False, float("inf"), 0.0, count)
        series = _binary_series(timestamps, self.resolution)
        centered = series - series.mean()
        denom = float(np.dot(centered, centered))
        if denom <= 0.0:
            return AutomationVerdict(host, domain, False, float("inf"), 0.0, count)
        full = np.correlate(centered, centered, mode="full")
        acf = full[full.size // 2:] / denom
        if acf.size < 2:
            return AutomationVerdict(host, domain, False, float("inf"), 0.0, count)
        lag = int(np.argmax(acf[1:])) + 1
        peak = float(acf[lag])
        return AutomationVerdict(
            host, domain, peak >= self.min_peak,
            1.0 - peak, lag * self.resolution, count,
        )


class StaticBinDetector:
    """Ablation: Jeffrey test with *statically* aligned bins.

    Bins are fixed-width intervals ``[i*W, (i+1)*W)``.  Nearly equal
    interval values straddling a bin edge land in different bins,
    which inflates the divergence -- the failure mode that motivated
    dynamic binning (Section IV-C).
    """

    def __init__(
        self,
        bin_width: float = 10.0,
        jeffrey_threshold: float = 0.06,
        min_connections: int = 4,
    ) -> None:
        self.bin_width = bin_width
        self.jeffrey_threshold = jeffrey_threshold
        self.min_connections = min_connections

    def test_series(
        self, host: str, domain: str, timestamps: Sequence[float]
    ) -> AutomationVerdict:
        """Automation verdict from static-width histogram stability."""
        count = len(timestamps)
        if count < self.min_connections:
            return AutomationVerdict(host, domain, False, float("inf"), 0.0, count)
        gaps = intervals(timestamps)
        counts: dict[int, int] = {}
        for gap in gaps:
            index = int(gap // self.bin_width)
            counts[index] = counts.get(index, 0) + 1
        total = len(gaps)
        dominant = max(counts, key=lambda idx: counts[idx])
        divergence = 0.0
        for index, n in counts.items():
            h = n / total
            k = 1.0 if index == dominant else 0.0
            m = (h + k) / 2.0
            if h > 0:
                divergence += h * math.log(h / m)
            if k > 0:
                divergence += k * math.log(k / m)
        period = (dominant + 0.5) * self.bin_width
        return AutomationVerdict(
            host, domain, divergence <= self.jeffrey_threshold,
            divergence, period, count,
        )
