"""Vectorized automation testing over many candidate series at once.

The scalar path in :mod:`repro.timing.histogram` /
:mod:`repro.timing.divergence` tests one (host, domain) series at a
time: a Python loop per interval, a Python loop per cluster, a Python
loop per divergence term.  A day of traffic yields thousands of
candidate series, the overwhelming majority of which are *boring*:
either too short to test, or so regular that every interval joins the
first cluster.  This module batches those cases into NumPy array ops
while delegating anything non-trivial back to the scalar path, keeping
the results bit-identical.

**Exactness discipline.**  Matching the scalar implementations to the
last ulp constrains which array ops are usable:

* Interval extraction (``later - earlier``) is a single IEEE
  subtraction -- ``np.diff`` over float64 produces the same bits.
* A series whose intervals all lie within ``bin_width`` of the first
  interval clusters into a *single* bin (the first cluster exists from
  the start and is checked first, so nothing can found a second one).
  Its frequency is exactly 1.0, the periodic reference places exactly
  1.0 on the same hub, and both the Jeffrey and L1 distances are
  exactly ``0.0`` (``1.0 * log(1.0) == 0.0`` in IEEE arithmetic).  The
  batch detects this case with one ``np.maximum.reduceat`` over all
  candidates and emits the verdict without building a histogram.
* Everything else -- multi-cluster histograms, too-short series,
  unsorted input (which must raise) -- goes through the scalar
  :meth:`~repro.timing.detector.AutomationDetector.test_series`,
  exact by construction.  ``np.log`` is *not* usable for the general
  divergence: NumPy's SIMD log differs from ``math.log`` in the last
  ulp for some inputs, and pairwise ``np.sum`` reassociates additions;
  the array divergence helpers below therefore vectorize alignment and
  the ``(h + k) / 2`` midpoints but keep ``math.log`` terms and the
  scalar left-to-right accumulation order.

The ``parity`` test group pins every helper here against its scalar
counterpart on randomized series, including empty, single-event and
duplicate-timestamp inputs.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

import numpy as np

from .divergence import _aligned_frequencies
from .histogram import DynamicHistogram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .detector import AutomationDetector, AutomationVerdict


def intervals_array(timestamps: Sequence[float]) -> np.ndarray:
    """Vectorized :func:`repro.timing.histogram.intervals`.

    Same contract: raises ``ValueError`` on a non-sorted series, and
    the float64 differences are bit-identical to the scalar
    subtractions.
    """
    times = np.asarray(timestamps, dtype=np.float64)
    if times.size < 2:
        return np.empty(0, dtype=np.float64)
    gaps = np.diff(times)
    if gaps.size and float(gaps.min()) < 0:
        raise ValueError("timestamps must be sorted non-decreasingly")
    return gaps


def assign_interval_array(
    hubs: list[float], counts: list[int], value: float, bin_width: float
) -> int:
    """Array-scan variant of :func:`repro.timing.histogram.assign_interval`.

    The membership test ``|value - hub| <= bin_width`` runs over all
    hubs at once; creation-order precedence is preserved by taking the
    first matching index.  Mutates (``hubs``, ``counts``) in place and
    returns the joined cluster index, exactly like the scalar version.
    """
    if hubs:
        hits = np.flatnonzero(
            np.abs(np.asarray(hubs, dtype=np.float64) - value) <= bin_width
        )
        if hits.size:
            index = int(hits[0])
            counts[index] += 1
            return index
    hubs.append(value)
    counts.append(1)
    return len(hubs) - 1


def _aligned_arrays(
    observed: DynamicHistogram, reference: dict[float, float]
) -> tuple[np.ndarray, np.ndarray]:
    """Aligned (observed, reference) frequency columns as float64 arrays."""
    pairs = _aligned_frequencies(observed, reference)
    if not pairs:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty
    grid = np.asarray(pairs, dtype=np.float64)
    return grid[:, 0], grid[:, 1]


def jeffrey_divergence_array(
    observed: DynamicHistogram, reference: dict[float, float]
) -> float:
    """Array-aligned Jeffrey divergence, bit-equal to the scalar one.

    Alignment and midpoints are vectorized; the log terms stay on
    ``math.log`` and accumulate left-to-right (see the module note on
    why ``np.log`` / ``np.sum`` would drift in the last ulp).
    """
    h_col, k_col = _aligned_arrays(observed, reference)
    midpoints = (h_col + k_col) / 2.0
    log = math.log
    total = 0.0
    for h, k, m in zip(h_col.tolist(), k_col.tolist(), midpoints.tolist()):
        if m == 0.0:
            continue
        term_h = h * log(h / m) if h != 0.0 else 0.0
        term_k = k * log(k / m) if k != 0.0 else 0.0
        total += term_h + term_k
    return total


def l1_distance_array(
    observed: DynamicHistogram, reference: dict[float, float]
) -> float:
    """Array-aligned L1 distance, bit-equal to the scalar one."""
    h_col, k_col = _aligned_arrays(observed, reference)
    total = 0.0
    for gap in np.abs(h_col - k_col).tolist():
        total += gap
    return total


def automated_pairs_batch(
    detector: "AutomationDetector",
    series: Iterable[tuple[tuple[str, str], Sequence[float]]],
) -> list["AutomationVerdict"]:
    """Batched :meth:`AutomationDetector.automated_pairs`.

    One pass of array ops classifies every candidate series:

    * shorter than ``min_connections`` -> never automated (dropped
      without touching its timestamps, like the scalar prefilter);
    * single-cluster (all intervals within ``bin_width`` of the first)
      -> automated with divergence exactly ``0.0`` and the first
      interval as period, emitted straight from the array pass;
    * anything else -> the scalar ``test_series``, including series
      that must raise (unsorted) or that need a real histogram.

    Output order and contents are identical to the scalar loop.
    """
    from .detector import AutomationVerdict

    items = series if isinstance(series, list) else list(series)
    if not items:
        return []
    config = detector.config
    min_connections = config.min_connections
    lengths = np.fromiter(
        (len(timestamps) for _, timestamps in items),
        dtype=np.int64,
        count=len(items),
    )
    candidates = np.flatnonzero(
        (lengths >= min_connections) & (lengths >= 2)
    )
    # Series meeting min_connections with < 2 events (possible only
    # when the config lowers the floor) keep the scalar path, as do
    # too-short series, which the scalar loop drops without testing.
    fast_automated: dict[int, "AutomationVerdict"] = {}
    needs_scalar: set[int] = set(
        np.flatnonzero(
            (lengths >= min_connections) & (lengths < 2)
        ).tolist()
    )
    if candidates.size:
        cand_lengths = lengths[candidates]
        flat = np.empty(int(cand_lengths.sum()), dtype=np.float64)
        cursor = 0
        for item_index, length in zip(
            candidates.tolist(), cand_lengths.tolist()
        ):
            flat[cursor:cursor + length] = items[item_index][1]
            cursor += length
        gaps = np.diff(flat)
        # Drop the diffs spanning one series' end to the next's start.
        series_starts = np.concatenate(
            ([0], np.cumsum(cand_lengths[:-1]))
        )
        if series_starts.size > 1:
            gaps = np.delete(gaps, series_starts[1:] - 1)
        gap_counts = cand_lengths - 1
        gap_starts = np.concatenate(([0], np.cumsum(gap_counts[:-1])))
        first_gaps = gaps[gap_starts]
        deviations = np.abs(gaps - np.repeat(first_gaps, gap_counts))
        max_deviation = np.maximum.reduceat(deviations, gap_starts)
        min_gap = np.minimum.reduceat(gaps, gap_starts)
        single_bin = (max_deviation <= config.bin_width) & (min_gap >= 0)
        threshold = config.jeffrey_threshold
        for position, item_index in enumerate(candidates.tolist()):
            if not single_bin[position]:
                # Multi-cluster or unsorted: scalar handles both
                # (raising on the latter, exactly like before).
                needs_scalar.add(item_index)
                continue
            if 0.0 > threshold:
                continue  # automated=False -> dropped either way
            (host, domain), _ = items[item_index]
            fast_automated[item_index] = AutomationVerdict(
                host=host,
                domain=domain,
                automated=True,
                divergence=0.0,
                period=float(first_gaps[position]),
                connections=int(lengths[item_index]),
            )
    verdicts: list["AutomationVerdict"] = []
    for item_index, ((host, domain), timestamps) in enumerate(items):
        fast = fast_automated.get(item_index)
        if fast is not None:
            verdicts.append(fast)
        elif item_index in needs_scalar:
            verdict = detector.test_series(host, domain, timestamps)
            if verdict.automated:
                verdicts.append(verdict)
    return verdicts
