"""Dynamic histogram binning of inter-connection intervals (Section IV-C).

Static histogram bins make statistical distances brittle: two nearly
identical interval sequences can land in different bins depending on
alignment.  The paper instead *clusters* the observed intervals and
lets the clusters define the bins:

* the first interval becomes the first cluster hub;
* each subsequent interval joins an existing cluster when it lies
  within ``W`` (the bin width) of that cluster's hub, otherwise it
  founds a new cluster with itself as hub.

Each cluster becomes one bin whose frequency is the fraction of
intervals assigned to it.  This absorbs the small timing jitter
attackers add between beacons while still separating genuinely
different periods.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Bin:
    """One dynamic histogram bin."""

    hub: float
    """Representative interval value (the first member of the cluster)."""

    count: int
    """Number of intervals assigned to the bin."""

    frequency: float
    """``count`` normalized by the total number of intervals."""


@dataclass(frozen=True)
class DynamicHistogram:
    """Histogram of inter-connection intervals with data-defined bins."""

    bins: tuple[Bin, ...]
    total: int

    def __post_init__(self) -> None:
        if self.total != sum(b.count for b in self.bins):
            raise ValueError("bin counts do not sum to total")

    @property
    def dominant_bin(self) -> Bin:
        """The highest-frequency bin; its hub is the inferred period.

        Ties break toward the earlier-created (smaller-index) bin,
        which is the first-seen interval value.
        """
        if not self.bins:
            raise ValueError("empty histogram has no dominant bin")
        return max(self.bins, key=lambda b: b.count)

    @property
    def period(self) -> float:
        return self.dominant_bin.hub

    def frequencies(self) -> dict[float, float]:
        return {b.hub: b.frequency for b in self.bins}


def intervals(timestamps: Sequence[float]) -> list[float]:
    """Inter-connection intervals of a sorted timestamp series.

    Raises ``ValueError`` when the series is not sorted; silent
    negative intervals would corrupt every downstream statistic.
    """
    result: list[float] = []
    for earlier, later in zip(timestamps, timestamps[1:]):
        gap = later - earlier
        if gap < 0:
            raise ValueError("timestamps must be sorted non-decreasingly")
        result.append(gap)
    return result


def assign_interval(
    hubs: list[float], counts: list[int], value: float, bin_width: float
) -> int:
    """Assign one interval to its dynamic-histogram cluster in place.

    Clusters are scanned in creation order and the interval joins the
    *first* cluster whose hub is within ``bin_width``; otherwise it
    founds a new cluster with itself as hub.  Returns the index of the
    cluster the interval joined.  Because assignment only depends on
    the clusters created by *earlier* intervals, appending intervals to
    an existing (``hubs``, ``counts``) pair yields exactly the
    histogram a full rebuild over the extended sequence would -- the
    property the streaming verdict cache relies on.
    """
    for index, hub in enumerate(hubs):
        if abs(value - hub) <= bin_width:
            counts[index] += 1
            return index
    hubs.append(value)
    counts.append(1)
    return len(hubs) - 1


def histogram_from_clusters(
    hubs: Sequence[float], counts: Sequence[int]
) -> DynamicHistogram:
    """Freeze (``hubs``, ``counts``) cluster state into a histogram."""
    total = sum(counts)
    bins = tuple(
        Bin(hub=hub, count=count, frequency=count / total)
        for hub, count in zip(hubs, counts)
    )
    return DynamicHistogram(bins=bins, total=total)


def build_histogram(
    interval_values: Sequence[float], bin_width: float
) -> DynamicHistogram:
    """Cluster intervals into a :class:`DynamicHistogram`.

    Implements the paper's scheme verbatim via :func:`assign_interval`.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if not interval_values:
        return DynamicHistogram(bins=(), total=0)
    hubs: list[float] = []
    counts: list[int] = []
    for value in interval_values:
        assign_interval(hubs, counts, value, bin_width)
    return histogram_from_clusters(hubs, counts)


def histogram_from_timestamps(
    timestamps: Sequence[float], bin_width: float
) -> DynamicHistogram:
    """Convenience: intervals + clustering in one call."""
    return build_histogram(intervals(timestamps), bin_width)
