"""File-based detection runner: from log files on disk to detections.

Everything else in the library works on in-memory record streams; this
module is the operational wrapper a deployment actually runs -- point
it at a directory of daily DNS log files (one file per day, as written
by ``repro-detect generate``), and it bootstraps the destination
history from the first files, then performs daily detection on the
rest, exactly following the paper's training/operation split
(Section III-E).

DNS logs carry no WHOIS/HTTP features, so the runner uses the LANL
path: the multi-host beaconing C&C heuristic plus the additive
similarity scorer (Section V-B).  Hint hosts may be supplied per day
for the SOC-hints mode.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence, Set
from dataclasses import dataclass, field
from pathlib import Path

from .config import LANL_CONFIG, SystemConfig
from .core.beliefprop import BeliefPropagationResult, belief_propagation
from .core.scoring import (
    AdditiveSimilarityScorer,
    IncrementalAdditiveScorer,
    group_verdicts_by_domain,
    multi_host_beacon_heuristic,
)
from .logs.dns import parse_dns_log
from .logs.normalize import normalize_dns_records
from .logs.reduction import ReductionFunnel
from .obs.metrics import NULL_METRICS
from .profiling.history import DestinationHistory
from .profiling.rare import DailyTraffic, extract_rare_domains, rare_domains_by_host
from .timing.detector import AutomationDetector

#: Parity-only path: ``detect_on_traffic(..., use_index=False)`` keeps
#: the legacy per-domain scoring loop purely as the reference the
#: indexed/batched path is pinned against (``pytest -m parity``).
#: Production always runs ``use_index=True``; the legacy branch is
#: kept green only for those tests and is slated for retirement
#: (ROADMAP).
_parity = "detect_on_traffic(use_index=False)"


@dataclass
class RunnerDayReport:
    """What the runner produced for one operational log file."""

    path: Path
    day: int
    records: int
    rare_domains: set[str]
    cc_domains: set[str]
    detected: list[str]
    bp_result: BeliefPropagationResult | None = None


@dataclass
class DayDetection:
    """Output of one end-of-day detection pass over a traffic aggregate."""

    cc_domains: set[str]
    detected: list[str]
    bp_result: BeliefPropagationResult | None
    intel_seeded: set[str] = field(default_factory=set)
    """Rare domains seeded from shared intelligence (fleet mode)."""

    ct_seeded: set[str] = field(default_factory=set)
    """Rare domains pulled in through CT SAN-pivot sibling edges."""

    stage_seconds: dict[str, float] = field(default_factory=dict)
    """Wall-clock seconds per detection stage (``automation``, ``bp``)."""


def detect_on_traffic(
    traffic: DailyTraffic,
    rare: set[str],
    *,
    automation: AutomationDetector,
    scorer: AdditiveSimilarityScorer,
    config: SystemConfig,
    hint_hosts: Sequence[str] = (),
    intel_domains: Set[str] = frozenset(),
    ct_edges=None,
    use_index: bool = True,
    metrics=None,
) -> DayDetection:
    """The DNS-path daily detection stages on one day of traffic.

    This is the single implementation both the batch
    :class:`DnsLogRunner` and the streaming engine
    (:class:`repro.streaming.StreamingDetector`) run at end of day, so
    streaming replay is batch-identical by construction: automation
    test over rare (host, domain) series, the multi-host beaconing C&C
    heuristic, then belief propagation seeded by C&C hits (no-hint
    mode) or by SOC hint hosts.

    ``intel_domains`` carries externally confirmed malicious domains
    (a fleet's shared intel plane, a SOC blocklist).  Those that are
    *rare today* in this traffic enter belief propagation as seed
    labels -- the paper's community-feedback amplification: a domain
    confirmed in one enterprise elevates the prior everywhere it
    appears, even where local evidence (e.g. a single beaconing host)
    would not fire the C&C heuristic on its own.

    ``ct_edges`` is an optional :class:`repro.intelstore.ct.CtIndex`:
    certificate-transparency SAN pivots become domain-domain sibling
    evidence.  Rare domains reachable from the day's seeds through
    shared certificates join the seed set (reported as ``ct_seeded``),
    and belief propagation receives a rare-restricted sibling map so
    newly labeled domains extend the frontier to their cert siblings.
    With ``ct_edges=None`` (the default) detections are byte-identical
    to a build without the parameter.

    ``use_index`` routes belief propagation through the day's
    :class:`~repro.profiling.index.TrafficIndex` and the incremental
    frontier scorer; ``False`` keeps the legacy per-domain scoring
    loops.  Both produce identical detections (the parity the
    randomized tests and ``bench_bp_scale`` assert) -- the flag exists
    for those comparisons.

    ``metrics`` is an optional :class:`repro.obs.MetricsRegistry`;
    stage timings are always measured (they feed the returned
    ``stage_seconds``) but recorded into histograms only when given.
    """
    obs = metrics if metrics is not None else NULL_METRICS
    stage_seconds: dict[str, float] = {}
    with obs.span("detect_automation") as automation_span:
        verdicts = automation.automated_pairs(traffic.rare_series(rare))
        verdicts_by_domain = group_verdicts_by_domain(verdicts)
        cc = {
            domain for domain, domain_verdicts in verdicts_by_domain.items()
            if multi_host_beacon_heuristic(domain, domain_verdicts, traffic)
        }
    stage_seconds["automation"] = automation_span.elapsed
    intel_seeded = set(intel_domains) & rare

    seed_hosts: set[str] = set(hint_hosts)
    seed_domains: set[str] = set()
    if not seed_hosts:
        seed_domains = set(cc)
        for domain in cc:
            seed_hosts.update(traffic.hosts_by_domain.get(domain, ()))
    seed_domains |= intel_seeded
    for domain in intel_seeded:
        seed_hosts.update(traffic.hosts_by_domain.get(domain, ()))

    ct_seeded: set[str] = set()
    sibling_dom = None
    if ct_edges is not None:
        from .intelstore.ct import expand_ct_seeds, sibling_map

        ct_seeded = expand_ct_seeds(seed_domains, rare, ct_edges)
        seed_domains |= ct_seeded
        for domain in ct_seeded:
            seed_hosts.update(traffic.hosts_by_domain.get(domain, ()))
        sibling_dom = sibling_map(ct_edges, rare)

    bp_result = None
    detected: list[str] = []
    if seed_hosts:
        if use_index:
            dom_host, host_rdom = traffic.bp_views(rare)
            incremental = IncrementalAdditiveScorer(
                scorer, traffic, index=traffic.index()
            )
            scoring = {"score_frontier": incremental.score_frontier}
        else:
            dom_host = {
                d: frozenset(traffic.hosts_by_domain.get(d, ()))
                for d in rare
            }
            host_rdom = rare_domains_by_host(traffic, rare)
            scoring = {
                "similarity_score":
                    lambda dom, mal: scorer.score(dom, mal, traffic),
            }
        with obs.span("detect_bp") as bp_span:
            bp_result = belief_propagation(
                seed_hosts,
                seed_domains,
                dom_host=dom_host,
                host_rdom=host_rdom,
                detect_cc=lambda dom: dom in cc,
                config=config.belief_propagation,
                sibling_dom=sibling_dom,
                metrics=metrics,
                **scoring,
            )
        stage_seconds["bp"] = bp_span.elapsed
        detected = sorted(seed_domains) + bp_result.detected_domains
    return DayDetection(
        cc_domains=cc,
        detected=detected,
        bp_result=bp_result,
        intel_seeded=intel_seeded,
        ct_seeded=ct_seeded,
        stage_seconds=stage_seconds,
    )


@dataclass
class DnsLogRunner:
    """Stateful daily runner over on-disk DNS log files.

    Feed files chronologically: :meth:`bootstrap` for the training
    period, then :meth:`process` per operational day.  State (the
    destination history) carries across calls, like the deployed
    system's nightly update.
    """

    config: SystemConfig = field(default_factory=lambda: LANL_CONFIG)
    internal_suffixes: tuple[str, ...] = ()
    server_ips: frozenset[str] = frozenset()
    history: DestinationHistory = field(default_factory=DestinationHistory)
    metrics: object = None
    ct_edges: object = None
    """Optional :class:`repro.intelstore.ct.CtIndex`; certificate
    sibling evidence then flows into every day's detection pass,
    mirroring the streaming engine's ``rollover(ct_edges=...)``."""

    _day_counter: int = 0

    def __post_init__(self) -> None:
        if self.metrics is None:
            self.metrics = NULL_METRICS
        self.automation = AutomationDetector(self.config.histogram)
        self.scorer = AdditiveSimilarityScorer()
        self.funnel = ReductionFunnel(
            self.internal_suffixes,
            self.server_ips,
            fold_level=self.config.rarity.fold_level,
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------

    def _aggregate(self, raw_records) -> tuple[DailyTraffic, set[str], int]:
        """Funnel + normalize + aggregate raw records into one day."""
        records = list(self.funnel.reduce(raw_records))
        connections = list(
            normalize_dns_records(
                records, fold_level=self.config.rarity.fold_level
            )
        )
        traffic = DailyTraffic(self._day_counter)
        traffic.ingest(connections)
        traffic.finalize()
        rare = extract_rare_domains(
            traffic,
            self.history,
            unpopular_max_hosts=self.config.rarity.unpopular_max_hosts,
        )
        return traffic, rare, len(records)

    def _read_day(self, path: Path) -> tuple[DailyTraffic, set[str], int]:
        with path.open() as handle:
            return self._aggregate(parse_dns_log(handle))

    def _commit(self, traffic: DailyTraffic) -> None:
        for domain in traffic.hosts_by_domain:
            self.history.stage(domain, self._day_counter)
        self.history.commit_day(self._day_counter)
        self._day_counter += 1

    # ------------------------------------------------------------------

    def bootstrap(self, paths: Iterable[Path]) -> int:
        """Fold training-period files into the history; returns the
        number of distinct destinations profiled."""
        for path in sorted(Path(p) for p in paths):
            traffic, _rare, _count = self._read_day(path)
            self._commit(traffic)
        return len(self.history)

    def bootstrap_records(self, raw_records) -> int:
        """Fold one training day of in-memory raw records into the
        history (the file-less analogue of :meth:`bootstrap`)."""
        traffic, _rare, _count = self._aggregate(raw_records)
        self._commit(traffic)
        return len(self.history)

    def process_records(
        self,
        raw_records,
        *,
        label: str | Path = "<records>",
        hint_hosts: Sequence[str] = (),
    ) -> RunnerDayReport:
        """Detect on one operational day of in-memory raw records.

        The file-less analogue of :meth:`process` -- same funnel,
        normalization and detection pass, so a day fed through here is
        byte-identical to the same records parsed from a file.  The
        adversarial evasion harness drives both this and the streaming
        engine over identical record lists to assert batch/streaming
        parity without touching disk.
        """
        traffic, rare, record_count = self._aggregate(raw_records)
        detection = detect_on_traffic(
            traffic,
            rare,
            automation=self.automation,
            scorer=self.scorer,
            config=self.config,
            hint_hosts=hint_hosts,
            ct_edges=self.ct_edges,
            metrics=self.metrics,
        )
        self.metrics.counter("runner_days_total").inc()
        report = RunnerDayReport(
            path=Path(label),
            day=self._day_counter,
            records=record_count,
            rare_domains=rare,
            cc_domains=detection.cc_domains,
            detected=detection.detected,
            bp_result=detection.bp_result,
        )
        self._commit(traffic)
        return report

    def process(
        self, path: Path, *, hint_hosts: Sequence[str] = ()
    ) -> RunnerDayReport:
        """Detect on one operational day's log file."""
        path = Path(path)
        with path.open() as handle:
            return self.process_records(
                parse_dns_log(handle), label=path, hint_hosts=hint_hosts
            )


def run_directory(
    directory: str | Path,
    *,
    bootstrap_files: int,
    pattern: str = "*.log",
    config: SystemConfig | None = None,
    internal_suffixes: tuple[str, ...] = (),
    server_ips: frozenset[str] = frozenset(),
    metrics=None,
    ct_edges=None,
) -> list[RunnerDayReport]:
    """Bootstrap on the first ``bootstrap_files`` logs in a directory
    (sorted by name) and detect on the rest."""
    paths = sorted(Path(directory).glob(pattern))
    if len(paths) <= bootstrap_files:
        raise ValueError(
            f"need more than {bootstrap_files} files in {directory}, "
            f"found {len(paths)}"
        )
    runner = DnsLogRunner(
        config=config or LANL_CONFIG,
        internal_suffixes=internal_suffixes,
        server_ips=server_ips,
        metrics=metrics,
        ct_edges=ct_edges,
    )
    runner.bootstrap(paths[:bootstrap_files])
    return [runner.process(path) for path in paths[bootstrap_files:]]
