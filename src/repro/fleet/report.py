"""Fleet-level reporting: per-tenant detections plus cross-tenant views.

A fleet run produces one :class:`TenantDayReport` per (tenant, day)
and aggregates them into a :class:`FleetReport`:

* per-tenant totals (records, rare domains, detections, how many came
  from intel seeding);
* **cross-tenant overlap** -- domains detected in two or more tenants,
  the fleet's version of the paper's observation that community
  feedback concentrates on shared attacker infrastructure;
* VT classification of every detected domain through the shared cache
  (``reported`` / ``unreported`` / ``unknown`` without a feed), i.e.
  the paper's known-malicious vs candidate-new-discovery split;
* **WHOIS registration columns** -- age and remaining validity (in
  days, at first detection) of every detected domain, resolved through
  the shared WHOIS cache.  The paper's DomAge/DomValidity observation
  -- attacker infrastructure skews young and short-lived -- surfaced
  fleet-wide for the SOC;
* the intel plane's cache and seeding accounting.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from ..eval.reporting import render_table
from .intel import IntelPlane


@dataclass
class TenantDayReport:
    """What one tenant produced for one operational day."""

    tenant_id: str
    day: int
    source: str
    """Basename of the log file the day came from."""

    records: int
    rare_count: int
    cc_domains: set[str] = field(default_factory=set)
    detected: list[str] = field(default_factory=list)
    intel_seeded: set[str] = field(default_factory=set)
    ct_seeded: set[str] = field(default_factory=set)
    """Domains pulled in through CT SAN-pivot sibling edges."""

    scores: dict[str, float] = field(default_factory=dict)
    """Publication scores per detected domain (seed/C&C labels are 1.0)."""

    elapsed_seconds: float = 0.0
    """Wall-clock time the tenant's ingest + detection day took; the
    fleet throughput benchmark aggregates these into the per-PR
    performance trajectory (``BENCH_perf.json``)."""

    stage_seconds: dict[str, float] = field(default_factory=dict)
    """Wall-clock seconds per detection stage of the day's rollover
    (``rare``, ``automation``, ``bp``, ``commit``), from the engine's
    :class:`~repro.streaming.StreamDayReport`."""

    def as_dict(self) -> dict[str, Any]:
        return {
            "tenant_id": self.tenant_id,
            "day": self.day,
            "source": self.source,
            "records": self.records,
            "rare_count": self.rare_count,
            "cc_domains": sorted(self.cc_domains),
            "detected": list(self.detected),
            "intel_seeded": sorted(self.intel_seeded),
            "ct_seeded": sorted(self.ct_seeded),
            "scores": dict(self.scores),
            "elapsed_seconds": self.elapsed_seconds,
            "stage_seconds": dict(self.stage_seconds),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TenantDayReport":
        return cls(
            tenant_id=str(payload["tenant_id"]),
            day=int(payload["day"]),
            source=str(payload["source"]),
            records=int(payload["records"]),
            rare_count=int(payload["rare_count"]),
            cc_domains=set(payload["cc_domains"]),
            detected=list(payload["detected"]),
            intel_seeded=set(payload["intel_seeded"]),
            ct_seeded=set(payload.get("ct_seeded", ())),
            scores={
                str(domain): float(score)
                for domain, score in payload.get("scores", {}).items()
            },
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            stage_seconds={
                str(stage): float(seconds)
                for stage, seconds in payload.get(
                    "stage_seconds", {}
                ).items()
            },
        )


@dataclass
class FleetReport:
    """Aggregated outcome of one fleet run."""

    days: list[TenantDayReport] = field(default_factory=list)
    rounds: int = 0
    interrupted: bool = False
    vt_labels: dict[str, bool | None] = field(default_factory=dict)
    whois_facts: dict[str, tuple[float, float] | None] = field(
        default_factory=dict
    )
    """Detected domain -> (age_days, validity_days) at first detection,
    or ``None`` for unregistered domains; empty without a WHOIS feed.
    Ages are measured on the *detecting tenant's* clock -- the one its
    own registration features used -- so in a mixed-pipeline fleet two
    tenants confirming the same domain the same round can report
    slightly different ages (enterprise engines count days from their
    trained bootstrap)."""

    intel: IntelPlane | None = field(default=None, repr=False)

    metrics_snapshot: dict[str, Any] | None = field(
        default=None, repr=False
    )
    """Fleet-wide :meth:`~repro.obs.metrics.MetricsSnapshot.as_dict`
    document at the end of the run -- the manager's merged view over
    its own counters and every worker's shipped deltas; ``None`` when
    the run was not instrumented."""

    @property
    def tenant_ids(self) -> list[str]:
        """Sorted ids of every tenant with at least one day report."""
        seen: dict[str, None] = {}
        for report in self.days:
            seen.setdefault(report.tenant_id, None)
        return list(seen)

    def days_for(self, tenant_id: str) -> list[TenantDayReport]:
        return [r for r in self.days if r.tenant_id == tenant_id]

    def detected_by_tenant(self) -> dict[str, set[str]]:
        """Tenant id -> set of all domains it detected, any day."""
        out: dict[str, set[str]] = defaultdict(set)
        for report in self.days:
            out[report.tenant_id].update(report.detected)
        return dict(out)

    def overlap(self) -> list[tuple[str, tuple[str, ...]]]:
        """Domains detected in >= 2 tenants, with their tenant lists."""
        tenants_by_domain: dict[str, set[str]] = defaultdict(set)
        for report in self.days:
            for domain in report.detected:
                tenants_by_domain[domain].add(report.tenant_id)
        return sorted(
            (domain, tuple(sorted(tenants)))
            for domain, tenants in tenants_by_domain.items()
            if len(tenants) >= 2
        )

    def seeded_detections(self) -> int:
        return sum(len(r.intel_seeded) for r in self.days)

    def stage_totals(self) -> dict[str, float]:
        """Total seconds per detection stage across every tenant-day."""
        totals: dict[str, float] = {}
        for report in self.days:
            for stage, seconds in report.stage_seconds.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    # ------------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable summary (for --json and the benchmark)."""
        detected = self.detected_by_tenant()
        payload: dict[str, Any] = {
            "rounds": self.rounds,
            "interrupted": self.interrupted,
            "tenants": {
                tenant_id: {
                    "days": [r.as_dict() for r in self.days_for(tenant_id)],
                    "detected": sorted(detected.get(tenant_id, ())),
                }
                for tenant_id in self.tenant_ids
            },
            "overlap": [
                {"domain": domain, "tenants": list(tenants)}
                for domain, tenants in self.overlap()
            ],
            "vt_labels": {
                domain: label for domain, label in sorted(self.vt_labels.items())
            },
            "whois": {
                domain: (
                    {"age_days": facts[0], "validity_days": facts[1]}
                    if facts is not None else None
                )
                for domain, facts in sorted(self.whois_facts.items())
            },
            "seeded_detections": self.seeded_detections(),
            "stage_seconds": self.stage_totals(),
        }
        if self.metrics_snapshot is not None:
            payload["metrics"] = self.metrics_snapshot
        if self.intel is not None:
            payload["intel"] = {
                "vt": self.intel.vt_cache.stats.as_dict(),
                "whois": self.intel.whois_cache.stats.as_dict(),
                "board_size": len(self.intel.board),
                "seeds_served": self.intel.seeds_served,
            }
            store_stats = self.intel.store_stats()
            if store_stats is not None:
                payload["intel"]["store"] = store_stats
        return payload

    def render(self) -> str:
        """Human-readable fleet summary (the CLI's output)."""
        detected = self.detected_by_tenant()
        rows = []
        for tenant_id in sorted(self.tenant_ids):
            days = self.days_for(tenant_id)
            rows.append((
                tenant_id,
                len(days),
                sum(r.records for r in days),
                sum(r.rare_count for r in days),
                len(detected.get(tenant_id, ())),
                sum(len(r.intel_seeded) for r in days),
            ))
        lines = [render_table(
            ("tenant", "days", "records", "rare", "detected", "seeded"),
            rows,
            title=f"Fleet detection report ({len(rows)} tenants, "
                  f"{self.rounds} rounds)",
        )]
        overlap = self.overlap()
        if overlap:
            lines.append("")
            lines.append(render_table(
                ("domain", "tenants", "vt"),
                [
                    (
                        domain,
                        ",".join(tenants),
                        _vt_label(self.vt_labels.get(domain)),
                    )
                    for domain, tenants in overlap
                ],
                title="Cross-tenant overlap (domains seen in >= 2 tenants)",
            ))
        if self.whois_facts:
            lines.append("")
            lines.append(render_table(
                ("domain", "age_d", "valid_d", "vt"),
                [
                    (
                        domain,
                        _whois_days(facts, 0),
                        _whois_days(facts, 1),
                        _vt_label(self.vt_labels.get(domain)),
                    )
                    for domain, facts in sorted(self.whois_facts.items())
                ],
                title="WHOIS registration of detected domains "
                      "(age / remaining validity at first detection)",
            ))
        if self.intel is not None:
            vt = self.intel.vt_cache.stats
            lines.append("")
            lines.append(
                f"intel plane: vt lookups {vt.hits} hits / {vt.misses} "
                f"misses ({vt.cross_tenant_hits} cross-tenant), "
                f"board {len(self.intel.board)} domains, "
                f"{self.seeded_detections()} seeded detections"
            )
            store_stats = self.intel.store_stats()
            if store_stats is not None:
                lines.append(
                    "intel store: "
                    f"{sum(store_stats['hits'].values())} hits / "
                    f"{sum(store_stats['misses'].values())} misses, "
                    f"{store_stats['flushed_rows']} rows flushed, "
                    f"{store_stats['evictions']} evictions"
                )
        # Stage timings stay out of the rendered summary on purpose:
        # the CLI's output is compared across worker counts by the
        # parity tests, and wall-clock numbers never reproduce.  The
        # --json document and the metrics snapshot carry them.
        return "\n".join(lines)


def _vt_label(value: bool | None) -> str:
    if value is None:
        return "unknown"
    return "reported" if value else "new"


def _whois_days(facts: tuple[float, float] | None, index: int) -> str:
    if facts is None:
        return "-"
    return f"{facts[index]:.1f}"
