"""Resident fleet workers: long-lived per-tenant engine processes.

The fleet's original process executor shipped each tenant's *entire*
engine snapshot through a checkpoint file every round -- O(lifetime
history) serialization per tenant-day, which made ``--executor
process`` slower than serial.  This module replaces it with **resident
workers**: N long-lived processes, each owning a stable subset of
tenants whose streaming engines stay in worker memory across rounds.
Only three thin flows cross the process boundary per round:

* ``INJECT_INTEL`` (manager -> worker): new cross-tenant prior-board
  entries since the worker's last sync (:meth:`IntelPlane.board_delta`
  wire documents), folded into a worker-local
  :class:`~repro.fleet.intel.BoardReplica`;
* ``ADVANCE_DAY`` (manager -> worker -> manager): the round's log file
  per owned tenant in, the per-tenant day reports plus WHOIS
  cache-fill and seeds-served accounting deltas back out;
* ``CHECKPOINT`` (manager -> worker, acked): each tenant's engine is
  committed to its on-disk *checkpoint chain* -- a periodic full
  snapshot plus per-round barrier deltas
  (:class:`repro.state.EngineDeltaTracker`) appended to a JSONL
  sidecar, so commit cost is O(changes), not O(history).

Commands and responses travel over per-worker ``multiprocessing``
queues.  Queue order is the ordering guarantee: ``INJECT_INTEL`` is
fire-and-forget, but because it is enqueued before the round's
``ADVANCE_DAY`` on the same FIFO queue, a worker always folds the
board delta in before computing any subsequent day's seeds (the
ordered-delivery property the tests pin down).

**Crash recovery.**  The manager polls liveness while waiting on a
response (``heartbeat`` seconds); a dead worker raises
:class:`WorkerDied` and is respawned by :meth:`ResidentPool.respawn`
with the same tenant subset, each engine restored from its checkpoint
chain -- without disturbing the other workers.  The ready handshake
reports per-tenant cursors plus the last persisted report, letting the
manager decide per tenant whether the crashed round must be re-run
(deterministic: same files, same seeds) or its report can be adopted.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import queue
from collections.abc import Sequence, Set
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..config import SystemConfig
from ..intel.whois_db import WhoisDatabase, load_whois_file
from ..logs.dns import parse_dns_log
from ..logs.proxy import parse_proxy_log
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..state import (
    EngineDeltaTracker,
    apply_engine_delta,
    decode_config,
    encode_config,
    encode_engine,
    load_detector,
    load_json,
    restore_engine,
    save_json_atomic,
)
from ..streaming import (
    StreamDayReport,
    StreamingDetector,
    StreamingEnterpriseDetector,
)
from ..streaming.events import dns_connection_stream, shard_of
from ..profiling.rare import DailyTraffic, merge_daily_traffic
from .intel import BoardReplica, CacheStats, TenantWhoisView, _TenantCache
from .manifest import TenantSpec
from .report import TenantDayReport

FLEET_STATE_VERSION = 1

#: Command verbs of the manager -> worker protocol.
CMD_ADVANCE_DAY = "ADVANCE_DAY"
CMD_INJECT_INTEL = "INJECT_INTEL"
CMD_CHECKPOINT = "CHECKPOINT"
CMD_SHUTDOWN = "SHUTDOWN"


class FleetError(RuntimeError):
    """Raised on fleet configuration or checkpoint problems."""


class WorkerDied(FleetError):
    """A resident worker process died while the manager awaited it."""

    def __init__(self, worker_id: int) -> None:
        super().__init__(f"resident worker {worker_id} died")
        self.worker_id = worker_id


# ---------------------------------------------------------------------------
# Worker-resident read-only intel
# ---------------------------------------------------------------------------

_WHOIS_MEMO: dict[str, WhoisDatabase] = {}


def load_whois_cached(path: str | Path) -> WhoisDatabase:
    """Parse a registration-registry file once per process and memoize.

    Pool and resident workers alike live across rounds; re-parsing the
    (read-only) registry every round submission was pure overhead and
    reset all cache accounting.  The memo key is the path string --
    fleet runs never rewrite the registry mid-run.  Both registry
    formats load here: classic WHOIS JSON and RDAP fixture documents
    (see :func:`repro.intelstore.rdap.load_registration_registry`).
    """
    from ..intelstore.rdap import load_registration_registry

    key = str(path)
    registry = _WHOIS_MEMO.get(key)
    if registry is None:
        registry = load_registration_registry(path)
        _WHOIS_MEMO[key] = registry
    return registry


class WorkerIntelCache:
    """Worker-resident memoized WHOIS lookups with tenant attribution.

    Shaped like the plane for :class:`TenantWhoisView` (it only needs
    ``whois_lookup(tenant_id, domain)``), so enterprise engines inside
    a resident worker route feature-extraction lookups through this
    cache exactly as thread-mode engines route through the
    :class:`~repro.fleet.intel.IntelPlane`.  :meth:`stats_delta`
    returns the accounting accrued since the previous call; the worker
    ships it with each ``ADVANCE_DAY`` response and the manager absorbs
    it into the plane, keeping fleet-wide hit counters meaningful
    across rounds and process boundaries.
    """

    def __init__(self, whois: WhoisDatabase | None) -> None:
        self.whois = whois
        self.cache = _TenantCache()
        self._reported = CacheStats()

    def whois_lookup(self, tenant_id: str, domain: str):
        """Memoized registry lookup attributed to ``tenant_id``."""
        return self.cache.get(
            domain,
            tenant_id,
            lambda: self.whois.lookup(domain) if self.whois else None,
        )

    def view(self, tenant_id: str) -> TenantWhoisView:
        """A per-tenant ``WhoisDatabase``-shaped view over this cache."""
        return TenantWhoisView(self, tenant_id)

    def stats_delta(self) -> dict[str, int]:
        """Accounting accrued since the last call (an ``as_dict`` doc)."""
        stats = self.cache.stats
        delta = {
            "hits": stats.hits - self._reported.hits,
            "misses": stats.misses - self._reported.misses,
            "cross_tenant_hits": (
                stats.cross_tenant_hits - self._reported.cross_tenant_hits
            ),
        }
        self._reported = CacheStats(**stats.as_dict())
        return delta


# ---------------------------------------------------------------------------
# One tenant, one day (shared by every executor)
# ---------------------------------------------------------------------------

def _scored_detections(report: StreamDayReport) -> dict[str, float]:
    """Publication scores: seed/C&C labels count as confirmed (1.0),
    similarity labels keep their labeling score."""
    scores: dict[str, float] = {}
    if report.bp_result is not None:
        for detection in report.bp_result.detections:
            if detection.reason in ("seed", "cc"):
                scores[detection.domain] = 1.0
            else:
                scores[detection.domain] = detection.score
    for domain in report.detected:
        scores.setdefault(domain, 1.0)
    return scores


def _ingest_day_sharded(detector, records, n_shards: int) -> None:
    """Aggregate one DNS day through per-host-shard windows, merged.

    The resident workers' promotion of the event bus's host shards
    into real aggregation shards: connections are bucketed by
    :func:`~repro.streaming.events.shard_of`, each bucket builds its
    own :class:`DailyTraffic`, and the shards are merged at the
    barrier (:func:`merge_daily_traffic`) before rollover recomputes
    rarity and detection from the merged aggregate.  Byte-identical to
    serial ingestion because host-hash shards keep every (host,
    domain) series whole.  Valid only from an empty window on the DNS
    path (no UA staging) -- callers guard.
    """
    window = detector.window
    connections = list(
        dns_connection_stream(
            records,
            detector.funnel,
            fold_level=detector.config.rarity.fold_level,
        )
    )
    buckets: list[list] = [[] for _ in range(n_shards)]
    for conn in connections:
        buckets[shard_of(conn.host, n_shards)].append(conn)
    shards = [DailyTraffic(window.day) for _ in range(n_shards)]
    for shard, bucket in zip(shards, buckets):
        shard.ingest(bucket)
    window.traffic = merge_daily_traffic(shards, day=window.day)
    window.traffic.index()
    window.events_today = len(connections)
    detector.events_total += len(connections)


def _advance_one_day(
    detector,
    spec_id: str,
    path: Path,
    *,
    bootstrap: bool,
    seeds: Set[str],
    pipeline: str = "dns",
    ct_edges=None,
    window_shards: int = 1,
    metrics=None,
) -> TenantDayReport | None:
    """Feed one log file through a tenant's engine; close the day.

    This is every fleet round's inner loop, so its cost rides on the
    scoring hot path: the engine's window maintains the day's
    :class:`~repro.profiling.index.TrafficIndex` incrementally during
    ingest, and the rollover's belief propagation scores its frontier
    through the index-backed incremental scorers.  The wall-clock cost
    of the day is timed through an obs span (``worker_advance``), so
    the per-tenant ``elapsed_seconds`` in the report and the
    fleet-wide timing histogram come from the same measurement.

    ``window_shards > 1`` routes eligible DNS days through
    :func:`_ingest_day_sharded` (aggregation shards merged at the
    barrier); enterprise days and non-empty windows keep the serial
    path.
    """
    obs = metrics if metrics is not None else NULL_METRICS
    sharded = (
        window_shards > 1
        and pipeline != "enterprise"
        and detector.window.ua_history is None
        and detector.window.events_today == 0
        and len(detector.bus) == 0
    )
    with obs.span("worker_advance") as advance_span:
        with path.open() as handle:
            if pipeline == "enterprise":
                detector.submit_raw(parse_proxy_log(handle))
            elif sharded:
                _ingest_day_sharded(
                    detector, parse_dns_log(handle), window_shards
                )
            else:
                detector.submit_raw(parse_dns_log(handle))
        detector.poll()
        report = detector.rollover(
            detect=not bootstrap, intel_domains=seeds, ct_edges=ct_edges
        )
    if bootstrap:
        return None
    obs.counter("tenant_days_total", tenant=spec_id).inc()
    obs.counter("tenant_records_total", tenant=spec_id).inc(report.records)
    obs.counter("tenant_detected_total", tenant=spec_id).inc(
        len(report.detected)
    )
    return TenantDayReport(
        tenant_id=spec_id,
        day=report.day,
        source=path.name,
        records=report.records,
        rare_count=len(report.rare_domains),
        cc_domains=set(report.cc_domains),
        detected=list(report.detected),
        intel_seeded=set(report.intel_seeded),
        ct_seeded=set(report.ct_seeded),
        scores=_scored_detections(report),
        elapsed_seconds=advance_span.elapsed,
        stage_seconds=dict(report.stage_seconds),
    )


# ---------------------------------------------------------------------------
# Checkpoint chains: periodic full snapshots + per-round barrier deltas
# ---------------------------------------------------------------------------

def _tenant_checkpoint_path(checkpoint_dir: Path, tenant_id: str) -> Path:
    """Location of one tenant's full checkpoint document."""
    return checkpoint_dir / tenant_id / "checkpoint.json"


def _tenant_delta_path(checkpoint_dir: Path, tenant_id: str) -> Path:
    """Location of one tenant's barrier-delta JSONL sidecar."""
    return checkpoint_dir / tenant_id / "deltas.jsonl"


def _save_tenant_checkpoint(
    detector,
    path: Path,
    report: dict[str, Any] | None,
    rounds_done: int,
) -> None:
    """Write one tenant's full checkpoint wrapper atomically.

    A full write supersedes the tenant's delta chain, so the sidecar is
    truncated here -- keeping the invariant that every executor's
    checkpoints (the thread/process modes write fulls every round) are
    readable through :func:`load_tenant_chain`.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    save_json_atomic(
        {
            "version": FLEET_STATE_VERSION,
            "kind": "fleet-tenant",
            "round": rounds_done,
            "engine": encode_engine(detector),
            "report": report,
        },
        path,
    )
    path.with_name("deltas.jsonl").unlink(missing_ok=True)


def _load_tenant_checkpoint(path: Path) -> dict[str, Any]:
    """Read a tenant checkpoint wrapper, validating its schema."""
    wrapper = load_json(path)
    if wrapper.get("kind") != "fleet-tenant" or "engine" not in wrapper:
        raise FleetError(
            f"{path} is not a fleet tenant checkpoint "
            f"(kind={wrapper.get('kind')!r})"
        )
    return wrapper


def _checkpoint_rounds(wrapper: dict[str, Any]) -> int:
    """Rounds a tenant has completed, per its checkpoint.

    Older (pre-enterprise) checkpoints lack the explicit counter; for
    those the DNS engine's day index equals the file count consumed.
    """
    if "round" in wrapper:
        return int(wrapper["round"])
    return int(wrapper["engine"]["window"]["day"])


@dataclass
class TenantChain:
    """One tenant's on-disk checkpoint chain, parsed and validated."""

    engine: dict[str, Any]
    """Full engine snapshot payload (the chain's base)."""

    base_rounds: int
    """Rounds committed as of the full snapshot."""

    deltas: list[dict[str, Any]]
    """Barrier deltas to apply on top, in round order."""

    rounds: int
    """Rounds committed after the last delta (the tenant's cursor)."""

    report: dict[str, Any] | None
    """Last persisted day report (``None`` after a bootstrap round)."""


def load_tenant_chain(checkpoint_dir: Path, tenant_id: str) -> TenantChain:
    """Parse a tenant's checkpoint chain from disk.

    Delta lines that predate the full snapshot (a crash between the
    full rewrite and the sidecar truncation), arrive out of order, or
    are torn mid-write (a crash mid-append) are dropped -- a torn tail
    can only belong to a round the fleet never committed, because the
    checkpoint ack always precedes the fleet-state commit.
    """
    wrapper = _load_tenant_checkpoint(
        _tenant_checkpoint_path(checkpoint_dir, tenant_id)
    )
    base_rounds = _checkpoint_rounds(wrapper)
    rounds = base_rounds
    report = wrapper.get("report")
    deltas: list[dict[str, Any]] = []
    delta_path = _tenant_delta_path(checkpoint_dir, tenant_id)
    if delta_path.exists():
        for line in delta_path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break
            if int(entry.get("round", 0)) <= rounds:
                continue
            deltas.append(entry["delta"])
            rounds = int(entry["round"])
            report = entry.get("report")
    return TenantChain(
        engine=wrapper["engine"],
        base_rounds=base_rounds,
        deltas=deltas,
        rounds=rounds,
        report=report,
    )


def restore_tenant_chain(chain: TenantChain, whois=None, metrics=None):
    """Rebuild a streaming engine from its checkpoint chain."""
    detector = restore_engine(chain.engine, whois=whois, metrics=metrics)
    for delta in chain.deltas:
        apply_engine_delta(detector, delta)
    if chain.deltas:
        detector.resync()
    return detector


class TenantCheckpointStore:
    """Commits one tenant's engine to its checkpoint chain.

    Every ``full_every``-th commit (and the first) rewrites the full
    snapshot atomically and truncates the delta sidecar; the commits in
    between append one barrier-delta line each, costing O(changes)
    instead of O(history).  Re-committing an unchanged round is a
    no-op, so idle tenants (out of log files) stay cheap.
    """

    def __init__(
        self,
        detector,
        checkpoint_dir: Path,
        tenant_id: str,
        *,
        full_every: int = 16,
        since_full: int | None = None,
    ) -> None:
        self.detector = detector
        self.full_path = _tenant_checkpoint_path(checkpoint_dir, tenant_id)
        self.delta_path = _tenant_delta_path(checkpoint_dir, tenant_id)
        self.full_every = max(1, full_every)
        self.tracker = EngineDeltaTracker(detector)
        self._since_full = since_full
        self._committed_rounds: int | None = None

    def commit(self, report: dict[str, Any] | None, rounds_done: int) -> None:
        """Persist the engine's barrier state for ``rounds_done``."""
        if rounds_done == self._committed_rounds:
            return
        if self._since_full is None or self._since_full >= self.full_every:
            _save_tenant_checkpoint(
                self.detector, self.full_path, report, rounds_done
            )
            self.tracker.rebase()
            self._since_full = 0
        else:
            line = json.dumps({
                "round": rounds_done,
                "report": report,
                "delta": self.tracker.delta(),
            })
            self.delta_path.parent.mkdir(parents=True, exist_ok=True)
            with self.delta_path.open("a") as handle:
                handle.write(line + "\n")
                handle.flush()
            self._since_full += 1
        self._committed_rounds = rounds_done


# ---------------------------------------------------------------------------
# The worker process
# ---------------------------------------------------------------------------

@dataclass
class _TenantRuntime:
    """One tenant's resident state inside a worker process."""

    tenant_id: str
    pipeline: str
    detector: Any
    store: TenantCheckpointStore | None
    cursor: int = 0
    last_report: dict[str, Any] | None = None


def _build_worker_tenant(
    tenant: dict[str, Any],
    checkpoint_dir: Path | None,
    cache: WorkerIntelCache,
    *,
    resume: bool,
    full_every: int,
    metrics=None,
) -> _TenantRuntime:
    """Build (or restore from its chain) one tenant's resident engine.

    With no checkpoint directory the engine is always built fresh and
    gets no checkpoint store -- the durability-free fast path for
    ephemeral runs (benchmarks, parity checks) that never resume.
    """
    tenant_id = tenant["tenant_id"]
    whois_view = (
        cache.view(tenant_id)
        if cache.whois is not None and tenant["pipeline"] == "enterprise"
        else None
    )
    full_path = (
        _tenant_checkpoint_path(checkpoint_dir, tenant_id)
        if checkpoint_dir is not None else None
    )
    if resume and full_path is not None and full_path.exists():
        chain = load_tenant_chain(checkpoint_dir, tenant_id)
        detector = restore_tenant_chain(
            chain, whois=whois_view, metrics=metrics
        )
        cursor, last_report = chain.rounds, chain.report
        since_full: int | None = len(chain.deltas)
    elif tenant["pipeline"] == "enterprise":
        detector = StreamingEnterpriseDetector(
            load_detector(tenant["model_state"], whois=whois_view),
            metrics=metrics,
        )
        cursor, last_report, since_full = 0, None, None
    else:
        detector = StreamingDetector(
            config=(
                decode_config(tenant["config"])
                if tenant["config"] is not None else None
            ),
            internal_suffixes=tuple(tenant["internal_suffixes"]),
            server_ips=frozenset(tenant["server_ips"]),
            metrics=metrics,
        )
        cursor, last_report, since_full = 0, None, None
    store = (
        TenantCheckpointStore(
            detector,
            checkpoint_dir,
            tenant_id,
            full_every=full_every,
            since_full=since_full,
        )
        if checkpoint_dir is not None else None
    )
    return _TenantRuntime(
        tenant_id=tenant_id,
        pipeline=tenant["pipeline"],
        detector=detector,
        store=store,
        cursor=cursor,
        last_report=last_report,
    )


def worker_main(worker_id: int, commands, responses, init: dict[str, Any]):
    """Entry point of one resident fleet worker process.

    Builds (or restores) the engines of every owned tenant, answers the
    ready handshake with per-tenant cursors, then serves commands until
    ``SHUTDOWN``.  Any exception is reported as an ``error`` response
    rather than a silent death, so the manager can distinguish a
    detection failure (fatal, surfaced) from a crashed process
    (respawned).

    When ``init["metrics"]`` is set the worker owns a private
    :class:`~repro.obs.metrics.MetricsRegistry`; every ``ADVANCE_DAY``
    and ``CHECKPOINT`` response carries the registry's delta since the
    previous ship (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot_delta`)
    for the manager to fold into the fleet-wide view -- the same
    queue-borne delta pattern as the WHOIS cache accounting.
    """
    try:
        checkpoint_dir = (
            Path(init["checkpoint_dir"])
            if init["checkpoint_dir"] is not None else None
        )
        needs_whois = init["whois_path"] is not None and any(
            tenant["pipeline"] == "enterprise" for tenant in init["tenants"]
        )
        cache = WorkerIntelCache(
            load_whois_cached(init["whois_path"]) if needs_whois else None
        )
        ct_index = None
        if init.get("ct_path") is not None:
            from ..intelstore.ct import load_ct_cached

            ct_index = load_ct_cached(init["ct_path"])
        metrics = MetricsRegistry() if init.get("metrics") else NULL_METRICS
        replica = BoardReplica()
        seeds_reported = 0
        runtimes: dict[str, _TenantRuntime] = {}
        for tenant in init["tenants"]:
            runtimes[tenant["tenant_id"]] = _build_worker_tenant(
                tenant,
                checkpoint_dir,
                cache,
                resume=init["resume"],
                full_every=init["full_every"],
                metrics=metrics,
            )
        responses.put({
            "event": "ready",
            "worker": worker_id,
            "cursors": {t: rt.cursor for t, rt in runtimes.items()},
            "reports": {t: rt.last_report for t, rt in runtimes.items()},
        })
        while True:
            message = commands.get()
            cmd = message.get("cmd")
            if cmd == CMD_SHUTDOWN:
                responses.put({"event": "bye", "worker": worker_id})
                return
            if cmd == CMD_INJECT_INTEL:
                # Fire-and-forget; FIFO queue order guarantees the
                # entries land before any later ADVANCE_DAY's seeds.
                replica.apply(message["entries"])
                continue
            if cmd == CMD_ADVANCE_DAY:
                rnd = int(message["round"])
                reports = []
                for task in message["tasks"]:
                    runtime = runtimes[task["tenant_id"]]
                    seeds = (
                        frozenset() if task["bootstrap"]
                        else replica.seeds_for(runtime.tenant_id)
                    )
                    report = _advance_one_day(
                        runtime.detector,
                        runtime.tenant_id,
                        Path(task["log_path"]),
                        bootstrap=task["bootstrap"],
                        seeds=seeds,
                        pipeline=runtime.pipeline,
                        ct_edges=ct_index,
                        window_shards=init["window_shards"],
                        metrics=metrics,
                    )
                    runtime.cursor = rnd + 1
                    runtime.last_report = (
                        report.as_dict() if report is not None else None
                    )
                    reports.append({
                        "tenant_id": runtime.tenant_id,
                        "report": runtime.last_report,
                    })
                served = replica.seeds_served - seeds_reported
                seeds_reported = replica.seeds_served
                responses.put({
                    "event": "advanced",
                    "worker": worker_id,
                    "round": rnd,
                    "reports": reports,
                    "whois_stats": cache.stats_delta(),
                    "seeds_served": served,
                    "metrics": (
                        metrics.snapshot_delta().as_dict()
                        if metrics.enabled else None
                    ),
                })
                continue
            if cmd == CMD_CHECKPOINT:
                with metrics.span("worker_checkpoint"):
                    for runtime in runtimes.values():
                        if runtime.store is not None:
                            runtime.store.commit(
                                runtime.last_report, runtime.cursor
                            )
                responses.put({
                    "event": "checkpointed",
                    "worker": worker_id,
                    "round": message.get("round"),
                    "metrics": (
                        metrics.snapshot_delta().as_dict()
                        if metrics.enabled else None
                    ),
                })
                continue
            responses.put({
                "event": "error",
                "worker": worker_id,
                "error": f"unknown command {cmd!r}",
            })
    except Exception as exc:  # surfaced to the manager as a fatal error
        responses.put({
            "event": "error",
            "worker": worker_id,
            "error": f"{type(exc).__name__}: {exc}",
        })


# ---------------------------------------------------------------------------
# The manager-side pool
# ---------------------------------------------------------------------------

@dataclass
class WorkerHandle:
    """Manager-side view of one resident worker process."""

    worker_id: int
    tenant_ids: tuple[str, ...]
    process: Any
    commands: Any
    responses: Any
    synced_revision: int = 0
    """Prior-board revision this worker has been synced through."""

    cursors: dict[str, int] = field(default_factory=dict)
    """Per-tenant rounds committed on disk, per the ready handshake."""

    carried: dict[str, dict[str, Any] | None] = field(default_factory=dict)
    """Per-tenant last persisted report, per the ready handshake."""

    @property
    def pid(self) -> int | None:
        """The worker process's PID (test hooks kill through this)."""
        return self.process.pid


class ResidentPool:
    """Spawns, drives and respawns the resident workers (manager side).

    Tenants are partitioned round-robin by position (``specs[i::n]``),
    so the assignment is stable across respawns and across runs of the
    same manifest -- a respawned worker always finds its own tenants'
    checkpoint chains.
    """

    def __init__(
        self,
        specs: Sequence[TenantSpec],
        *,
        workers: int,
        checkpoint_dir: Path | None,
        whois_path: Path | None,
        config: SystemConfig | None,
        resume: bool,
        heartbeat: float = 5.0,
        full_every: int = 16,
        window_shards: int = 1,
        metrics_enabled: bool = False,
        ct_path: Path | None = None,
    ) -> None:
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.whois_path = whois_path
        self.ct_path = ct_path
        self.config = config
        self.heartbeat = heartbeat
        self.full_every = full_every
        self.window_shards = window_shards
        self.metrics_enabled = metrics_enabled
        count = max(1, min(workers, len(specs)))
        self._assignment: list[list[TenantSpec]] = [
            list(specs[i::count]) for i in range(count)
        ]
        self._ctx = mp.get_context()
        self.workers: list[WorkerHandle] = [
            self._spawn(i, resume=resume) for i in range(count)
        ]

    def specs_of(self, handle: WorkerHandle) -> list[TenantSpec]:
        """The tenant specs owned by one worker."""
        return self._assignment[handle.worker_id]

    # ------------------------------------------------------------------

    def _spawn(self, worker_id: int, *, resume: bool) -> WorkerHandle:
        """Start one worker and complete its ready handshake."""
        owned = self._assignment[worker_id]
        init = {
            "worker_id": worker_id,
            "checkpoint_dir": (
                str(self.checkpoint_dir)
                if self.checkpoint_dir is not None else None
            ),
            "whois_path": (
                str(self.whois_path) if self.whois_path is not None else None
            ),
            "ct_path": (
                str(self.ct_path) if self.ct_path is not None else None
            ),
            "resume": resume,
            "full_every": self.full_every,
            "window_shards": self.window_shards,
            "metrics": self.metrics_enabled,
            "tenants": [
                {
                    "tenant_id": spec.tenant_id,
                    "pipeline": spec.pipeline,
                    "model_state": (
                        str(spec.model_state)
                        if spec.model_state is not None else None
                    ),
                    "internal_suffixes": list(spec.internal_suffixes),
                    "server_ips": sorted(spec.server_ips),
                    "config": (
                        encode_config(self.config)
                        if self.config is not None else None
                    ),
                }
                for spec in owned
            ],
        }
        commands = self._ctx.Queue()
        responses = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, commands, responses, init),
            name=f"fleet-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        handle = WorkerHandle(
            worker_id=worker_id,
            tenant_ids=tuple(spec.tenant_id for spec in owned),
            process=process,
            commands=commands,
            responses=responses,
        )
        ready = self.recv(handle)
        handle.cursors = {
            str(t): int(c) for t, c in ready["cursors"].items()
        }
        handle.carried = dict(ready["reports"])
        return handle

    # ------------------------------------------------------------------

    def send(self, handle: WorkerHandle, message: dict[str, Any]) -> None:
        """Enqueue one command on a worker's FIFO command queue."""
        handle.commands.put(message)

    def recv(self, handle: WorkerHandle) -> dict[str, Any]:
        """Await a worker's next response, polling liveness.

        Raises :class:`WorkerDied` when the process exits without
        answering (crash -- respawnable) and :class:`FleetError` when
        the worker reports an error (fatal configuration/data problem).
        """
        while True:
            try:
                message = handle.responses.get(timeout=self.heartbeat)
            except queue.Empty:
                if not handle.process.is_alive():
                    raise WorkerDied(handle.worker_id) from None
                continue
            if message.get("event") == "error":
                raise FleetError(
                    f"worker {handle.worker_id}: {message['error']}"
                )
            return message

    def respawn(self, handle: WorkerHandle) -> WorkerHandle:
        """Replace a dead worker with a fresh process, same tenants.

        The replacement restores every owned engine from its checkpoint
        chain (``resume=True``); other workers are not disturbed.  The
        caller re-syncs the prior board (the new handle starts at
        revision 0) and decides per tenant whether the in-flight round
        must be re-run.
        """
        self._reap(handle)
        replacement = self._spawn(handle.worker_id, resume=True)
        self.workers[handle.worker_id] = replacement
        return replacement

    def _reap(self, handle: WorkerHandle) -> None:
        """Release a dead worker's process and queue resources."""
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=5)
        for q in (handle.commands, handle.responses):
            q.close()
            q.cancel_join_thread()

    def shutdown(self) -> None:
        """Stop every worker: polite ``SHUTDOWN`` first, then reap."""
        for handle in self.workers:
            if handle.process.is_alive():
                try:
                    self.send(handle, {"cmd": CMD_SHUTDOWN})
                except (OSError, ValueError):
                    pass
        for handle in self.workers:
            handle.process.join(timeout=5)
            self._reap(handle)
