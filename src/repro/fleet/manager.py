"""Fleet orchestration: one detection engine per tenant, run in step.

The :class:`FleetManager` owns one streaming engine per enterprise
tenant -- a :class:`~repro.streaming.StreamingDetector` for DNS-path
tenants, a :class:`~repro.streaming.StreamingEnterpriseDetector`
(restored from the tenant's trained ``model_state``) for
enterprise/proxy-path tenants -- and advances all of them through
their log directories in **day-barrier rounds**: round ``k`` feeds
every tenant its ``k``-th daily log file, and only when all tenants
have finished the round are their detections published to the shared
:class:`~repro.fleet.intel.IntelPlane`.  The seeds a tenant receives
for day ``k`` are therefore exactly the fleet's confirmed domains
through day ``k - 1`` -- independent of how many workers advanced the
tenants concurrently, which is what makes ``--workers 1`` and
``--workers N`` produce identical per-tenant detections (the parity
the tests enforce).  Because seeding happens at the traffic level
(rare domains become belief-propagation seed labels), it crosses
pipeline types: a DNS tenant's confirmation seeds an enterprise
tenant's proxy-path run and vice versa.

Three executors:

``thread``
    engines stay in memory; tenants of one round run on a
    ``ThreadPoolExecutor``.  Checkpointing is optional.
``process``
    tenants of one round run on a ``ProcessPoolExecutor``; engine
    state travels through the per-tenant checkpoint files (the worker
    loads the checkpoint, advances one day, writes it back), so a
    checkpoint directory is required -- real parallelism, paid for
    with per-round full-state serialization.
``resident``
    N long-lived worker processes (:mod:`repro.fleet.workers`), each
    owning a stable subset of tenants whose engines stay in worker
    memory across rounds.  The manager drives them over per-worker
    command queues (``INJECT_INTEL`` / ``ADVANCE_DAY`` /
    ``CHECKPOINT`` / ``SHUTDOWN``); only prior-board deltas, day
    reports and barrier-delta checkpoints cross the process boundary,
    so real parallelism no longer pays the full-serialization tax.  A
    dead worker's tenants respawn from their last committed checkpoint
    chain without disturbing the other workers.

Per-tenant checkpoints live at ``<dir>/<tenant>/checkpoint.json`` --
a full engine snapshot plus the day's report in one atomic document
(:func:`repro.state.save_json_atomic`) -- optionally extended by a
``deltas.jsonl`` chain of per-round barrier deltas (resident mode), so
a crash between a tenant finishing its day and the round barrier loses
nothing: on resume the embedded report is re-published at the proper
barrier.  The fleet-level document ``<dir>/fleet.json`` (intel board +
completed-round cursor) is written at each barrier.
"""

from __future__ import annotations

import tempfile
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from ..config import SystemConfig
from ..obs.logs import get_logger, log_event
from ..obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    MetricsSnapshot,
    split_sample_key,
)
from ..state import (
    decode_config,
    encode_config,
    load_detector,
    load_json,
    save_json_atomic,
)
from ..streaming import StreamingDetector, StreamingEnterpriseDetector
from .intel import IntelPlane, TenantWhoisView
from .manifest import FleetManifest, TenantSpec
from .report import FleetReport, TenantDayReport
from .workers import (
    CMD_ADVANCE_DAY,
    CMD_CHECKPOINT,
    CMD_INJECT_INTEL,
    FleetError,
    ResidentPool,
    WorkerDied,
    WorkerHandle,
    _advance_one_day,
    _save_tenant_checkpoint,
    _tenant_checkpoint_path,
    _tenant_delta_path,
    load_tenant_chain,
    load_whois_cached,
    restore_tenant_chain,
)

__all__ = ["FleetError", "FleetManager", "SECONDS_PER_DAY"]

SECONDS_PER_DAY = 86_400.0

FLEET_STATE_VERSION = 1

_LOG = get_logger("fleet")


#: Per-pool-process metrics registry (process executor only).  Pool
#: workers persist across round submissions, so tenant counters and
#: advance spans accumulate here and ship as per-task deltas in the
#: :func:`_process_worker` return value.  Engines stay uninstrumented
#: in this mode -- they are rebuilt from checkpoints every round, and
#: re-registering their collectors each rebuild would leak.
_POOL_METRICS: MetricsRegistry | None = None


def _process_worker(payload: dict[str, Any]) -> dict[str, Any] | None:
    """Advance one tenant one day inside a pool worker process.

    Engine state rides in the tenant checkpoint chain: load (or
    create), feed the day's file, write a full checkpoint back with
    the embedded report.  Everything crossing the process boundary is
    plain JSON-able data; external registries are re-loaded from their
    paths -- the WHOIS file only once per worker *process*
    (:func:`~repro.fleet.workers.load_whois_cached`), since pool
    workers persist across round submissions.
    """
    global _POOL_METRICS
    metrics = None
    if payload.get("metrics"):
        if _POOL_METRICS is None:
            _POOL_METRICS = MetricsRegistry()
        metrics = _POOL_METRICS
    checkpoint_path = Path(payload["checkpoint_path"])
    whois = (
        load_whois_cached(payload["whois_path"])
        if payload.get("whois_path") else None
    )
    if checkpoint_path.exists():
        chain = load_tenant_chain(
            checkpoint_path.parent.parent, payload["tenant_id"]
        )
        detector = restore_tenant_chain(chain, whois=whois)
        rounds_done = chain.rounds
    elif payload["pipeline"] == "enterprise":
        detector = StreamingEnterpriseDetector(
            load_detector(payload["model_state"], whois=whois)
        )
        rounds_done = 0
    else:
        detector = StreamingDetector(
            config=(
                decode_config(payload["config"])
                if payload["config"] is not None else None
            ),
            internal_suffixes=tuple(payload["internal_suffixes"]),
            server_ips=frozenset(payload["server_ips"]),
        )
        rounds_done = 0
    ct_index = None
    if payload.get("ct_path"):
        from ..intelstore.ct import load_ct_cached

        ct_index = load_ct_cached(payload["ct_path"])
    report = _advance_one_day(
        detector,
        payload["tenant_id"],
        Path(payload["log_path"]),
        bootstrap=payload["bootstrap"],
        seeds=frozenset(payload["seeds"]),
        pipeline=payload["pipeline"],
        ct_edges=ct_index,
        metrics=metrics,
    )
    report_dict = report.as_dict() if report is not None else None
    _save_tenant_checkpoint(
        detector, checkpoint_path, report_dict, rounds_done + 1
    )
    return {
        "report": report_dict,
        "metrics": (
            metrics.snapshot_delta().as_dict()
            if metrics is not None else None
        ),
    }


# ---------------------------------------------------------------------------
# The fleet
# ---------------------------------------------------------------------------

class FleetManager:
    """Drives N per-tenant engines with a shared intel plane."""

    def __init__(
        self,
        specs: Sequence[TenantSpec],
        *,
        intel: IntelPlane | None = None,
        config: SystemConfig | None = None,
        workers: int = 1,
        executor: str = "thread",
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
        whois_path: str | Path | None = None,
        heartbeat: float = 5.0,
        full_checkpoint_every: int = 16,
        window_shards: int = 1,
        metrics=None,
        intel_db: str | Path | None = None,
        intel_ttl_days: float | None = None,
        ct_path: str | Path | None = None,
    ) -> None:
        if not specs:
            raise FleetError("fleet needs at least one tenant")
        seen: set[str] = set()
        for spec in specs:
            if spec.tenant_id in seen:
                raise FleetError(f"duplicate tenant id {spec.tenant_id!r}")
            seen.add(spec.tenant_id)
        if workers < 1:
            raise FleetError("workers must be positive")
        if executor not in ("thread", "process", "resident"):
            raise FleetError(
                f"unknown executor {executor!r} "
                "(use 'thread', 'process' or 'resident')"
            )
        if resume and checkpoint_dir is None:
            raise FleetError("resume requires a checkpoint directory")
        if heartbeat <= 0:
            raise FleetError("heartbeat must be positive")
        if full_checkpoint_every < 1:
            raise FleetError("full_checkpoint_every must be positive")
        if window_shards < 1:
            raise FleetError("window_shards must be positive")
        self._transport_dir: tempfile.TemporaryDirectory | None = None
        if executor == "process" and checkpoint_dir is None:
            # Engine state travels through checkpoints in process mode;
            # without an operator-chosen directory the checkpoints are
            # pure transport, removed when run() returns.  (Resident
            # workers keep engines in memory, so without a directory
            # they simply run durability-free -- faster, but a worker
            # crash is then fatal instead of recoverable.)
            self._transport_dir = tempfile.TemporaryDirectory(
                prefix="fleet-ckpt-"
            )
            checkpoint_dir = Path(self._transport_dir.name)
        self.specs = list(specs)
        self.intel = intel if intel is not None else IntelPlane()
        self.config = config
        self.workers = workers
        self.executor = executor
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.resume = resume
        self.whois_path = Path(whois_path) if whois_path is not None else None
        self.heartbeat = heartbeat
        self.full_checkpoint_every = full_checkpoint_every
        self.window_shards = window_shards
        #: fleet-wide metrics view: the manager's own counters/spans,
        #: thread-mode engines' live instruments, and the absorbed
        #: per-round deltas resident/pool workers ship back.
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.intel.bind_metrics(self.metrics)
        #: CT SAN-pivot index shared by every tenant's rollover, or
        #: ``None`` -- detections are byte-identical without it.
        self.ct_path = Path(ct_path) if ct_path is not None else None
        self.ct_index = None
        if self.ct_path is not None:
            from ..intelstore.ct import load_ct_cached

            fold_level = (
                self.config.rarity.fold_level
                if self.config is not None else 2
            )
            self.ct_index = load_ct_cached(
                self.ct_path, fold_level=fold_level
            )
        #: durable intel store; only the manager touches it (workers
        #: keep shipping deltas over their queues).
        self.intel_store = None
        if intel_db is not None:
            from ..intelstore.store import IntelStore

            self.intel_store = IntelStore(
                intel_db,
                ttl_seconds=(
                    intel_ttl_days * SECONDS_PER_DAY
                    if intel_ttl_days is not None else None
                ),
            )
            self.intel.attach_store(self.intel_store)
            self.intel_store.bind_metrics(self.metrics)
            if self.ct_index is not None:
                # Persist the CT observations alongside the verdicts so
                # `repro-detect intel export` documents the full
                # evidence base (write-behind; lands at the first
                # barrier flush).
                for cert in self.ct_index.observations:
                    self.intel_store.put_cert(cert)
        self.engines: dict[str, Any] = {}
        #: per-worker execution stats of the last resident run
        #: (worker id -> tenants, tenant-days, records, busy seconds,
        #: respawns) -- surfaced in the fleet bench JSON.
        self.worker_stats: dict[int, dict[str, Any]] = {}
        #: the live :class:`ResidentPool` during a resident run
        #: (test/ops hook: worker handles expose pids).
        self.resident_pool: ResidentPool | None = None

    @classmethod
    def from_manifest(cls, manifest: FleetManifest, **kwargs) -> "FleetManager":
        """Build a fleet (and its intel plane) from a manifest.

        The plane is fed from the manifest's shared inputs: the VT feed
        (full coverage -- it *is* the feed) and the WHOIS registry.
        """
        if "intel" not in kwargs and (
            manifest.vt_reported is not None or manifest.whois is not None
        ):
            from ..intel.virustotal import VirusTotalOracle

            vt = (
                VirusTotalOracle(manifest.vt_reported, coverage=1.0)
                if manifest.vt_reported is not None else None
            )
            kwargs["intel"] = IntelPlane(vt=vt, whois=manifest.whois)
        kwargs.setdefault("whois_path", manifest.whois_path)
        kwargs.setdefault("ct_path", manifest.certs_path)
        return cls(manifest.tenants, **kwargs)

    # ------------------------------------------------------------------

    def _tenant_whois(self, tenant_id: str) -> TenantWhoisView | None:
        """The tenant's registry view through the shared cache."""
        if self.intel.whois is None:
            return None
        return TenantWhoisView(self.intel, tenant_id)

    def _build_engine(self, spec: TenantSpec):
        """A fresh streaming engine for one tenant, per its pipeline."""
        if spec.pipeline == "enterprise":
            return StreamingEnterpriseDetector(
                load_detector(
                    spec.model_state, whois=self._tenant_whois(spec.tenant_id)
                ),
                metrics=self.metrics,
            )
        return StreamingDetector(
            config=self.config,
            internal_suffixes=spec.internal_suffixes,
            server_ips=spec.server_ips,
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------

    def _tenant_files(self) -> dict[str, list[Path]]:
        files: dict[str, list[Path]] = {}
        for spec in self.specs:
            found = sorted(spec.directory.glob(spec.pattern))
            if len(found) <= spec.bootstrap_files:
                raise FleetError(
                    f"tenant {spec.tenant_id!r}: need more than "
                    f"{spec.bootstrap_files} files matching {spec.pattern!r} "
                    f"in {spec.directory}, found {len(found)}"
                )
            files[spec.tenant_id] = found
        return files

    @staticmethod
    def _file_index(spec: TenantSpec, files: list[Path], rnd: int) -> int | None:
        """The tenant's file position for fleet round ``rnd``.

        A tenant that joins at ``join_round`` consumes its ``k``-th
        file at round ``join_round + k``; ``None`` means the tenant is
        not active this round (not yet joined, or out of files -- i.e.
        it left the fleet).
        """
        index = rnd - spec.join_round
        if index < 0 or index >= len(files):
            return None
        return index

    def _fleet_state_path(self) -> Path:
        assert self.checkpoint_dir is not None
        return self.checkpoint_dir / "fleet.json"

    def _save_fleet_state(self, rounds: int) -> None:
        if self.checkpoint_dir is None:
            return
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        save_json_atomic(
            {
                "version": FLEET_STATE_VERSION,
                "kind": "fleet",
                "rounds": rounds,
                "intel": self.intel.encode(),
                "metrics": (
                    self.metrics.snapshot().as_dict()
                    if self.metrics.enabled else None
                ),
            },
            self._fleet_state_path(),
        )

    def _restore(
        self,
    ) -> tuple[int, dict[str, int], list[tuple[int, TenantDayReport]]]:
        """Resume state: (completed rounds, per-tenant cursor, and
        ``(round, report)`` pairs recovered from tenants that finished
        a round the fleet never committed)."""
        state_path = self._fleet_state_path()
        if not state_path.exists():
            raise FleetError(f"no fleet checkpoint at {state_path}")
        payload = load_json(state_path)
        if payload.get("kind") != "fleet":
            raise FleetError(f"{state_path} is not a fleet checkpoint")
        rounds = int(payload["rounds"])
        self.intel.restore(payload["intel"])
        saved_metrics = payload.get("metrics")
        if saved_metrics and self.metrics.enabled:
            snapshot = MetricsSnapshot.from_dict(saved_metrics)
            # The intel plane re-serves its restored CacheStats through
            # the bound collector; dropping the family here keeps the
            # resumed fleet snapshot from counting those lookups twice.
            for key in list(snapshot.counters):
                if split_sample_key(key)[0] == "intel_cache_lookups_total":
                    del snapshot.counters[key]
            self.metrics.restore(snapshot)
        cursors: dict[str, int] = {}
        carried: list[tuple[int, TenantDayReport]] = []
        for spec in self.specs:
            ckpt = _tenant_checkpoint_path(self.checkpoint_dir, spec.tenant_id)
            if not ckpt.exists():
                if spec.join_round >= rounds:
                    # The tenant had not joined the fleet by the time
                    # the interrupted run stopped: no checkpoint is
                    # expected, it starts fresh when its round comes.
                    cursors[spec.tenant_id] = 0
                    if self.executor == "thread":
                        self.engines[spec.tenant_id] = self._build_engine(spec)
                    continue
                raise FleetError(
                    f"no checkpoint for tenant {spec.tenant_id!r}: {ckpt}"
                )
            chain = load_tenant_chain(self.checkpoint_dir, spec.tenant_id)
            cursors[spec.tenant_id] = chain.rounds
            if self.executor == "thread":
                self.engines[spec.tenant_id] = restore_tenant_chain(
                    chain,
                    whois=self._tenant_whois(spec.tenant_id),
                    metrics=self.metrics,
                )
            if chain.rounds > rounds and chain.report:
                # The tenant finished a round the fleet never committed
                # (crash between task and barrier): re-publish its
                # report at the proper barrier.  Keyed by the round the
                # checkpoint recorded, not the report's engine day --
                # enterprise engines count days from their trained
                # bootstrap, so day and round differ there.
                carried.append((
                    chain.rounds - 1,
                    TenantDayReport.from_dict(chain.report),
                ))
        return rounds, cursors, carried

    def _fresh_start(self) -> dict[str, int]:
        cursors = {spec.tenant_id: 0 for spec in self.specs}
        if self.checkpoint_dir is not None and self.checkpoint_dir.is_dir():
            # A stale fleet document would make a later --resume skip
            # this run's rounds and seed from the old run's board.
            self._fleet_state_path().unlink(missing_ok=True)
        for spec in self.specs:
            if self.executor == "thread":
                self.engines[spec.tenant_id] = self._build_engine(spec)
            if self.checkpoint_dir is not None:
                # A stale checkpoint chain would shadow the fresh run.
                _tenant_checkpoint_path(
                    self.checkpoint_dir, spec.tenant_id
                ).unlink(missing_ok=True)
                _tenant_delta_path(
                    self.checkpoint_dir, spec.tenant_id
                ).unlink(missing_ok=True)
        return cursors

    # ------------------------------------------------------------------

    def _submit_tenant(
        self,
        pool: Executor,
        spec: TenantSpec,
        path: Path,
        *,
        rnd: int,
        bootstrap: bool,
        seeds: frozenset[str],
    ):
        if self.executor == "process":
            ckpt = _tenant_checkpoint_path(self.checkpoint_dir, spec.tenant_id)
            ckpt.parent.mkdir(parents=True, exist_ok=True)
            return pool.submit(_process_worker, {
                "tenant_id": spec.tenant_id,
                "checkpoint_path": str(ckpt),
                "log_path": str(path),
                "bootstrap": bootstrap,
                "seeds": sorted(seeds),
                "pipeline": spec.pipeline,
                "model_state": (
                    str(spec.model_state)
                    if spec.model_state is not None else None
                ),
                # Only enterprise engines query the registry; sparing
                # DNS workers the parse keeps large fleets cheap.
                "whois_path": (
                    str(self.whois_path)
                    if self.whois_path is not None
                    and spec.pipeline == "enterprise" else None
                ),
                "internal_suffixes": list(spec.internal_suffixes),
                "server_ips": sorted(spec.server_ips),
                "config": (
                    encode_config(self.config)
                    if self.config is not None else None
                ),
                "ct_path": (
                    str(self.ct_path) if self.ct_path is not None else None
                ),
                "metrics": self.metrics.enabled,
            })

        detector = self.engines[spec.tenant_id]

        def task() -> TenantDayReport | None:
            report = _advance_one_day(
                detector, spec.tenant_id, path,
                bootstrap=bootstrap, seeds=seeds, pipeline=spec.pipeline,
                ct_edges=self.ct_index,
                metrics=self.metrics,
            )
            if self.checkpoint_dir is not None:
                _save_tenant_checkpoint(
                    detector,
                    _tenant_checkpoint_path(
                        self.checkpoint_dir, spec.tenant_id
                    ),
                    report.as_dict() if report is not None else None,
                    rnd + 1,
                )
            return report

        return pool.submit(task)

    def run(
        self,
        *,
        max_rounds: int | None = None,
        on_round=None,
    ) -> FleetReport:
        """Advance every tenant through its directory; aggregate.

        ``max_rounds`` bounds the number of day-barrier rounds this
        call executes (the fleet returns ``interrupted=True``); with a
        checkpoint directory, a later ``resume=True`` run continues at
        the next round.  ``on_round`` is called with the list of
        :class:`TenantDayReport` after each barrier.
        """
        try:
            report = self._run(max_rounds=max_rounds, on_round=on_round)
            if self.metrics.enabled:
                report.metrics_snapshot = self.metrics.snapshot().as_dict()
            return report
        finally:
            if self.intel_store is not None:
                # Final flush + release; the accounting stays readable
                # in memory for the report, and the file is complete
                # for the next run (or `repro-detect intel`).
                self.intel_store.close()
            if self._transport_dir is not None:
                self._transport_dir.cleanup()
                self._transport_dir = None

    def _run(self, *, max_rounds, on_round) -> FleetReport:
        files = self._tenant_files()
        if self.resume:
            start_round, cursors, carried = self._restore()
        else:
            cursors = self._fresh_start()
            start_round, carried = 0, []
        total_rounds = max(
            spec.join_round + len(files[spec.tenant_id])
            for spec in self.specs
        )

        report = FleetReport(intel=self.intel)
        if self.executor == "resident":
            self._run_resident(
                report, files, cursors, carried, start_round, total_rounds,
                max_rounds=max_rounds, on_round=on_round,
            )
            return report

        rounds_executed = 0
        pool_cls = (
            ProcessPoolExecutor if self.executor == "process"
            else ThreadPoolExecutor
        )
        with pool_cls(max_workers=self.workers) as pool:
            for rnd in range(start_round, total_rounds):
                if max_rounds is not None and rounds_executed >= max_rounds:
                    report.interrupted = True
                    break
                futures: dict[str, Any] = {}
                for spec in self.specs:
                    tenant_files = files[spec.tenant_id]
                    file_index = self._file_index(spec, tenant_files, rnd)
                    if file_index is None:
                        continue
                    if cursors[spec.tenant_id] > rnd:
                        continue  # recovered past this round already
                    bootstrap = file_index < spec.bootstrap_files
                    seeds = (
                        frozenset() if bootstrap
                        else self.intel.seeds_for(spec.tenant_id)
                    )
                    futures[spec.tenant_id] = self._submit_tenant(
                        pool, spec, tenant_files[file_index],
                        rnd=rnd, bootstrap=bootstrap, seeds=seeds,
                    )

                # Barrier: collect in spec order (deterministic), then
                # publish so day rnd+1 sees all of day rnd's findings.
                round_reports: list[TenantDayReport] = []
                for spec in self.specs:
                    future = futures.get(spec.tenant_id)
                    if future is None:
                        continue
                    result = future.result()
                    cursors[spec.tenant_id] = rnd + 1
                    if isinstance(result, dict):
                        # Process-pool envelope: day report plus the
                        # worker's metrics delta since its last ship.
                        self._absorb_metrics(result)
                        result = result.get("report")
                        if result is not None:
                            result = TenantDayReport.from_dict(result)
                    if result is None:
                        continue
                    round_reports.append(result)
                round_reports.extend(
                    rep for c_rnd, rep in carried if c_rnd == rnd
                )
                self._commit_round(report, rnd, round_reports, on_round)
                rounds_executed += 1
        return report

    # ------------------------------------------------------------------
    # Round commitment (shared by every executor)
    # ------------------------------------------------------------------

    def _commit_round(
        self,
        report: FleetReport,
        rnd: int,
        round_reports: list[TenantDayReport],
        on_round,
    ) -> None:
        """Publish a finished round at the barrier and persist state."""
        for day_report in round_reports:
            self.intel.publish(
                day_report.tenant_id,
                day_report.day,
                day_report.scores.items(),
            )
            for domain in day_report.detected:
                report.vt_labels[domain] = self.intel.vt_reported(
                    day_report.tenant_id, domain
                )
                if (
                    self.intel.whois is not None
                    and domain not in report.whois_facts
                ):
                    record = self.intel.whois_lookup(
                        day_report.tenant_id, domain
                    )
                    when = (day_report.day + 1) * SECONDS_PER_DAY
                    report.whois_facts[domain] = (
                        (record.age_days(when),
                         record.validity_days(when))
                        if record is not None else None
                    )
        report.days.extend(
            sorted(round_reports, key=lambda r: r.tenant_id)
        )
        report.rounds = rnd + 1
        self.metrics.counter("fleet_rounds_total").inc()
        self.metrics.gauge("fleet_board_domains").set(len(self.intel.board))
        if self.intel_store is not None:
            # Day-barrier durability: fold the round's detections into
            # the rolling per-tenant profiles and commit the plane's
            # write-behind rows (VT/WHOIS lookups above plus any CT
            # observations) in one transaction.
            for day_report in round_reports:
                for domain, score in day_report.scores.items():
                    self.intel_store.record_profile(
                        day_report.tenant_id, domain, day_report.day, score
                    )
            self.intel.flush_store()
        self._save_fleet_state(rnd + 1)
        log_event(
            _LOG, "round_committed",
            round=rnd + 1,
            tenants=len(round_reports),
            detected=sum(len(r.detected) for r in round_reports),
            board=len(self.intel.board),
        )
        if on_round is not None:
            on_round(round_reports)

    def _absorb_metrics(self, response: dict[str, Any] | None) -> None:
        """Fold a worker response's metrics delta into the fleet view."""
        payload = (response or {}).get("metrics")
        if payload and self.metrics.enabled:
            self.metrics.absorb(MetricsSnapshot.from_dict(payload))

    # ------------------------------------------------------------------
    # Resident executor
    # ------------------------------------------------------------------

    def _run_resident(
        self,
        report: FleetReport,
        files: dict[str, list[Path]],
        cursors: dict[str, int],
        carried: list[tuple[int, TenantDayReport]],
        start_round: int,
        total_rounds: int,
        *,
        max_rounds,
        on_round,
    ) -> None:
        """Drive the rounds over long-lived resident workers.

        Per round: sync each worker's prior-board replica with the
        board delta since its last sync, send the round's
        ``ADVANCE_DAY`` tasks, collect responses (respawning any dead
        worker from its checkpoints), then hold the checkpoint barrier
        before publishing -- so the fleet-state commit never runs ahead
        of the tenants' durable state.  Without a checkpoint directory
        the barrier (and crash recovery) is skipped entirely --
        durability-free parallelism for ephemeral runs.
        """
        self.worker_stats = {}
        pool = ResidentPool(
            self.specs,
            workers=self.workers,
            checkpoint_dir=self.checkpoint_dir,
            whois_path=self.whois_path,
            config=self.config,
            resume=self.resume,
            heartbeat=self.heartbeat,
            full_every=self.full_checkpoint_every,
            window_shards=self.window_shards,
            metrics_enabled=self.metrics.enabled,
            ct_path=self.ct_path,
        )
        self.resident_pool = pool
        try:
            rounds_executed = 0
            for rnd in range(start_round, total_rounds):
                if max_rounds is not None and rounds_executed >= max_rounds:
                    report.interrupted = True
                    break
                results: dict[str, TenantDayReport] = {}
                waiting: list[WorkerHandle] = []
                for handle in list(pool.workers):
                    self._sync_board(pool, handle)
                    tasks = self._resident_tasks(pool, handle, files,
                                                 cursors, rnd)
                    if tasks:
                        pool.send(handle, {
                            "cmd": CMD_ADVANCE_DAY,
                            "round": rnd,
                            "tasks": tasks,
                        })
                        self.metrics.counter(
                            "fleet_commands_total", cmd="advance_day"
                        ).inc()
                        waiting.append(handle)
                advanced: list[WorkerHandle] = []
                for handle in waiting:
                    try:
                        response = pool.recv(handle)
                    except WorkerDied:
                        handle, response = self._recover_worker(
                            pool, handle, files, cursors, rnd, results
                        )
                    self._absorb_advance(handle, response, cursors,
                                         results, rnd)
                    advanced.append(handle)

                if self.checkpoint_dir is not None:
                    # Checkpoint barrier: every advanced worker commits
                    # its tenants' chains before the fleet state moves
                    # on.
                    for handle in advanced:
                        pool.send(handle, {
                            "cmd": CMD_CHECKPOINT, "round": rnd + 1,
                        })
                        self.metrics.counter(
                            "fleet_commands_total", cmd="checkpoint"
                        ).inc()
                    for handle in advanced:
                        try:
                            self._absorb_metrics(pool.recv(handle))
                        except WorkerDied:
                            self._recover_worker(
                                pool, handle, files, cursors, rnd, results
                            )

                round_reports = [
                    results[spec.tenant_id]
                    for spec in self.specs
                    if spec.tenant_id in results
                ]
                round_reports.extend(
                    rep for c_rnd, rep in carried if c_rnd == rnd
                )
                self._commit_round(report, rnd, round_reports, on_round)
                rounds_executed += 1
        finally:
            pool.shutdown()

    def _sync_board(self, pool: ResidentPool, handle: WorkerHandle) -> None:
        """Ship the prior-board delta since the worker's last sync."""
        revision, entries = self.intel.board_delta(handle.synced_revision)
        if entries:
            pool.send(handle, {"cmd": CMD_INJECT_INTEL, "entries": entries})
            self.metrics.counter(
                "fleet_commands_total", cmd="inject_intel"
            ).inc()
        handle.synced_revision = revision

    def _resident_tasks(
        self,
        pool: ResidentPool,
        handle: WorkerHandle,
        files: dict[str, list[Path]],
        cursors: dict[str, int],
        rnd: int,
    ) -> list[dict[str, Any]]:
        """The round's ``ADVANCE_DAY`` task list for one worker."""
        tasks: list[dict[str, Any]] = []
        for spec in pool.specs_of(handle):
            tenant_files = files[spec.tenant_id]
            file_index = self._file_index(spec, tenant_files, rnd)
            if file_index is None:
                continue
            if cursors[spec.tenant_id] > rnd:
                continue  # recovered past this round already
            tasks.append({
                "tenant_id": spec.tenant_id,
                "log_path": str(tenant_files[file_index]),
                "bootstrap": file_index < spec.bootstrap_files,
            })
        return tasks

    def _absorb_advance(
        self,
        handle: WorkerHandle,
        response: dict[str, Any] | None,
        cursors: dict[str, int],
        results: dict[str, TenantDayReport],
        rnd: int,
    ) -> None:
        """Fold one worker's ``ADVANCE_DAY`` response into round state."""
        if response is None:
            return
        self._absorb_metrics(response)
        stats = self.worker_stats.setdefault(handle.worker_id, {
            "tenants": sorted(handle.tenant_ids),
            "tenant_days": 0,
            "records": 0,
            "elapsed_seconds": 0.0,
            "respawns": 0,
        })
        for item in response["reports"]:
            cursors[item["tenant_id"]] = rnd + 1
            if item["report"] is not None:
                day_report = TenantDayReport.from_dict(item["report"])
                results[item["tenant_id"]] = day_report
                stats["tenant_days"] += 1
                stats["records"] += day_report.records
                stats["elapsed_seconds"] += day_report.elapsed_seconds
        if response.get("whois_stats"):
            self.intel.whois_cache.stats.absorb(response["whois_stats"])
        self.intel.seeds_served += int(response.get("seeds_served", 0))

    def _recover_worker(
        self,
        pool: ResidentPool,
        handle: WorkerHandle,
        files: dict[str, list[Path]],
        cursors: dict[str, int],
        rnd: int,
        results: dict[str, TenantDayReport],
    ) -> tuple[WorkerHandle, dict[str, Any] | None]:
        """Respawn a dead worker and bring it back to this round's barrier.

        The replacement restores each owned tenant from its checkpoint
        chain; per tenant, either the crashed round was already
        committed (adopt the chain's embedded report) or it is re-run
        -- deterministic, because the board the worker re-seeds from is
        exactly the one every tenant saw this round (publication only
        happens after the barrier).  Ends with a checkpoint ack so the
        fleet state never outruns the respawned tenants' durable state.
        """
        if self.checkpoint_dir is None:
            raise FleetError(
                f"resident worker {handle.worker_id} died and no "
                "checkpoint directory is configured; run with "
                "--checkpoint-dir to make worker crashes recoverable"
            )
        handle = pool.respawn(handle)
        self.metrics.counter("fleet_worker_respawns_total").inc()
        self._sync_board(pool, handle)
        stats = self.worker_stats.setdefault(handle.worker_id, {
            "tenants": sorted(handle.tenant_ids),
            "tenant_days": 0,
            "records": 0,
            "elapsed_seconds": 0.0,
            "respawns": 0,
        })
        stats["respawns"] += 1
        tasks: list[dict[str, Any]] = []
        for spec in pool.specs_of(handle):
            tenant_id = spec.tenant_id
            file_index = self._file_index(spec, files[tenant_id], rnd)
            if file_index is None:
                continue
            disk = handle.cursors.get(tenant_id, 0)
            if disk > rnd:
                # Committed before the crash; adopt the persisted report.
                cursors[tenant_id] = disk
                persisted = handle.carried.get(tenant_id)
                if persisted is not None:
                    results[tenant_id] = TenantDayReport.from_dict(persisted)
            else:
                if disk < rnd and disk < spec.join_round:
                    # A joiner's first round: no chain exists yet, the
                    # respawned worker built it fresh -- nothing to
                    # catch up.
                    disk = spec.join_round
                if disk < rnd:
                    raise FleetError(
                        f"tenant {tenant_id!r} checkpoint at round {disk} "
                        f"cannot recover round {rnd}"
                    )
                tasks.append({
                    "tenant_id": tenant_id,
                    "log_path": str(files[tenant_id][file_index]),
                    "bootstrap": file_index < spec.bootstrap_files,
                })
        response: dict[str, Any] | None = None
        if tasks:
            pool.send(handle, {
                "cmd": CMD_ADVANCE_DAY, "round": rnd, "tasks": tasks,
            })
            response = pool.recv(handle)
        pool.send(handle, {"cmd": CMD_CHECKPOINT, "round": rnd + 1})
        self._absorb_metrics(pool.recv(handle))
        return handle, response
