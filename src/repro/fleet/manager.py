"""Fleet orchestration: one detection engine per tenant, run in step.

The :class:`FleetManager` owns one
:class:`~repro.streaming.StreamingDetector` per enterprise tenant and
advances all of them through their log directories in **day-barrier
rounds**: round ``k`` feeds every tenant its ``k``-th daily log file,
and only when all tenants have finished the round are their detections
published to the shared :class:`~repro.fleet.intel.IntelPlane`.  The
seeds a tenant receives for day ``k`` are therefore exactly the fleet's
confirmed domains through day ``k - 1`` -- independent of how many
workers advanced the tenants concurrently, which is what makes
``--workers 1`` and ``--workers N`` produce identical per-tenant
detections (the parity the tests enforce).

Two executors:

``thread``
    engines stay in memory; tenants of one round run on a
    ``ThreadPoolExecutor``.  Checkpointing is optional.
``process``
    tenants of one round run on a ``ProcessPoolExecutor``; engine
    state travels through the per-tenant checkpoint files (the worker
    loads the checkpoint, advances one day, writes it back), so a
    checkpoint directory is required -- real parallelism, paid for
    with serialization.

Per-tenant checkpoints live at ``<dir>/<tenant>/checkpoint.json`` and
wrap the engine snapshot *and* the day's report in one atomic document
(:func:`repro.state.save_json_atomic`), so a crash between a tenant
finishing its day and the round barrier loses nothing: on resume the
embedded report is re-published at the proper barrier.  The fleet-level
document ``<dir>/fleet.json`` (intel board + completed-round cursor)
is written at each barrier.
"""

from __future__ import annotations

import tempfile
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from collections.abc import Sequence, Set
from pathlib import Path
from typing import Any

from ..config import SystemConfig
from ..logs.dns import parse_dns_log
from ..state import (
    decode_config,
    encode_config,
    load_json,
    restore_streaming,
    save_json_atomic,
    streaming_state,
)
from ..streaming import StreamingDetector, StreamDayReport
from .intel import IntelPlane
from .manifest import FleetManifest, TenantSpec
from .report import FleetReport, TenantDayReport

FLEET_STATE_VERSION = 1


class FleetError(RuntimeError):
    """Raised on fleet configuration or checkpoint problems."""


# ---------------------------------------------------------------------------
# One tenant, one day (shared by both executors)
# ---------------------------------------------------------------------------

def _advance_one_day(
    detector: StreamingDetector,
    spec_id: str,
    path: Path,
    *,
    bootstrap: bool,
    seeds: Set[str],
) -> TenantDayReport | None:
    """Feed one log file through a tenant's engine; close the day."""
    with path.open() as handle:
        detector.submit_raw(parse_dns_log(handle))
    detector.poll()
    report = detector.rollover(detect=not bootstrap, intel_domains=seeds)
    if bootstrap:
        return None
    return TenantDayReport(
        tenant_id=spec_id,
        day=report.day,
        source=path.name,
        records=report.records,
        rare_count=len(report.rare_domains),
        cc_domains=set(report.cc_domains),
        detected=list(report.detected),
        intel_seeded=set(report.intel_seeded),
        scores=_scored_detections(report),
    )


def _scored_detections(report: StreamDayReport) -> dict[str, float]:
    """Publication scores: seed/C&C labels count as confirmed (1.0),
    similarity labels keep their labeling score."""
    scores: dict[str, float] = {}
    if report.bp_result is not None:
        for detection in report.bp_result.detections:
            if detection.reason in ("seed", "cc"):
                scores[detection.domain] = 1.0
            else:
                scores[detection.domain] = detection.score
    for domain in report.detected:
        scores.setdefault(domain, 1.0)
    return scores


def _tenant_checkpoint_path(checkpoint_dir: Path, tenant_id: str) -> Path:
    return checkpoint_dir / tenant_id / "checkpoint.json"


def _save_tenant_checkpoint(
    detector: StreamingDetector,
    path: Path,
    report: TenantDayReport | None,
) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    save_json_atomic(
        {
            "version": FLEET_STATE_VERSION,
            "kind": "fleet-tenant",
            "engine": streaming_state(detector),
            "report": report.as_dict() if report is not None else None,
        },
        path,
    )


def _load_tenant_checkpoint(path: Path) -> dict[str, Any]:
    """Read a tenant checkpoint wrapper, validating its schema."""
    wrapper = load_json(path)
    if wrapper.get("kind") != "fleet-tenant" or "engine" not in wrapper:
        raise FleetError(
            f"{path} is not a fleet tenant checkpoint "
            f"(kind={wrapper.get('kind')!r})"
        )
    return wrapper


def _process_worker(payload: dict[str, Any]) -> dict[str, Any] | None:
    """Advance one tenant one day inside a worker process.

    Engine state rides in the tenant checkpoint: load (or create), feed
    the day's file, write the checkpoint back with the embedded report.
    Everything crossing the process boundary is plain JSON-able data.
    """
    checkpoint_path = Path(payload["checkpoint_path"])
    if checkpoint_path.exists():
        wrapper = _load_tenant_checkpoint(checkpoint_path)
        detector = restore_streaming(wrapper["engine"])
    else:
        detector = StreamingDetector(
            config=(
                decode_config(payload["config"])
                if payload["config"] is not None else None
            ),
            internal_suffixes=tuple(payload["internal_suffixes"]),
            server_ips=frozenset(payload["server_ips"]),
        )
    report = _advance_one_day(
        detector,
        payload["tenant_id"],
        Path(payload["log_path"]),
        bootstrap=payload["bootstrap"],
        seeds=frozenset(payload["seeds"]),
    )
    _save_tenant_checkpoint(detector, checkpoint_path, report)
    return report.as_dict() if report is not None else None


# ---------------------------------------------------------------------------
# The fleet
# ---------------------------------------------------------------------------

class FleetManager:
    """Drives N per-tenant engines with a shared intel plane."""

    def __init__(
        self,
        specs: Sequence[TenantSpec],
        *,
        intel: IntelPlane | None = None,
        config: SystemConfig | None = None,
        workers: int = 1,
        executor: str = "thread",
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
    ) -> None:
        if not specs:
            raise FleetError("fleet needs at least one tenant")
        seen: set[str] = set()
        for spec in specs:
            if spec.tenant_id in seen:
                raise FleetError(f"duplicate tenant id {spec.tenant_id!r}")
            seen.add(spec.tenant_id)
        if workers < 1:
            raise FleetError("workers must be positive")
        if executor not in ("thread", "process"):
            raise FleetError(
                f"unknown executor {executor!r} (use 'thread' or 'process')"
            )
        if resume and checkpoint_dir is None:
            raise FleetError("resume requires a checkpoint directory")
        self._transport_dir: tempfile.TemporaryDirectory | None = None
        if executor == "process" and checkpoint_dir is None:
            # Engine state travels through checkpoints in process mode;
            # without an operator-chosen directory the checkpoints are
            # pure transport, removed when run() returns.
            self._transport_dir = tempfile.TemporaryDirectory(
                prefix="fleet-ckpt-"
            )
            checkpoint_dir = Path(self._transport_dir.name)
        self.specs = list(specs)
        self.intel = intel if intel is not None else IntelPlane()
        self.config = config
        self.workers = workers
        self.executor = executor
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.resume = resume
        self.engines: dict[str, StreamingDetector] = {}

    @classmethod
    def from_manifest(cls, manifest: FleetManifest, **kwargs) -> "FleetManager":
        """Build a fleet (and its VT-fed intel plane) from a manifest."""
        if "intel" not in kwargs and manifest.vt_reported is not None:
            from ..intel.virustotal import VirusTotalOracle

            kwargs["intel"] = IntelPlane(
                vt=VirusTotalOracle(manifest.vt_reported, coverage=1.0)
            )
        return cls(manifest.tenants, **kwargs)

    # ------------------------------------------------------------------

    def _tenant_files(self) -> dict[str, list[Path]]:
        files: dict[str, list[Path]] = {}
        for spec in self.specs:
            found = sorted(spec.directory.glob(spec.pattern))
            if len(found) <= spec.bootstrap_files:
                raise FleetError(
                    f"tenant {spec.tenant_id!r}: need more than "
                    f"{spec.bootstrap_files} files matching {spec.pattern!r} "
                    f"in {spec.directory}, found {len(found)}"
                )
            files[spec.tenant_id] = found
        return files

    def _fleet_state_path(self) -> Path:
        assert self.checkpoint_dir is not None
        return self.checkpoint_dir / "fleet.json"

    def _save_fleet_state(self, rounds: int) -> None:
        if self.checkpoint_dir is None:
            return
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        save_json_atomic(
            {
                "version": FLEET_STATE_VERSION,
                "kind": "fleet",
                "rounds": rounds,
                "intel": self.intel.encode(),
            },
            self._fleet_state_path(),
        )

    def _restore(self) -> tuple[int, dict[str, int], list[TenantDayReport]]:
        """Resume state: (completed rounds, per-tenant cursor, reports
        recovered from tenants that finished a round the fleet never
        committed)."""
        state_path = self._fleet_state_path()
        if not state_path.exists():
            raise FleetError(f"no fleet checkpoint at {state_path}")
        payload = load_json(state_path)
        if payload.get("kind") != "fleet":
            raise FleetError(f"{state_path} is not a fleet checkpoint")
        rounds = int(payload["rounds"])
        self.intel.restore(payload["intel"])
        cursors: dict[str, int] = {}
        carried: list[TenantDayReport] = []
        for spec in self.specs:
            ckpt = _tenant_checkpoint_path(self.checkpoint_dir, spec.tenant_id)
            if not ckpt.exists():
                raise FleetError(
                    f"no checkpoint for tenant {spec.tenant_id!r}: {ckpt}"
                )
            wrapper = _load_tenant_checkpoint(ckpt)
            cursors[spec.tenant_id] = int(wrapper["engine"]["window"]["day"])
            if self.executor == "thread":
                self.engines[spec.tenant_id] = restore_streaming(
                    wrapper["engine"]
                )
            if cursors[spec.tenant_id] > rounds and wrapper["report"]:
                # The tenant finished a round the fleet never committed
                # (crash between task and barrier): re-publish its
                # report at the proper barrier.
                carried.append(TenantDayReport.from_dict(wrapper["report"]))
        return rounds, cursors, carried

    def _fresh_start(self) -> dict[str, int]:
        cursors = {spec.tenant_id: 0 for spec in self.specs}
        if self.checkpoint_dir is not None and self.checkpoint_dir.is_dir():
            # A stale fleet document would make a later --resume skip
            # this run's rounds and seed from the old run's board.
            self._fleet_state_path().unlink(missing_ok=True)
        for spec in self.specs:
            if self.executor == "thread":
                self.engines[spec.tenant_id] = StreamingDetector(
                    config=self.config,
                    internal_suffixes=spec.internal_suffixes,
                    server_ips=spec.server_ips,
                )
            if self.checkpoint_dir is not None:
                # A stale checkpoint would shadow the fresh run.
                ckpt = _tenant_checkpoint_path(
                    self.checkpoint_dir, spec.tenant_id
                )
                ckpt.unlink(missing_ok=True)
        return cursors

    # ------------------------------------------------------------------

    def _submit_tenant(
        self,
        pool: Executor,
        spec: TenantSpec,
        path: Path,
        *,
        bootstrap: bool,
        seeds: frozenset[str],
    ):
        if self.executor == "process":
            ckpt = _tenant_checkpoint_path(self.checkpoint_dir, spec.tenant_id)
            ckpt.parent.mkdir(parents=True, exist_ok=True)
            return pool.submit(_process_worker, {
                "tenant_id": spec.tenant_id,
                "checkpoint_path": str(ckpt),
                "log_path": str(path),
                "bootstrap": bootstrap,
                "seeds": sorted(seeds),
                "internal_suffixes": list(spec.internal_suffixes),
                "server_ips": sorted(spec.server_ips),
                "config": (
                    encode_config(self.config)
                    if self.config is not None else None
                ),
            })

        detector = self.engines[spec.tenant_id]

        def task() -> TenantDayReport | None:
            report = _advance_one_day(
                detector, spec.tenant_id, path,
                bootstrap=bootstrap, seeds=seeds,
            )
            if self.checkpoint_dir is not None:
                _save_tenant_checkpoint(
                    detector,
                    _tenant_checkpoint_path(
                        self.checkpoint_dir, spec.tenant_id
                    ),
                    report,
                )
            return report

        return pool.submit(task)

    def run(
        self,
        *,
        max_rounds: int | None = None,
        on_round=None,
    ) -> FleetReport:
        """Advance every tenant through its directory; aggregate.

        ``max_rounds`` bounds the number of day-barrier rounds this
        call executes (the fleet returns ``interrupted=True``); with a
        checkpoint directory, a later ``resume=True`` run continues at
        the next round.  ``on_round`` is called with the list of
        :class:`TenantDayReport` after each barrier.
        """
        try:
            return self._run(max_rounds=max_rounds, on_round=on_round)
        finally:
            if self._transport_dir is not None:
                self._transport_dir.cleanup()
                self._transport_dir = None

    def _run(self, *, max_rounds, on_round) -> FleetReport:
        files = self._tenant_files()
        if self.resume:
            start_round, cursors, carried = self._restore()
        else:
            cursors = self._fresh_start()
            start_round, carried = 0, []
        total_rounds = max(len(f) for f in files.values())

        report = FleetReport(intel=self.intel)
        rounds_executed = 0
        pool_cls = (
            ProcessPoolExecutor if self.executor == "process"
            else ThreadPoolExecutor
        )
        with pool_cls(max_workers=self.workers) as pool:
            for rnd in range(start_round, total_rounds):
                if max_rounds is not None and rounds_executed >= max_rounds:
                    report.interrupted = True
                    break
                futures: dict[str, Any] = {}
                for spec in self.specs:
                    tenant_files = files[spec.tenant_id]
                    if rnd >= len(tenant_files):
                        continue
                    if cursors[spec.tenant_id] > rnd:
                        continue  # recovered past this round already
                    bootstrap = rnd < spec.bootstrap_files
                    seeds = (
                        frozenset() if bootstrap
                        else self.intel.seeds_for(spec.tenant_id)
                    )
                    futures[spec.tenant_id] = self._submit_tenant(
                        pool, spec, tenant_files[rnd],
                        bootstrap=bootstrap, seeds=seeds,
                    )

                # Barrier: collect in spec order (deterministic), then
                # publish so day rnd+1 sees all of day rnd's findings.
                round_reports: list[TenantDayReport] = []
                for spec in self.specs:
                    future = futures.get(spec.tenant_id)
                    if future is None:
                        continue
                    result = future.result()
                    cursors[spec.tenant_id] = rnd + 1
                    if result is None:
                        continue
                    if isinstance(result, dict):
                        result = TenantDayReport.from_dict(result)
                    round_reports.append(result)
                round_reports.extend(c for c in carried if c.day == rnd)

                for day_report in round_reports:
                    self.intel.publish(
                        day_report.tenant_id,
                        day_report.day,
                        day_report.scores.items(),
                    )
                    for domain in day_report.detected:
                        report.vt_labels[domain] = self.intel.vt_reported(
                            day_report.tenant_id, domain
                        )
                report.days.extend(
                    sorted(round_reports, key=lambda r: r.tenant_id)
                )
                rounds_executed += 1
                report.rounds = rnd + 1
                self._save_fleet_state(rnd + 1)
                if on_round is not None:
                    on_round(round_reports)
        return report
