"""Fleet orchestration: one detection engine per tenant, run in step.

The :class:`FleetManager` owns one streaming engine per enterprise
tenant -- a :class:`~repro.streaming.StreamingDetector` for DNS-path
tenants, a :class:`~repro.streaming.StreamingEnterpriseDetector`
(restored from the tenant's trained ``model_state``) for
enterprise/proxy-path tenants -- and advances all of them through
their log directories in **day-barrier rounds**: round ``k`` feeds
every tenant its ``k``-th daily log file, and only when all tenants
have finished the round are their detections published to the shared
:class:`~repro.fleet.intel.IntelPlane`.  The seeds a tenant receives
for day ``k`` are therefore exactly the fleet's confirmed domains
through day ``k - 1`` -- independent of how many workers advanced the
tenants concurrently, which is what makes ``--workers 1`` and
``--workers N`` produce identical per-tenant detections (the parity
the tests enforce).  Because seeding happens at the traffic level
(rare domains become belief-propagation seed labels), it crosses
pipeline types: a DNS tenant's confirmation seeds an enterprise
tenant's proxy-path run and vice versa.

Two executors:

``thread``
    engines stay in memory; tenants of one round run on a
    ``ThreadPoolExecutor``.  Checkpointing is optional.
``process``
    tenants of one round run on a ``ProcessPoolExecutor``; engine
    state travels through the per-tenant checkpoint files (the worker
    loads the checkpoint, advances one day, writes it back), so a
    checkpoint directory is required -- real parallelism, paid for
    with serialization.

Per-tenant checkpoints live at ``<dir>/<tenant>/checkpoint.json`` and
wrap the engine snapshot *and* the day's report in one atomic document
(:func:`repro.state.save_json_atomic`), so a crash between a tenant
finishing its day and the round barrier loses nothing: on resume the
embedded report is re-published at the proper barrier.  The fleet-level
document ``<dir>/fleet.json`` (intel board + completed-round cursor)
is written at each barrier.
"""

from __future__ import annotations

import tempfile
import time
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from collections.abc import Sequence, Set
from pathlib import Path
from typing import Any

from ..config import SystemConfig
from ..intel.whois_db import WhoisDatabase, load_whois_file
from ..logs.dns import parse_dns_log
from ..logs.proxy import parse_proxy_log
from ..state import (
    decode_config,
    encode_config,
    encode_engine,
    load_detector,
    load_json,
    restore_engine,
    save_json_atomic,
)
from ..streaming import (
    StreamDayReport,
    StreamingDetector,
    StreamingEnterpriseDetector,
)
from .intel import IntelPlane, TenantWhoisView
from .manifest import FleetManifest, TenantSpec
from .report import FleetReport, TenantDayReport

SECONDS_PER_DAY = 86_400.0

FLEET_STATE_VERSION = 1


class FleetError(RuntimeError):
    """Raised on fleet configuration or checkpoint problems."""


# ---------------------------------------------------------------------------
# One tenant, one day (shared by both executors)
# ---------------------------------------------------------------------------

def _advance_one_day(
    detector,
    spec_id: str,
    path: Path,
    *,
    bootstrap: bool,
    seeds: Set[str],
    pipeline: str = "dns",
) -> TenantDayReport | None:
    """Feed one log file through a tenant's engine; close the day.

    This is every fleet round's inner loop, so its cost rides on the
    scoring hot path: the engine's window maintains the day's
    :class:`~repro.profiling.index.TrafficIndex` incrementally during
    ingest, and the rollover's belief propagation scores its frontier
    through the index-backed incremental scorers.  The wall-clock cost
    of the day is reported per tenant for throughput tracking.
    """
    started = time.perf_counter()
    with path.open() as handle:
        if pipeline == "enterprise":
            detector.submit_raw(parse_proxy_log(handle))
        else:
            detector.submit_raw(parse_dns_log(handle))
    detector.poll()
    report = detector.rollover(detect=not bootstrap, intel_domains=seeds)
    if bootstrap:
        return None
    return TenantDayReport(
        tenant_id=spec_id,
        day=report.day,
        source=path.name,
        records=report.records,
        rare_count=len(report.rare_domains),
        cc_domains=set(report.cc_domains),
        detected=list(report.detected),
        intel_seeded=set(report.intel_seeded),
        scores=_scored_detections(report),
        elapsed_seconds=time.perf_counter() - started,
    )


def _scored_detections(report: StreamDayReport) -> dict[str, float]:
    """Publication scores: seed/C&C labels count as confirmed (1.0),
    similarity labels keep their labeling score."""
    scores: dict[str, float] = {}
    if report.bp_result is not None:
        for detection in report.bp_result.detections:
            if detection.reason in ("seed", "cc"):
                scores[detection.domain] = 1.0
            else:
                scores[detection.domain] = detection.score
    for domain in report.detected:
        scores.setdefault(domain, 1.0)
    return scores


def _tenant_checkpoint_path(checkpoint_dir: Path, tenant_id: str) -> Path:
    return checkpoint_dir / tenant_id / "checkpoint.json"


def _save_tenant_checkpoint(
    detector,
    path: Path,
    report: TenantDayReport | None,
    rounds_done: int,
) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    save_json_atomic(
        {
            "version": FLEET_STATE_VERSION,
            "kind": "fleet-tenant",
            "round": rounds_done,
            "engine": encode_engine(detector),
            "report": report.as_dict() if report is not None else None,
        },
        path,
    )


def _load_tenant_checkpoint(path: Path) -> dict[str, Any]:
    """Read a tenant checkpoint wrapper, validating its schema."""
    wrapper = load_json(path)
    if wrapper.get("kind") != "fleet-tenant" or "engine" not in wrapper:
        raise FleetError(
            f"{path} is not a fleet tenant checkpoint "
            f"(kind={wrapper.get('kind')!r})"
        )
    return wrapper


def _checkpoint_rounds(wrapper: dict[str, Any]) -> int:
    """Rounds a tenant has completed, per its checkpoint.

    Older (pre-enterprise) checkpoints lack the explicit counter; for
    those the DNS engine's day index equals the file count consumed.
    """
    if "round" in wrapper:
        return int(wrapper["round"])
    return int(wrapper["engine"]["window"]["day"])


def _process_worker(payload: dict[str, Any]) -> dict[str, Any] | None:
    """Advance one tenant one day inside a worker process.

    Engine state rides in the tenant checkpoint: load (or create), feed
    the day's file, write the checkpoint back with the embedded report.
    Everything crossing the process boundary is plain JSON-able data;
    external registries (the WHOIS file, the trained model) are
    re-loaded from their paths.
    """
    checkpoint_path = Path(payload["checkpoint_path"])
    whois: WhoisDatabase | None = None
    if payload.get("whois_path"):
        whois = load_whois_file(payload["whois_path"])
    if checkpoint_path.exists():
        wrapper = _load_tenant_checkpoint(checkpoint_path)
        detector = restore_engine(wrapper["engine"], whois=whois)
        rounds_done = _checkpoint_rounds(wrapper)
    elif payload["pipeline"] == "enterprise":
        detector = StreamingEnterpriseDetector(
            load_detector(payload["model_state"], whois=whois)
        )
        rounds_done = 0
    else:
        detector = StreamingDetector(
            config=(
                decode_config(payload["config"])
                if payload["config"] is not None else None
            ),
            internal_suffixes=tuple(payload["internal_suffixes"]),
            server_ips=frozenset(payload["server_ips"]),
        )
        rounds_done = 0
    report = _advance_one_day(
        detector,
        payload["tenant_id"],
        Path(payload["log_path"]),
        bootstrap=payload["bootstrap"],
        seeds=frozenset(payload["seeds"]),
        pipeline=payload["pipeline"],
    )
    _save_tenant_checkpoint(detector, checkpoint_path, report, rounds_done + 1)
    return report.as_dict() if report is not None else None


# ---------------------------------------------------------------------------
# The fleet
# ---------------------------------------------------------------------------

class FleetManager:
    """Drives N per-tenant engines with a shared intel plane."""

    def __init__(
        self,
        specs: Sequence[TenantSpec],
        *,
        intel: IntelPlane | None = None,
        config: SystemConfig | None = None,
        workers: int = 1,
        executor: str = "thread",
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
        whois_path: str | Path | None = None,
    ) -> None:
        if not specs:
            raise FleetError("fleet needs at least one tenant")
        seen: set[str] = set()
        for spec in specs:
            if spec.tenant_id in seen:
                raise FleetError(f"duplicate tenant id {spec.tenant_id!r}")
            seen.add(spec.tenant_id)
        if workers < 1:
            raise FleetError("workers must be positive")
        if executor not in ("thread", "process"):
            raise FleetError(
                f"unknown executor {executor!r} (use 'thread' or 'process')"
            )
        if resume and checkpoint_dir is None:
            raise FleetError("resume requires a checkpoint directory")
        self._transport_dir: tempfile.TemporaryDirectory | None = None
        if executor == "process" and checkpoint_dir is None:
            # Engine state travels through checkpoints in process mode;
            # without an operator-chosen directory the checkpoints are
            # pure transport, removed when run() returns.
            self._transport_dir = tempfile.TemporaryDirectory(
                prefix="fleet-ckpt-"
            )
            checkpoint_dir = Path(self._transport_dir.name)
        self.specs = list(specs)
        self.intel = intel if intel is not None else IntelPlane()
        self.config = config
        self.workers = workers
        self.executor = executor
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.resume = resume
        self.whois_path = Path(whois_path) if whois_path is not None else None
        self.engines: dict[str, Any] = {}

    @classmethod
    def from_manifest(cls, manifest: FleetManifest, **kwargs) -> "FleetManager":
        """Build a fleet (and its intel plane) from a manifest.

        The plane is fed from the manifest's shared inputs: the VT feed
        (full coverage -- it *is* the feed) and the WHOIS registry.
        """
        if "intel" not in kwargs and (
            manifest.vt_reported is not None or manifest.whois is not None
        ):
            from ..intel.virustotal import VirusTotalOracle

            vt = (
                VirusTotalOracle(manifest.vt_reported, coverage=1.0)
                if manifest.vt_reported is not None else None
            )
            kwargs["intel"] = IntelPlane(vt=vt, whois=manifest.whois)
        kwargs.setdefault("whois_path", manifest.whois_path)
        return cls(manifest.tenants, **kwargs)

    # ------------------------------------------------------------------

    def _tenant_whois(self, tenant_id: str) -> TenantWhoisView | None:
        """The tenant's registry view through the shared cache."""
        if self.intel.whois is None:
            return None
        return TenantWhoisView(self.intel, tenant_id)

    def _build_engine(self, spec: TenantSpec):
        """A fresh streaming engine for one tenant, per its pipeline."""
        if spec.pipeline == "enterprise":
            return StreamingEnterpriseDetector(
                load_detector(
                    spec.model_state, whois=self._tenant_whois(spec.tenant_id)
                )
            )
        return StreamingDetector(
            config=self.config,
            internal_suffixes=spec.internal_suffixes,
            server_ips=spec.server_ips,
        )

    # ------------------------------------------------------------------

    def _tenant_files(self) -> dict[str, list[Path]]:
        files: dict[str, list[Path]] = {}
        for spec in self.specs:
            found = sorted(spec.directory.glob(spec.pattern))
            if len(found) <= spec.bootstrap_files:
                raise FleetError(
                    f"tenant {spec.tenant_id!r}: need more than "
                    f"{spec.bootstrap_files} files matching {spec.pattern!r} "
                    f"in {spec.directory}, found {len(found)}"
                )
            files[spec.tenant_id] = found
        return files

    def _fleet_state_path(self) -> Path:
        assert self.checkpoint_dir is not None
        return self.checkpoint_dir / "fleet.json"

    def _save_fleet_state(self, rounds: int) -> None:
        if self.checkpoint_dir is None:
            return
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        save_json_atomic(
            {
                "version": FLEET_STATE_VERSION,
                "kind": "fleet",
                "rounds": rounds,
                "intel": self.intel.encode(),
            },
            self._fleet_state_path(),
        )

    def _restore(
        self,
    ) -> tuple[int, dict[str, int], list[tuple[int, TenantDayReport]]]:
        """Resume state: (completed rounds, per-tenant cursor, and
        ``(round, report)`` pairs recovered from tenants that finished
        a round the fleet never committed)."""
        state_path = self._fleet_state_path()
        if not state_path.exists():
            raise FleetError(f"no fleet checkpoint at {state_path}")
        payload = load_json(state_path)
        if payload.get("kind") != "fleet":
            raise FleetError(f"{state_path} is not a fleet checkpoint")
        rounds = int(payload["rounds"])
        self.intel.restore(payload["intel"])
        cursors: dict[str, int] = {}
        carried: list[tuple[int, TenantDayReport]] = []
        for spec in self.specs:
            ckpt = _tenant_checkpoint_path(self.checkpoint_dir, spec.tenant_id)
            if not ckpt.exists():
                raise FleetError(
                    f"no checkpoint for tenant {spec.tenant_id!r}: {ckpt}"
                )
            wrapper = _load_tenant_checkpoint(ckpt)
            cursors[spec.tenant_id] = _checkpoint_rounds(wrapper)
            if self.executor == "thread":
                self.engines[spec.tenant_id] = restore_engine(
                    wrapper["engine"],
                    whois=self._tenant_whois(spec.tenant_id),
                )
            if cursors[spec.tenant_id] > rounds and wrapper["report"]:
                # The tenant finished a round the fleet never committed
                # (crash between task and barrier): re-publish its
                # report at the proper barrier.  Keyed by the round the
                # checkpoint recorded, not the report's engine day --
                # enterprise engines count days from their trained
                # bootstrap, so day and round differ there.
                carried.append((
                    cursors[spec.tenant_id] - 1,
                    TenantDayReport.from_dict(wrapper["report"]),
                ))
        return rounds, cursors, carried

    def _fresh_start(self) -> dict[str, int]:
        cursors = {spec.tenant_id: 0 for spec in self.specs}
        if self.checkpoint_dir is not None and self.checkpoint_dir.is_dir():
            # A stale fleet document would make a later --resume skip
            # this run's rounds and seed from the old run's board.
            self._fleet_state_path().unlink(missing_ok=True)
        for spec in self.specs:
            if self.executor == "thread":
                self.engines[spec.tenant_id] = self._build_engine(spec)
            if self.checkpoint_dir is not None:
                # A stale checkpoint would shadow the fresh run.
                ckpt = _tenant_checkpoint_path(
                    self.checkpoint_dir, spec.tenant_id
                )
                ckpt.unlink(missing_ok=True)
        return cursors

    # ------------------------------------------------------------------

    def _submit_tenant(
        self,
        pool: Executor,
        spec: TenantSpec,
        path: Path,
        *,
        rnd: int,
        bootstrap: bool,
        seeds: frozenset[str],
    ):
        if self.executor == "process":
            ckpt = _tenant_checkpoint_path(self.checkpoint_dir, spec.tenant_id)
            ckpt.parent.mkdir(parents=True, exist_ok=True)
            return pool.submit(_process_worker, {
                "tenant_id": spec.tenant_id,
                "checkpoint_path": str(ckpt),
                "log_path": str(path),
                "bootstrap": bootstrap,
                "seeds": sorted(seeds),
                "pipeline": spec.pipeline,
                "model_state": (
                    str(spec.model_state)
                    if spec.model_state is not None else None
                ),
                # Only enterprise engines query the registry; sparing
                # DNS workers the parse keeps large fleets cheap.
                "whois_path": (
                    str(self.whois_path)
                    if self.whois_path is not None
                    and spec.pipeline == "enterprise" else None
                ),
                "internal_suffixes": list(spec.internal_suffixes),
                "server_ips": sorted(spec.server_ips),
                "config": (
                    encode_config(self.config)
                    if self.config is not None else None
                ),
            })

        detector = self.engines[spec.tenant_id]

        def task() -> TenantDayReport | None:
            report = _advance_one_day(
                detector, spec.tenant_id, path,
                bootstrap=bootstrap, seeds=seeds, pipeline=spec.pipeline,
            )
            if self.checkpoint_dir is not None:
                _save_tenant_checkpoint(
                    detector,
                    _tenant_checkpoint_path(
                        self.checkpoint_dir, spec.tenant_id
                    ),
                    report,
                    rnd + 1,
                )
            return report

        return pool.submit(task)

    def run(
        self,
        *,
        max_rounds: int | None = None,
        on_round=None,
    ) -> FleetReport:
        """Advance every tenant through its directory; aggregate.

        ``max_rounds`` bounds the number of day-barrier rounds this
        call executes (the fleet returns ``interrupted=True``); with a
        checkpoint directory, a later ``resume=True`` run continues at
        the next round.  ``on_round`` is called with the list of
        :class:`TenantDayReport` after each barrier.
        """
        try:
            return self._run(max_rounds=max_rounds, on_round=on_round)
        finally:
            if self._transport_dir is not None:
                self._transport_dir.cleanup()
                self._transport_dir = None

    def _run(self, *, max_rounds, on_round) -> FleetReport:
        files = self._tenant_files()
        if self.resume:
            start_round, cursors, carried = self._restore()
        else:
            cursors = self._fresh_start()
            start_round, carried = 0, []
        total_rounds = max(len(f) for f in files.values())

        report = FleetReport(intel=self.intel)
        rounds_executed = 0
        pool_cls = (
            ProcessPoolExecutor if self.executor == "process"
            else ThreadPoolExecutor
        )
        with pool_cls(max_workers=self.workers) as pool:
            for rnd in range(start_round, total_rounds):
                if max_rounds is not None and rounds_executed >= max_rounds:
                    report.interrupted = True
                    break
                futures: dict[str, Any] = {}
                for spec in self.specs:
                    tenant_files = files[spec.tenant_id]
                    if rnd >= len(tenant_files):
                        continue
                    if cursors[spec.tenant_id] > rnd:
                        continue  # recovered past this round already
                    bootstrap = rnd < spec.bootstrap_files
                    seeds = (
                        frozenset() if bootstrap
                        else self.intel.seeds_for(spec.tenant_id)
                    )
                    futures[spec.tenant_id] = self._submit_tenant(
                        pool, spec, tenant_files[rnd],
                        rnd=rnd, bootstrap=bootstrap, seeds=seeds,
                    )

                # Barrier: collect in spec order (deterministic), then
                # publish so day rnd+1 sees all of day rnd's findings.
                round_reports: list[TenantDayReport] = []
                for spec in self.specs:
                    future = futures.get(spec.tenant_id)
                    if future is None:
                        continue
                    result = future.result()
                    cursors[spec.tenant_id] = rnd + 1
                    if result is None:
                        continue
                    if isinstance(result, dict):
                        result = TenantDayReport.from_dict(result)
                    round_reports.append(result)
                round_reports.extend(
                    rep for c_rnd, rep in carried if c_rnd == rnd
                )

                for day_report in round_reports:
                    self.intel.publish(
                        day_report.tenant_id,
                        day_report.day,
                        day_report.scores.items(),
                    )
                    for domain in day_report.detected:
                        report.vt_labels[domain] = self.intel.vt_reported(
                            day_report.tenant_id, domain
                        )
                        if (
                            self.intel.whois is not None
                            and domain not in report.whois_facts
                        ):
                            record = self.intel.whois_lookup(
                                day_report.tenant_id, domain
                            )
                            when = (day_report.day + 1) * SECONDS_PER_DAY
                            report.whois_facts[domain] = (
                                (record.age_days(when),
                                 record.validity_days(when))
                                if record is not None else None
                            )
                report.days.extend(
                    sorted(round_reports, key=lambda r: r.tenant_id)
                )
                rounds_executed += 1
                report.rounds = rnd + 1
                self._save_fleet_state(rnd + 1)
                if on_round is not None:
                    on_round(round_reports)
        return report
