"""Tenant manifest: the on-disk description of a detection fleet.

A fleet is declared by one JSON document listing the enterprises to
run, each with its own log directory and reduction filters, plus an
optional shared VT feed::

    {
      "version": 1,
      "vt_reported": "intel/vt_reported.txt",
      "tenants": [
        {
          "id": "acme",
          "directory": "acme/logs",
          "bootstrap_files": 1,
          "pattern": "dns-*.log",
          "internal_suffixes": ["int.c0"],
          "server_ips": ["172.17.2.1"]
        }
      ]
    }

Relative paths resolve against the manifest's own directory, so a
generated fleet layout is relocatable.  All validation errors raise
:class:`ManifestError` with a one-line message -- the CLI turns these
into a non-zero exit instead of a traceback.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

MANIFEST_VERSION = 1


class ManifestError(RuntimeError):
    """Raised on unreadable or invalid fleet manifests."""


@dataclass(frozen=True)
class TenantSpec:
    """One enterprise tenant: where its logs live, how to reduce them."""

    tenant_id: str
    directory: Path
    bootstrap_files: int = 1
    pattern: str = "dns-*.log"
    internal_suffixes: tuple[str, ...] = ()
    server_ips: frozenset[str] = frozenset()


@dataclass
class FleetManifest:
    """Parsed manifest: tenant specs plus the shared intel inputs."""

    tenants: list[TenantSpec]
    vt_reported: set[str] | None = None
    """Domains the shared VT feed reports, or ``None`` without a feed."""

    path: Path | None = field(default=None, repr=False)


def _tenant_from_payload(
    index: int, payload: Any, base: Path
) -> TenantSpec:
    if not isinstance(payload, dict):
        raise ManifestError(f"tenant #{index}: expected an object")
    tenant_id = payload.get("id")
    if not isinstance(tenant_id, str) or not tenant_id:
        raise ManifestError(f"tenant #{index}: missing or empty 'id'")
    directory = payload.get("directory")
    if not isinstance(directory, str) or not directory:
        raise ManifestError(f"tenant {tenant_id!r}: missing 'directory'")
    resolved = (base / directory).resolve()
    if not resolved.is_dir():
        raise ManifestError(
            f"tenant {tenant_id!r}: directory not found: {resolved}"
        )
    bootstrap_files = payload.get("bootstrap_files", 1)
    if not isinstance(bootstrap_files, int) or bootstrap_files < 0:
        raise ManifestError(
            f"tenant {tenant_id!r}: 'bootstrap_files' must be a "
            "non-negative integer"
        )
    for key in ("internal_suffixes", "server_ips"):
        value = payload.get(key, [])
        # A bare string would silently explode into per-character
        # entries and corrupt the reduction filters.
        if not isinstance(value, list) or not all(
            isinstance(item, str) for item in value
        ):
            raise ManifestError(
                f"tenant {tenant_id!r}: {key!r} must be a list of strings"
            )
    return TenantSpec(
        tenant_id=tenant_id,
        directory=resolved,
        bootstrap_files=bootstrap_files,
        pattern=str(payload.get("pattern", "dns-*.log")),
        internal_suffixes=tuple(payload.get("internal_suffixes", ())),
        server_ips=frozenset(payload.get("server_ips", ())),
    )


def load_manifest(path: str | Path) -> FleetManifest:
    """Parse and validate a fleet manifest file."""
    path = Path(path)
    if not path.is_file():
        raise ManifestError(f"manifest not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ManifestError(f"manifest {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ManifestError(f"manifest {path}: expected a JSON object")
    version = payload.get("version", MANIFEST_VERSION)
    if version != MANIFEST_VERSION:
        raise ManifestError(f"unsupported manifest version {version!r}")
    raw_tenants = payload.get("tenants")
    if not isinstance(raw_tenants, list) or not raw_tenants:
        raise ManifestError(f"manifest {path}: 'tenants' must be a non-empty list")

    base = path.parent
    tenants = [
        _tenant_from_payload(index, entry, base)
        for index, entry in enumerate(raw_tenants)
    ]
    seen: set[str] = set()
    for spec in tenants:
        if spec.tenant_id in seen:
            raise ManifestError(f"duplicate tenant id {spec.tenant_id!r}")
        seen.add(spec.tenant_id)

    vt_reported = None
    vt_path = payload.get("vt_reported")
    if vt_path is not None:
        vt_file = (base / str(vt_path)).resolve()
        if not vt_file.is_file():
            raise ManifestError(f"vt_reported file not found: {vt_file}")
        vt_reported = {
            line.strip()
            for line in vt_file.read_text().splitlines()
            if line.strip()
        }
    return FleetManifest(tenants=tenants, vt_reported=vt_reported, path=path)
