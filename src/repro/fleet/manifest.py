"""Tenant manifest: the on-disk description of a detection fleet.

A fleet is declared by one JSON document listing the enterprises to
run, each with its own log directory, pipeline and reduction filters,
plus optional shared intelligence inputs (a VT feed and a WHOIS
registry)::

    {
      "version": 1,
      "vt_reported": "intel/vt_reported.txt",
      "whois": "intel/whois.json",
      "tenants": [
        {
          "id": "acme",
          "directory": "acme/logs",
          "bootstrap_files": 1,
          "pattern": "dns-*.log",
          "internal_suffixes": ["int.c0"],
          "server_ips": ["172.17.2.1"]
        },
        {
          "id": "globex",
          "directory": "globex/logs",
          "pipeline": "enterprise",
          "model_state": "globex/model.json"
        }
      ]
    }

``pipeline`` selects the tenant's log family: ``"dns"`` (the default;
LANL-style logs through the multi-host C&C heuristic) or
``"enterprise"`` (pre-joined web-proxy logs through the trained
regression scorers, which ``model_state`` must supply).

Relative paths resolve against the manifest's own directory, so a
generated fleet layout is relocatable.  All validation errors raise
:class:`ManifestError` with a one-line message -- the CLI turns these
into a non-zero exit instead of a traceback.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..intel.whois_db import WhoisDatabase

MANIFEST_VERSION = 1

PIPELINES = ("dns", "enterprise")


class ManifestError(RuntimeError):
    """Raised on unreadable or invalid fleet manifests."""


@dataclass(frozen=True)
class TenantSpec:
    """One enterprise tenant: where its logs live, how to reduce them."""

    tenant_id: str
    directory: Path
    bootstrap_files: int = 1
    pattern: str = "dns-*.log"
    internal_suffixes: tuple[str, ...] = ()
    server_ips: frozenset[str] = frozenset()
    pipeline: str = "dns"
    """``"dns"`` or ``"enterprise"`` -- which engine consumes the logs."""

    join_round: int = 0
    """Fleet round at which this tenant comes online (tenant churn).
    Its first log file is consumed at round ``join_round``; before
    that the fleet runs without it.  A tenant *leaves* by simply
    having fewer files than the fleet has rounds -- no declaration
    needed.  ``0`` (the default) is the classic everyone-from-round-0
    fleet."""

    model_state: Path | None = None
    """Trained detector state for enterprise tenants (``None`` on the
    DNS path, whose scorers need no training)."""


@dataclass
class FleetManifest:
    """Parsed manifest: tenant specs plus the shared intel inputs."""

    tenants: list[TenantSpec]
    vt_reported: set[str] | None = None
    """Domains the shared VT feed reports, or ``None`` without a feed."""

    whois: WhoisDatabase | None = None
    """The shared WHOIS registry, or ``None`` without one."""

    whois_path: Path | None = None
    """Where :attr:`whois` was loaded from (process workers re-load it)."""

    certs_path: Path | None = None
    """Optional CT log fixture (``"certs"`` key): certificate
    observations whose SAN pivots become sibling evidence edges."""

    path: Path | None = field(default=None, repr=False)


def _tenant_from_payload(
    index: int, payload: Any, base: Path
) -> TenantSpec:
    if not isinstance(payload, dict):
        raise ManifestError(f"tenant #{index}: expected an object")
    tenant_id = payload.get("id")
    if not isinstance(tenant_id, str) or not tenant_id:
        raise ManifestError(f"tenant #{index}: missing or empty 'id'")
    directory = payload.get("directory")
    if not isinstance(directory, str) or not directory:
        raise ManifestError(f"tenant {tenant_id!r}: missing 'directory'")
    resolved = (base / directory).resolve()
    if not resolved.is_dir():
        raise ManifestError(
            f"tenant {tenant_id!r}: directory not found: {resolved}"
        )
    bootstrap_files = payload.get("bootstrap_files", 1)
    if not isinstance(bootstrap_files, int) or bootstrap_files < 0:
        raise ManifestError(
            f"tenant {tenant_id!r}: 'bootstrap_files' must be a "
            "non-negative integer"
        )
    join_round = payload.get("join_round", 0)
    if not isinstance(join_round, int) or join_round < 0:
        raise ManifestError(
            f"tenant {tenant_id!r}: 'join_round' must be a "
            "non-negative integer"
        )
    for key in ("internal_suffixes", "server_ips"):
        value = payload.get(key, [])
        # A bare string would silently explode into per-character
        # entries and corrupt the reduction filters.
        if not isinstance(value, list) or not all(
            isinstance(item, str) for item in value
        ):
            raise ManifestError(
                f"tenant {tenant_id!r}: {key!r} must be a list of strings"
            )
    pipeline = payload.get("pipeline", "dns")
    if pipeline not in PIPELINES:
        raise ManifestError(
            f"tenant {tenant_id!r}: unknown pipeline {pipeline!r} "
            f"(use one of {', '.join(PIPELINES)})"
        )
    model_state: Path | None = None
    raw_model = payload.get("model_state")
    if pipeline == "enterprise":
        if not isinstance(raw_model, str) or not raw_model:
            raise ManifestError(
                f"tenant {tenant_id!r}: enterprise pipeline requires "
                "'model_state' (a trained detector JSON)"
            )
        model_state = (resolved / raw_model).resolve()
        if not model_state.is_file():
            model_state = (base / raw_model).resolve()
        if not model_state.is_file():
            raise ManifestError(
                f"tenant {tenant_id!r}: model_state not found: {raw_model}"
            )
    elif raw_model is not None:
        raise ManifestError(
            f"tenant {tenant_id!r}: 'model_state' is only valid with "
            "the enterprise pipeline"
        )
    default_pattern = "proxy-*.log" if pipeline == "enterprise" else "dns-*.log"
    return TenantSpec(
        tenant_id=tenant_id,
        directory=resolved,
        bootstrap_files=bootstrap_files,
        pattern=str(payload.get("pattern", default_pattern)),
        internal_suffixes=tuple(payload.get("internal_suffixes", ())),
        server_ips=frozenset(payload.get("server_ips", ())),
        pipeline=pipeline,
        join_round=join_round,
        model_state=model_state,
    )


def load_manifest(path: str | Path) -> FleetManifest:
    """Parse and validate a fleet manifest file."""
    path = Path(path)
    if not path.is_file():
        raise ManifestError(f"manifest not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ManifestError(f"manifest {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ManifestError(f"manifest {path}: expected a JSON object")
    version = payload.get("version", MANIFEST_VERSION)
    if version != MANIFEST_VERSION:
        raise ManifestError(f"unsupported manifest version {version!r}")
    raw_tenants = payload.get("tenants")
    if not isinstance(raw_tenants, list) or not raw_tenants:
        raise ManifestError(f"manifest {path}: 'tenants' must be a non-empty list")

    base = path.parent
    tenants = [
        _tenant_from_payload(index, entry, base)
        for index, entry in enumerate(raw_tenants)
    ]
    seen: set[str] = set()
    for spec in tenants:
        if spec.tenant_id in seen:
            raise ManifestError(f"duplicate tenant id {spec.tenant_id!r}")
        seen.add(spec.tenant_id)

    vt_reported = None
    vt_path = payload.get("vt_reported")
    if vt_path is not None:
        vt_file = (base / str(vt_path)).resolve()
        if not vt_file.is_file():
            raise ManifestError(f"vt_reported file not found: {vt_file}")
        vt_reported = {
            line.strip()
            for line in vt_file.read_text().splitlines()
            if line.strip()
        }

    whois = None
    whois_path = None
    raw_whois = payload.get("whois")
    if raw_whois is not None:
        whois_path = (base / str(raw_whois)).resolve()
        if not whois_path.is_file():
            raise ManifestError(f"whois file not found: {whois_path}")
        try:
            # Accepts both registry formats: classic WHOIS JSON and
            # RDAP fixture documents (sniffed by shape).
            from ..intelstore.rdap import load_registration_registry

            whois = load_registration_registry(whois_path)
        except (ValueError, KeyError) as exc:
            raise ManifestError(
                f"whois file {whois_path} is invalid: {exc}"
            ) from exc

    certs_path = None
    raw_certs = payload.get("certs")
    if raw_certs is not None:
        certs_path = (base / str(raw_certs)).resolve()
        if not certs_path.is_file():
            raise ManifestError(f"certs file not found: {certs_path}")
        try:
            from ..intelstore.ct import load_ct_log

            load_ct_log(certs_path)
        except (ValueError, KeyError, TypeError) as exc:
            raise ManifestError(
                f"certs file {certs_path} is invalid: {exc}"
            ) from exc
    return FleetManifest(
        tenants=tenants,
        vt_reported=vt_reported,
        whois=whois,
        whois_path=whois_path,
        certs_path=certs_path,
        path=path,
    )
