"""Shared intelligence plane for a multi-tenant detection fleet.

The paper's key external inputs -- VirusTotal verdicts and WHOIS
registration records -- are *global*: a domain's VT report or
registration date does not depend on which enterprise asks.  The
:class:`IntelPlane` therefore sits above all per-tenant engines and
provides:

* **memoized, hit/miss-counting caches** over the VT oracle and WHOIS
  database, shared across tenants.  Each cache entry remembers which
  tenant inserted it, so the plane can report *cross-tenant* hits --
  the lookups one enterprise saved another;
* a **cross-tenant prior board**: domains a tenant detected with score
  at or above ``prior_threshold`` are published to the board, and
  :meth:`seeds_for` returns every *other* tenant's qualifying domains.
  Fed into :func:`repro.runner.detect_on_traffic` as ``intel_domains``,
  these become elevated belief-propagation priors -- the paper's
  community-feedback amplification (a domain confirmed malicious for
  one tenant immediately seeds detection everywhere else), applied at
  fleet scale.

Seeding is applied at *day barriers* by the
:class:`~repro.fleet.manager.FleetManager`: every tenant finishes day
``d`` before any detections from day ``d`` are published, so results
are identical regardless of how many workers advance the tenants in
parallel.

The plane is thread-safe (one lock around all mutation); in process
executor mode only the fleet parent touches it, at the barriers.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any

from ..intel.virustotal import VirusTotalOracle
from ..intel.whois_db import WhoisDatabase, WhoisRecord


@dataclass
class CacheStats:
    """Lookup accounting for one shared cache."""

    hits: int = 0
    misses: int = 0
    cross_tenant_hits: int = 0
    """Hits on entries first inserted by a *different* tenant."""

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "cross_tenant_hits": self.cross_tenant_hits,
        }

    def absorb(self, counts: dict[str, int]) -> None:
        """Fold another accounting delta (an :meth:`as_dict` document)
        into this one -- how resident workers' cache-fill counters
        reach the manager's plane at each barrier."""
        self.hits += int(counts.get("hits", 0))
        self.misses += int(counts.get("misses", 0))
        self.cross_tenant_hits += int(counts.get("cross_tenant_hits", 0))

    def metrics_samples(self, cache: str) -> dict[str, int]:
        """Counter samples for a metrics-registry collector.

        The plain-int fields stay the hot-path mechanism under the
        plane's lock; a collector registered via
        :meth:`repro.obs.MetricsRegistry.add_collector` folds them into
        every snapshot as
        ``intel_cache_lookups_total{cache=...,outcome=...}``, so the
        unified registry serves the intel-cache stats too.
        """
        from ..obs.metrics import sample_key

        return {
            sample_key(
                "intel_cache_lookups_total", cache=cache, outcome=outcome
            ): value
            for outcome, value in self.as_dict().items()
        }


class _TenantCache:
    """Memo cache whose entries remember the inserting tenant."""

    def __init__(self) -> None:
        self.stats = CacheStats()
        self._entries: dict[Any, tuple[Any, str]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Any, tenant_id: str, compute) -> Any:
        entry = self._entries.get(key)
        if entry is not None:
            value, owner = entry
            self.stats.hits += 1
            if owner != tenant_id:
                self.stats.cross_tenant_hits += 1
            return value
        value = compute()
        self.stats.misses += 1
        self._entries[key] = (value, tenant_id)
        return value


class TenantWhoisView:
    """A :class:`WhoisDatabase`-shaped view bound to one tenant.

    Enterprise-path engines query WHOIS during feature extraction
    (DomAge/DomValidity); handing them this view instead of the raw
    registry routes every lookup through the plane's shared, memoized
    cache -- so one tenant's lookups save the others work, and the
    cross-tenant hit accounting reflects the proxy path too.
    """

    def __init__(self, plane: "IntelPlane", tenant_id: str) -> None:
        self.plane = plane
        self.tenant_id = tenant_id

    def lookup(self, domain: str) -> WhoisRecord | None:
        """Memoized lookup attributed to this view's tenant."""
        return self.plane.whois_lookup(self.tenant_id, domain)


@dataclass(frozen=True)
class BoardEntry:
    """One domain on the cross-tenant prior board."""

    domain: str
    score: float
    """Best detection score seen fleet-wide (C&C/seed labels are 1.0)."""

    tenants: frozenset[str]
    """Tenants that detected the domain."""

    first_day: int
    """Earliest fleet day (round index) the domain was detected on."""

    revision: int = field(default=0, compare=False)
    """Plane-wide revision at which this entry last changed; lets
    :meth:`IntelPlane.board_delta` ship only what a worker has not
    seen yet.  Bookkeeping, not identity -- excluded from equality."""

    def wire(self) -> dict[str, Any]:
        """The entry as plain JSON-able data (the ``INJECT_INTEL``
        payload element a :class:`BoardReplica` consumes)."""
        return {
            "domain": self.domain,
            "score": self.score,
            "tenants": sorted(self.tenants),
            "first_day": self.first_day,
        }


class BoardReplica:
    """Worker-side mirror of the cross-tenant prior board.

    Resident fleet workers cannot reach the manager's plane between
    barriers, so the manager streams :meth:`IntelPlane.board_delta`
    entries to each worker (the ``INJECT_INTEL`` command) and the
    replica answers :meth:`seeds_for` locally with exactly the plane's
    semantics -- a tenant is never seeded with only its own findings.
    Entry application is last-writer-wins on whole entries, which is
    safe because the plane's merged entry is the only thing ever sent.
    """

    def __init__(self) -> None:
        self._tenants_by_domain: dict[str, frozenset[str]] = {}
        self.seeds_served = 0

    def __len__(self) -> int:
        return len(self._tenants_by_domain)

    def apply(self, entries: Iterable[dict[str, Any]]) -> None:
        """Fold a batch of :meth:`BoardEntry.wire` documents in."""
        for entry in entries:
            self._tenants_by_domain[str(entry["domain"])] = frozenset(
                entry["tenants"]
            )

    def seeds_for(self, tenant_id: str) -> frozenset[str]:
        """Replicated :meth:`IntelPlane.seeds_for` (same exclusion)."""
        seeds = frozenset(
            domain
            for domain, tenants in self._tenants_by_domain.items()
            if tenants != frozenset({tenant_id})
        )
        self.seeds_served += len(seeds)
        return seeds


class IntelPlane:
    """Shared VT/WHOIS caches plus the cross-tenant prior board."""

    def __init__(
        self,
        vt: VirusTotalOracle | None = None,
        whois: WhoisDatabase | None = None,
        *,
        prior_threshold: float = 0.4,
    ) -> None:
        self.vt = vt
        self.whois = whois
        self.prior_threshold = prior_threshold
        self.vt_cache = _TenantCache()
        self.whois_cache = _TenantCache()
        self.seeds_served = 0
        self._board: dict[str, BoardEntry] = {}
        self._revision = 0
        self._lock = threading.Lock()
        self._store = None
        self._hydrated_vt: set[str] = set()
        self._hydrated_whois: set[str] = set()

    # ------------------------------------------------------------------
    # Durable store (hydration + write-behind)
    # ------------------------------------------------------------------

    def attach_store(self, store, *, hydrate: bool = True) -> None:
        """Back this plane with a durable :class:`repro.intelstore
        .store.IntelStore`.

        Hydration pre-fills the memoized VT/WHOIS caches from disk
        (never overwriting live entries), so a restarted fleet answers
        those lookups without touching the feeds; the hydrated keys
        are remembered so lookups against them count as store *hits*.
        Afterwards every cache miss is also a store *miss* and is
        written behind for the next :meth:`flush_store`.  Hydrated
        values equal what the feeds would return, so detections are
        byte-identical with or without the store.
        """
        with self._lock:
            self._store = store
            if not hydrate:
                return
            for domain, entry in store.load_vt().items():
                if domain not in self.vt_cache._entries:
                    self.vt_cache._entries[domain] = entry
                    self._hydrated_vt.add(domain)
            for domain, entry in store.load_whois().items():
                if domain not in self.whois_cache._entries:
                    self.whois_cache._entries[domain] = entry
                    self._hydrated_whois.add(domain)

    @property
    def store(self):
        """The attached durable store, or ``None``."""
        return self._store

    def flush_store(self) -> int:
        """Commit write-behind rows to the attached store (rows
        written; 0 when no store is attached) -- called by the manager
        at day barriers and at end of run."""
        store = self._store
        if store is None:
            return 0
        return store.flush()

    def store_stats(self) -> dict[str, Any] | None:
        """The attached store's accounting, or ``None`` without one."""
        store = self._store
        if store is None:
            return None
        return store.stats.as_dict()

    # ------------------------------------------------------------------
    # Shared lookups
    # ------------------------------------------------------------------

    def vt_reported(self, tenant_id: str, domain: str) -> bool | None:
        """Memoized VT verdict: ``True``/``False``, ``None`` if no
        oracle is attached (lookups are still cached and counted, so a
        fleet without a VT feed keeps its sharing accounting)."""
        with self._lock:
            known = domain in self.vt_cache._entries
            value = self.vt_cache.get(
                domain,
                tenant_id,
                lambda: self.vt.is_reported(domain) if self.vt else None,
            )
            if self._store is not None:
                if not known:
                    self._store.stats.count_miss("vt")
                    self._store.put_vt(domain, value, tenant_id)
                elif domain in self._hydrated_vt:
                    self._store.stats.count_hit("vt")
            return value

    def whois_lookup(self, tenant_id: str, domain: str) -> WhoisRecord | None:
        """Memoized WHOIS record (``None`` = unregistered/unparseable)."""
        with self._lock:
            known = domain in self.whois_cache._entries
            value = self.whois_cache.get(
                domain,
                tenant_id,
                lambda: self.whois.lookup(domain) if self.whois else None,
            )
            if self._store is not None:
                if not known:
                    self._store.stats.count_miss("whois")
                    self._store.put_whois(domain, value, tenant_id)
                elif domain in self._hydrated_whois:
                    self._store.stats.count_hit("whois")
            return value

    # ------------------------------------------------------------------
    # Cross-tenant prior board
    # ------------------------------------------------------------------

    def publish(
        self,
        tenant_id: str,
        day: int,
        scored_domains: Iterable[tuple[str, float]],
    ) -> int:
        """Record one tenant's day-``day`` detections on the board.

        Only domains scoring at or above ``prior_threshold`` qualify.
        Publishing is commutative (set union, max score), so the order
        tenants finish a round in does not affect the board.
        """
        added = 0
        with self._lock:
            for domain, score in scored_domains:
                if score < self.prior_threshold:
                    continue
                self._revision += 1
                entry = self._board.get(domain)
                if entry is None:
                    self._board[domain] = BoardEntry(
                        domain=domain,
                        score=score,
                        tenants=frozenset({tenant_id}),
                        first_day=day,
                        revision=self._revision,
                    )
                else:
                    self._board[domain] = BoardEntry(
                        domain=domain,
                        score=max(entry.score, score),
                        tenants=entry.tenants | {tenant_id},
                        first_day=min(entry.first_day, day),
                        revision=self._revision,
                    )
                added += 1
        return added

    def board_delta(
        self, since: int
    ) -> tuple[int, list[dict[str, Any]]]:
        """Board entries changed after revision ``since``, as wire
        documents, plus the current revision.

        The manager tracks each resident worker's synced revision and
        ships only this delta per round (``since=0`` is a full sync --
        what a freshly spawned or respawned worker gets).
        """
        with self._lock:
            entries = [
                entry.wire()
                for entry in self._board.values()
                if entry.revision > since
            ]
            return self._revision, entries

    def seeds_for(self, tenant_id: str) -> frozenset[str]:
        """Domains other tenants confirmed -- this tenant's elevated
        priors.  A tenant is never seeded with only its own findings."""
        with self._lock:
            seeds = frozenset(
                entry.domain
                for entry in self._board.values()
                if entry.tenants != frozenset({tenant_id})
            )
            self.seeds_served += len(seeds)
        return seeds

    @property
    def board(self) -> dict[str, BoardEntry]:
        with self._lock:
            return dict(self._board)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def bind_metrics(self, metrics) -> None:
        """Serve this plane's cache stats through a metrics registry.

        Registers one collector sampling both tenant caches (VT and
        WHOIS) at snapshot time, so ``--metrics-out`` exposition and
        the plane's own ``CacheStats`` objects stay a single source of
        truth -- the counters live here, the registry reads them.
        """
        if metrics is None or not getattr(metrics, "enabled", False):
            return
        metrics.add_collector(self._metrics_samples)

    def _metrics_samples(self) -> dict[str, int]:
        with self._lock:
            samples = self.vt_cache.stats.metrics_samples("vt")
            samples.update(self.whois_cache.stats.metrics_samples("whois"))
        return samples

    # ------------------------------------------------------------------
    # Persistence (fleet checkpoint)
    # ------------------------------------------------------------------

    def encode(self) -> dict[str, Any]:
        """JSON-serializable snapshot (board + cache accounting).

        Cache *contents* for VT are persisted (they are plain verdicts);
        WHOIS records are re-fetchable from the attached database and
        only their accounting is kept.
        """
        with self._lock:
            return {
                "prior_threshold": self.prior_threshold,
                "board": {
                    entry.domain: {
                        "score": entry.score,
                        "tenants": sorted(entry.tenants),
                        "first_day": entry.first_day,
                    }
                    for entry in self._board.values()
                },
                "vt_entries": {
                    domain: [value, owner]
                    for domain, (value, owner)
                    in self.vt_cache._entries.items()
                },
                "vt_stats": self.vt_cache.stats.as_dict(),
                "whois_stats": self.whois_cache.stats.as_dict(),
                "seeds_served": self.seeds_served,
            }

    def restore(self, payload: dict[str, Any]) -> None:
        """Refill the board and accounting from :meth:`encode` output."""
        with self._lock:
            self.prior_threshold = float(payload["prior_threshold"])
            # Restored entries get fresh revisions so every worker's
            # next delta sync (since=0 after a restart) resends them.
            self._board = {}
            self._revision = 0
            for domain, entry in payload["board"].items():
                self._revision += 1
                self._board[str(domain)] = BoardEntry(
                    domain=str(domain),
                    score=float(entry["score"]),
                    tenants=frozenset(entry["tenants"]),
                    first_day=int(entry["first_day"]),
                    revision=self._revision,
                )
            self.vt_cache._entries = {
                str(domain): (value, str(owner))
                for domain, (value, owner) in payload["vt_entries"].items()
            }
            self.vt_cache.stats = CacheStats(**payload["vt_stats"])
            self.whois_cache.stats = CacheStats(**payload["whois_stats"])
            self.seeds_served = int(payload["seeds_served"])
