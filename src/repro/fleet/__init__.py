"""Multi-tenant detection fleet: per-enterprise engines, shared intel.

The paper frames the detector for a single enterprise; its key external
inputs (VirusTotal verdicts, WHOIS registrations) are global.  This
subsystem runs **one detection engine per enterprise tenant** above a
shared intelligence plane:

* :mod:`~repro.fleet.manifest` -- the on-disk fleet declaration
  (:class:`TenantSpec`, :func:`load_manifest`);
* :mod:`~repro.fleet.intel` -- :class:`IntelPlane`: memoized,
  hit/miss-counting VT/WHOIS caches shared across tenants, plus the
  cross-tenant prior board (a domain confirmed malicious in one tenant
  becomes an elevated belief-propagation prior everywhere else);
* :mod:`~repro.fleet.manager` -- :class:`FleetManager`: day-barrier
  rounds over all tenants with a thread, process or resident executor,
  per-tenant checkpoints on the :mod:`repro.state` atomic-write
  machinery, and crash/resume;
* :mod:`~repro.fleet.workers` -- the resident executor's long-lived
  worker processes (:class:`ResidentPool`): engines stay in worker
  memory across rounds; prior-board deltas, day reports and barrier
  delta-checkpoints are all that cross the process boundary, and a
  crashed worker's tenants respawn from their checkpoint chains;
* :mod:`~repro.fleet.report` -- :class:`FleetReport`: per-tenant
  detections, cross-tenant domain overlap, VT classification.

**Cross-tenant prior-seeding semantics.**  Publication happens only at
day barriers: every tenant finishes day ``d`` before any day-``d``
detection reaches the board, so a tenant's day-``d`` seeds are exactly
the fleet's confirmed domains through day ``d - 1``.  Seeds intersected
with the tenant's *rare* set enter belief propagation as seed labels
(:func:`repro.runner.detect_on_traffic`); a domain that is popular or
already profiled in a tenant is never seeded there.  Results are
therefore identical for any worker count -- parallelism changes
wall-clock, not detections.
"""

from .intel import (
    BoardEntry,
    BoardReplica,
    CacheStats,
    IntelPlane,
    TenantWhoisView,
)
from .manager import FleetError, FleetManager
from .manifest import FleetManifest, ManifestError, TenantSpec, load_manifest
from .report import FleetReport, TenantDayReport
from .workers import ResidentPool, WorkerDied

__all__ = [
    "BoardEntry",
    "BoardReplica",
    "CacheStats",
    "FleetError",
    "FleetManager",
    "FleetManifest",
    "FleetReport",
    "IntelPlane",
    "ManifestError",
    "ResidentPool",
    "TenantDayReport",
    "TenantSpec",
    "TenantWhoisView",
    "WorkerDied",
    "load_manifest",
]
