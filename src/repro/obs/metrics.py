"""Dependency-free metrics plane: registry, spans, mergeable snapshots.

The reproduction runs as one streaming engine, a threaded fleet, or a
resident multi-process fleet; all three need the same answers — where
do events and time go? — without adding a dependency or slowing the
hot path.  This module provides:

* :class:`MetricsRegistry` — process-local home of counters, gauges
  and fixed-bucket histograms, plus ``span(name)`` context-manager
  timers that record into ``*_seconds`` histograms.
* :class:`MetricsSnapshot` — an immutable point-in-time sample that
  *merges*: counters and histogram buckets add, gauges are
  right-biased.  Merge is associative and commutative over counters
  and histograms, which is what lets resident fleet workers ship
  per-round deltas (:meth:`MetricsRegistry.snapshot_delta`) over the
  existing command/response queues — the same pattern as
  ``CacheStats.absorb`` and the intel board deltas — and the manager
  fold them into one fleet-wide view with
  :meth:`MetricsRegistry.absorb`.
* :data:`NULL_METRICS` — a no-op registry with the same surface, so
  instrumentation is free when observability is off and call sites
  never branch on ``if metrics:``.

Collectors (:meth:`MetricsRegistry.add_collector`) bridge the legacy
plain-int stat dataclasses (``CacheStats``, ``VerdictCacheStats``)
onto the registry: the dataclasses stay cheap lock-free counters on
their hot paths, but every :meth:`MetricsRegistry.snapshot` folds
their current values in as counter samples, so there is one exposition
mechanism (JSON snapshot + :meth:`MetricsSnapshot.to_prom`), not
three.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Callable, Iterable, Mapping

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_METRICS",
    "NullRegistry",
    "Span",
    "sample_key",
]

#: Upper bounds (seconds) for span/latency histograms; +Inf implicit.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Upper bounds for size histograms (frontier sizes, batch sizes).
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
)


def sample_key(name: str, **labels: object) -> str:
    """Encode a metric name plus labels into one stable sample key.

    ``sample_key("hits_total", cache="vt")`` →
    ``'hits_total{cache="vt"}'`` — the Prometheus text form, with
    labels sorted so the same labelling always yields the same key
    (snapshots merge by key equality).
    """
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{labels[k]}"' for k in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def split_sample_key(key: str) -> tuple[str, str]:
    """Split an encoded sample key into ``(family, label_text)``.

    The family is the bare metric name; ``label_text`` is the
    ``{...}`` suffix (empty for unlabelled samples).
    """
    brace = key.find("{")
    if brace < 0:
        return key, ""
    return key[:brace], key[brace:]


class Counter:
    """A monotonically increasing counter (float-valued)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with self._lock:
            self.value += amount


class Gauge:
    """A value that goes up and down (queue depth, board size)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bucket histogram: cumulative-style counts, sum, count.

    Buckets are *upper bounds*; an implicit +Inf bucket catches the
    overflow.  Fixed bounds are what make histograms mergeable — two
    snapshots with the same bounds add component-wise.
    """

    __slots__ = ("_lock", "bounds", "counts", "sum", "count")

    def __init__(
        self, lock: threading.Lock, bounds: Iterable[float]
    ) -> None:
        self._lock = lock
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1


class Span:
    """Context-manager wall-clock timer.

    Always measures (callers read ``.elapsed`` for reports even when
    metrics are off); records into its histogram only when one was
    bound by an enabled registry.  Exceptions propagate — a failed
    stage is still a timed stage.
    """

    __slots__ = ("_histogram", "_started", "elapsed")

    def __init__(self, histogram: Histogram | None = None) -> None:
        self._histogram = histogram
        self._started = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._started
        if self._histogram is not None:
            self._histogram.observe(self.elapsed)


class MetricsSnapshot:
    """Point-in-time sample of a registry; merges and diffs.

    ``counters`` and ``gauges`` map encoded sample keys (see
    :func:`sample_key`) to values; ``histograms`` map keys to
    ``{"bounds": [...], "counts": [...], "sum": s, "count": n}``
    dicts.  Counters and histograms *add* under :meth:`merge` (the
    operation is associative and commutative); gauges are last-writer-
    wins (right-biased), matching their point-in-time semantics.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(
        self,
        counters: Mapping[str, float] | None = None,
        gauges: Mapping[str, float] | None = None,
        histograms: Mapping[str, dict] | None = None,
    ) -> None:
        self.counters: dict[str, float] = dict(counters or {})
        self.gauges: dict[str, float] = dict(gauges or {})
        self.histograms: dict[str, dict] = {
            key: {
                "bounds": list(h["bounds"]),
                "counts": list(h["counts"]),
                "sum": h["sum"],
                "count": h["count"],
            }
            for key, h in (histograms or {}).items()
        }

    # -- algebra ----------------------------------------------------

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Return a new snapshot: self ⊕ other.

        Counters and histogram components sum; gauges take ``other``'s
        value where both define one.  Merging histograms with
        different bucket bounds is a programming error and raises.
        """
        merged = MetricsSnapshot(
            self.counters, self.gauges, self.histograms
        )
        for key, value in other.counters.items():
            merged.counters[key] = merged.counters.get(key, 0.0) + value
        merged.gauges.update(other.gauges)
        for key, hist in other.histograms.items():
            mine = merged.histograms.get(key)
            if mine is None:
                merged.histograms[key] = {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
                continue
            if list(mine["bounds"]) != list(hist["bounds"]):
                raise ValueError(
                    f"histogram bounds mismatch for {key!r}"
                )
            mine["counts"] = [
                a + b for a, b in zip(mine["counts"], hist["counts"])
            ]
            mine["sum"] += hist["sum"]
            mine["count"] += hist["count"]
        return merged

    def diff(self, baseline: "MetricsSnapshot") -> "MetricsSnapshot":
        """Return the delta self − baseline (for per-round shipping).

        Counters and histogram components subtract (clamped at zero so
        a reset never ships negative deltas); gauges keep ``self``'s
        current values.  ``baseline.merge(delta)`` reproduces ``self``
        for counters and histograms — the identity resident workers
        rely on.
        """
        counters = {}
        for key, value in self.counters.items():
            delta = value - baseline.counters.get(key, 0.0)
            if delta > 0:
                counters[key] = delta
        histograms = {}
        for key, hist in self.histograms.items():
            base = baseline.histograms.get(key)
            if base is None:
                histograms[key] = hist
                continue
            counts = [
                max(0, a - b)
                for a, b in zip(hist["counts"], base["counts"])
            ]
            count = max(0, hist["count"] - base["count"])
            if count == 0 and not any(counts):
                continue
            histograms[key] = {
                "bounds": list(hist["bounds"]),
                "counts": counts,
                "sum": max(0.0, hist["sum"] - base["sum"]),
                "count": count,
            }
        return MetricsSnapshot(counters, dict(self.gauges), histograms)

    # -- reading ----------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> float:
        """Value of one counter sample (0.0 when absent)."""
        return self.counters.get(sample_key(name, **labels), 0.0)

    def gauge_value(self, name: str, **labels: object) -> float:
        """Value of one gauge sample (0.0 when absent)."""
        return self.gauges.get(sample_key(name, **labels), 0.0)

    def histogram_stats(self, name: str, **labels: object) -> dict:
        """One histogram sample's dict (empty dict when absent)."""
        return self.histograms.get(sample_key(name, **labels), {})

    def families(self) -> set[str]:
        """Bare metric names present, labels stripped."""
        names = set()
        for key in (*self.counters, *self.gauges, *self.histograms):
            names.add(split_sample_key(key)[0])
        return names

    def timings(self) -> dict[str, float]:
        """Total seconds per ``*_seconds`` histogram family.

        The stage breakdown benchmarks and reports read: summed over
        labels, keyed by family with the ``_seconds`` suffix dropped.
        """
        totals: dict[str, float] = {}
        for key, hist in self.histograms.items():
            family = split_sample_key(key)[0]
            if not family.endswith("_seconds"):
                continue
            stage = family[: -len("_seconds")]
            totals[stage] = totals.get(stage, 0.0) + hist["sum"]
        return totals

    def is_empty(self) -> bool:
        """True when the snapshot carries no samples at all."""
        return not (self.counters or self.gauges or self.histograms)

    # -- serialization ----------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                key: {
                    "bounds": list(h["bounds"]),
                    "counts": list(h["counts"]),
                    "sum": h["sum"],
                    "count": h["count"],
                }
                for key, h in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MetricsSnapshot":
        """Rebuild a snapshot from :meth:`as_dict` output."""
        return cls(
            payload.get("counters"),
            payload.get("gauges"),
            payload.get("histograms"),
        )

    def to_prom(self) -> str:
        """Prometheus text exposition of the snapshot.

        Counters and gauges one line per sample; histograms expand to
        cumulative ``_bucket{le=...}`` lines plus ``_sum``/``_count``,
        so the file scrapes into any Prometheus-compatible stack.
        """
        lines: list[str] = []
        for key in sorted(self.counters):
            lines.append(f"{key} {_fmt(self.counters[key])}")
        for key in sorted(self.gauges):
            lines.append(f"{key} {_fmt(self.gauges[key])}")
        for key in sorted(self.histograms):
            hist = self.histograms[key]
            family, labels = split_sample_key(key)
            cumulative = 0
            bounds = [*hist["bounds"], float("inf")]
            for bound, count in zip(bounds, hist["counts"]):
                cumulative += count
                le = "+Inf" if bound == float("inf") else _fmt(bound)
                lines.append(
                    f"{family}_bucket{_with_label(labels, 'le', le)}"
                    f" {cumulative}"
                )
            lines.append(f"{family}_sum{labels} {_fmt(hist['sum'])}")
            lines.append(f"{family}_count{labels} {hist['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    """Render a sample value, preferring integer form when exact."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _with_label(labels: str, key: str, value: str) -> str:
    """Insert ``key="value"`` into an encoded ``{...}`` label suffix."""
    extra = f'{key}="{value}"'
    if not labels:
        return "{" + extra + "}"
    return labels[:-1] + "," + extra + "}"


class MetricsRegistry:
    """Process-local registry of counters, gauges and histograms.

    Metric objects are memoized by encoded sample key, so a hot loop
    can resolve its counter once (``c = registry.counter(...)``) and
    pay only an uncontended-lock increment per event.  A single lock
    guards all mutation; at micro-batch granularity the contention is
    negligible and snapshots are internally consistent.

    Three inputs fold into every :meth:`snapshot`: the live metric
    objects, registered *collectors* (callables returning counter
    samples — the bridge for ``CacheStats``/``VerdictCacheStats``),
    and the *absorbed* snapshot accumulated from worker deltas via
    :meth:`absorb` or restored from checkpoints via :meth:`restore`.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: list[Callable[[], Mapping[str, float]]] = []
        self._absorbed = MetricsSnapshot()
        self._shipped = MetricsSnapshot()

    # -- instrument creation ----------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``name`` + labels (created on first use)."""
        key = sample_key(name, **labels)
        with self._lock:
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = Counter(self._lock)
        return counter

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``name`` + labels (created on first use)."""
        key = sample_key(name, **labels)
        with self._lock:
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self._gauges[key] = Gauge(self._lock)
        return gauge

    def histogram(
        self,
        name: str,
        *,
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """The histogram for ``name`` + labels (created on first use)."""
        key = sample_key(name, **labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram(
                    self._lock, buckets
                )
        return hist

    def span(self, name: str, **labels: object) -> Span:
        """A timer recording into the ``{name}_seconds`` histogram."""
        return Span(self.histogram(f"{name}_seconds", **labels))

    # -- collectors and merging -------------------------------------

    def add_collector(
        self, collect: Callable[[], Mapping[str, float]]
    ) -> None:
        """Register a callable sampled at snapshot time.

        ``collect()`` returns encoded counter samples (build keys with
        :func:`sample_key`); its values fold into every snapshot's
        counters.  This keeps legacy plain-int stat objects on their
        lock-free hot paths while the registry owns exposition.
        """
        with self._lock:
            self._collectors.append(collect)

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Fold a shipped delta (or restored snapshot) into this view."""
        with self._lock:
            self._absorbed = self._absorbed.merge(snapshot)

    def restore(self, snapshot: MetricsSnapshot) -> None:
        """Seed from a checkpointed snapshot (alias of :meth:`absorb`)."""
        self.absorb(snapshot)

    def snapshot(self) -> MetricsSnapshot:
        """Consistent sample: live metrics ⊕ collectors ⊕ absorbed."""
        collected = [collect() for collect in list(self._collectors)]
        with self._lock:
            live = MetricsSnapshot(
                {k: c.value for k, c in self._counters.items()},
                {k: g.value for k, g in self._gauges.items()},
                {
                    k: {
                        "bounds": h.bounds,
                        "counts": h.counts,
                        "sum": h.sum,
                        "count": h.count,
                    }
                    for k, h in self._histograms.items()
                },
            )
            absorbed = self._absorbed
        for samples in collected:
            for key, value in samples.items():
                live.counters[key] = live.counters.get(key, 0.0) + value
        return absorbed.merge(live)

    def snapshot_delta(self) -> MetricsSnapshot:
        """The delta since the last call (first call: everything).

        Resident fleet workers call this once per round and ship the
        result over their response queue; the manager absorbs it.  The
        sequence of deltas merges back to the full snapshot.
        """
        with self._lock:
            shipped = self._shipped
        current = self.snapshot()
        delta = current.diff(shipped)
        with self._lock:
            self._shipped = current
        return delta


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for :data:`NULL_METRICS`."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The metrics-off registry: same surface, no recording.

    Hot paths hold references to its shared no-op instruments, so the
    disabled cost is one attribute call per site; ``span`` still times
    (callers read ``.elapsed`` for reports) but records nowhere.
    """

    enabled = False

    def counter(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, *, buckets: Iterable[float] = (), **labels: object
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def span(self, name: str, **labels: object) -> Span:
        return Span(None)

    def add_collector(
        self, collect: Callable[[], Mapping[str, float]]
    ) -> None:
        pass

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        pass

    def restore(self, snapshot: MetricsSnapshot) -> None:
        pass

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot()

    def snapshot_delta(self) -> MetricsSnapshot:
        return MetricsSnapshot()


#: The process-wide metrics-off singleton; share it, never mutate it.
NULL_METRICS = NullRegistry()
