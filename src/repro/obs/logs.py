"""Opt-in structured logging: one JSON object (or text line) per event.

Built on stdlib :mod:`logging` so the repo stays dependency-free and
host applications can re-route the ``repro`` logger hierarchy however
they like.  Nothing is emitted until :func:`configure_logging` runs
(the root ``repro`` logger carries a ``NullHandler``), so library use
stays silent by default — the CLI turns it on behind ``--log-level``
and ``--log-json``.

Events are key-value structured: :func:`log_event` attaches its fields
to the record, and :class:`JsonLinesFormatter` renders
``{"ts": ..., "level": ..., "logger": ..., "event": ..., **fields}``
one object per line — greppable, ``jq``-able, and stable enough for a
SOC to tail.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO

__all__ = [
    "JsonLinesFormatter",
    "configure_logging",
    "get_logger",
    "log_event",
]

ROOT_LOGGER = "repro"

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


class JsonLinesFormatter(logging.Formatter):
    """Render each record as one JSON object on one line."""

    def format(self, record: logging.LogRecord) -> str:
        """JSON-encode the record (message, event fields, exceptions)."""
        payload: dict[str, object] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": getattr(record, "event", None) or record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
            payload["exc"] = str(record.exc_info[1])
        return json.dumps(payload, sort_keys=False, default=str)


class _TextFormatter(logging.Formatter):
    """Human-oriented one-liner: time, level, event, k=v fields."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime(
            "%H:%M:%S", time.localtime(record.created)
        )
        event = getattr(record, "event", None) or record.getMessage()
        parts = [stamp, record.levelname.lower(), event]
        fields = getattr(record, "fields", None)
        if fields:
            parts.extend(f"{k}={v}" for k, v in fields.items())
        return " ".join(str(p) for p in parts)


def configure_logging(
    level: str = "info",
    *,
    json_mode: bool = False,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` logger hierarchy.

    Idempotent per process: a prior configured handler is replaced, so
    repeated CLI invocations in one interpreter (tests) don't stack
    handlers.  Returns the root ``repro`` logger.
    """
    root = logging.getLogger(ROOT_LOGGER)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        JsonLinesFormatter() if json_mode else _TextFormatter()
    )
    handler.set_name("repro-obs")
    for existing in list(root.handlers):
        if existing.get_name() == "repro-obs":
            root.removeHandler(existing)
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper(), logging.INFO))
    return root


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    return logging.getLogger(
        f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER
    )


def log_event(
    logger: logging.Logger,
    event: str,
    *,
    level: int = logging.INFO,
    **fields: object,
) -> None:
    """Emit one structured event if the logger is enabled for it.

    The ``isEnabledFor`` guard keeps disabled logging to a dict lookup
    on hot-ish paths (day rollovers, fleet rounds — never per event).
    """
    if logger.isEnabledFor(level):
        logger.log(
            level, event, extra={"event": event, "fields": fields}
        )
