"""Observability plane: metrics registry, stage spans, structured logs.

One mechanism for every counter and timer in the reproduction.  The
streaming engines, the fleet manager and resident workers, the CLI
and the benchmarks all talk to a :class:`MetricsRegistry` (or the
free :data:`NULL_METRICS` stand-in when observability is off), and
everything merges into a single fleet-wide
:class:`MetricsSnapshot` — see :mod:`repro.obs.metrics` for the
algebra and :mod:`repro.obs.logs` for the JSON-lines event logger.
"""

from repro.obs.logs import (
    JsonLinesFormatter,
    configure_logging,
    get_logger,
    log_event,
)
from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    NULL_METRICS,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    Span,
    sample_key,
)

__all__ = [
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "JsonLinesFormatter",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_METRICS",
    "NullRegistry",
    "Span",
    "configure_logging",
    "get_logger",
    "log_event",
    "sample_key",
]
