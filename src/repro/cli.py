"""Command-line interface for the reproduction.

The subcommands cover the workflows a downstream user needs::

    repro-detect lanl        # solve the LANL challenge, print Table III
    repro-detect enterprise  # train + sweep the enterprise pipeline
    repro-detect generate    # write synthetic logs to disk
    repro-detect run         # batch detection over a log directory
    repro-detect stream      # replay a log directory as an event stream
    repro-detect fleet       # run many tenants above a shared intel plane
    repro-detect intel       # inspect/maintain a durable intel store
    repro-detect timing      # test one timestamp series for automation

``stream`` drives the online engine (:mod:`repro.streaming`): events
are consumed in micro-batches with intra-day scoring, optional
checkpointing (``--checkpoint``), and crash recovery (``--resume``).
Both log families are supported: ``--pipeline dns`` (the default;
LANL-style logs through the multi-host heuristic) and ``--pipeline
enterprise`` (pre-joined web-proxy logs through trained regression
scorers, restored from ``--model-state``).  ``fleet`` drives one
engine per enterprise tenant (:mod:`repro.fleet`) from a tenant
manifest -- tenants of either pipeline, mixed freely -- sharing
VT/WHOIS caches and cross-tenant priors; ``generate --tenants N``
writes a runnable fleet layout (``--enterprise-tenants K`` makes the
trailing K tenants proxy-path worlds), and ``generate --pipeline
enterprise`` a single-tenant enterprise layout for ``stream``.

Exit codes are uniform: 0 success, 2 usage/configuration error (bad
manifest, missing checkpoint -- one-line message, no traceback),
3 interrupted (resumable with ``--resume``).

All commands are seeded and offline; see ``--help`` of each subcommand.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _add_lanl_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "lanl", help="solve the LANL challenge and print the Table III analogue"
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--hosts", type=int, default=100)
    parser.add_argument("--bootstrap-days", type=int, default=4)


def _add_enterprise_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "enterprise",
        help="train the enterprise pipeline and print the Figure 6 sweeps",
    )
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--hosts", type=int, default=80)
    parser.add_argument("--operation-days", type=int, default=8)
    parser.add_argument("--campaigns", type=int, default=12)
    parser.add_argument(
        "--save-state", type=Path, default=None,
        help="write the trained detector state to this JSON file",
    )


def _add_generate_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "generate", help="write synthetic LANL DNS logs to a directory"
    )
    parser.add_argument("output", type=Path, help="output directory")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--hosts", type=int, default=100)
    parser.add_argument(
        "--days", type=int, default=7, help="number of March days to write"
    )
    parser.add_argument(
        "--netflow", action="store_true",
        help="also write per-day NetFlow exports",
    )
    parser.add_argument(
        "--tenants", type=int, default=1,
        help="with N >= 2, write an N-tenant fleet layout (per-tenant "
             "log directories, shared VT/WHOIS intel and a "
             "manifest.json for 'repro-detect fleet') whose tenants "
             "share one attacker campaign",
    )
    parser.add_argument(
        "--enterprise-tenants", type=int, default=0,
        help="with --tenants N, make the trailing K tenants enterprise "
             "(web-proxy) worlds with trained per-tenant models -- a "
             "mixed-pipeline fleet (the lead stays on the DNS path)",
    )
    parser.add_argument(
        "--pipeline", choices=("dns", "enterprise"), default="dns",
        help="single-tenant log family: 'dns' writes LANL-style DNS "
             "logs, 'enterprise' a web-proxy layout (daily proxy logs, "
             "a trained model.json and whois.json) for "
             "'repro-detect stream --pipeline enterprise'",
    )
    parser.add_argument(
        "--ct-siblings", type=int, default=0,
        help="with --tenants N, inject K extra campaign domains "
             "reachable only through the CT fixture's SAN pivot (the "
             "manifest then references intel/certs.json)",
    )
    parser.add_argument(
        "--campaign", default=None,
        help="overlay one adversarial campaign archetype on the "
             "generated world (jitter, dga-chardist, dga-dictionary, "
             "dga-hashhex, cdn-fronting, slow-burn; tenant-churn needs "
             "--tenants N >= 3).  Its ground truth is written to "
             "adversarial_truth.txt",
    )
    parser.add_argument(
        "--evasion", type=float, default=0.0,
        help="evasion strength in [0, 1] for --campaign: 0 is the "
             "textbook (fully detectable) shape, 1 the hardest "
             "realization of the archetype",
    )


def _add_intel_db_arguments(parser) -> None:
    """Durable intel-store flags shared by stream/fleet."""
    parser.add_argument(
        "--intel-db", type=Path, default=None,
        help="durable SQLite intel store: VT verdicts, WHOIS/RDAP "
             "records and per-tenant history persist across runs "
             "(created on first use; detections are identical with or "
             "without it -- repeat runs just skip re-resolving "
             "already-stored evidence)",
    )
    parser.add_argument(
        "--intel-ttl-days", type=float, default=None,
        help="expire stored intel entries after this many days "
             "(default: never; see the operations runbook for tuning)",
    )


def _add_obs_arguments(parser) -> None:
    """Observability flags shared by run/stream/fleet."""
    parser.add_argument(
        "--metrics-out", type=Path, default=None,
        help="write the run's metrics snapshot to this JSON file (plus "
             "a Prometheus-style text sibling with a .prom suffix); "
             "also turns metric recording on -- detections are "
             "identical either way",
    )
    parser.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default=None,
        help="emit structured runtime events to stderr at this level "
             "(off by default)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="format structured events (and errors) as JSON lines",
    )


def _add_run_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "run",
        help="run detection over a directory of daily DNS log files "
             "(as written by 'repro-detect generate')",
    )
    parser.add_argument("directory", type=Path)
    parser.add_argument(
        "--bootstrap-files", type=int, default=2,
        help="leading files used to build the destination history",
    )
    parser.add_argument("--pattern", default="dns-*.log")
    parser.add_argument(
        "--internal-suffix", action="append", default=[],
        help="internal namespace suffix to filter (repeatable)",
    )
    _add_obs_arguments(parser)


def _add_stream_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "stream",
        help="replay a directory of daily log files as an event "
             "stream through the online detection engine",
    )
    parser.add_argument("directory", type=Path)
    parser.add_argument(
        "--pipeline", choices=("dns", "enterprise"), default="dns",
        help="log family: 'dns' (LANL-style logs, multi-host C&C "
             "heuristic) or 'enterprise' (pre-joined web-proxy logs, "
             "trained regression scorers from --model-state)",
    )
    parser.add_argument(
        "--model-state", type=Path, default=None,
        help="trained detector JSON for --pipeline enterprise (as "
             "written by 'enterprise --save-state' or a generated "
             "layout's model.json)",
    )
    parser.add_argument(
        "--whois", type=Path, default=None,
        help="WHOIS registry JSON for --pipeline enterprise (a "
             "generated layout's whois.json); without it registration "
             "features fall back to imputation",
    )
    parser.add_argument(
        "--bootstrap-files", type=int, default=2,
        help="leading files used to build the destination history",
    )
    parser.add_argument(
        "--pattern", default=None,
        help="daily log glob (default dns-*.log, or proxy-*.log with "
             "--pipeline enterprise)",
    )
    parser.add_argument(
        "--internal-suffix", action="append", default=[],
        help="internal namespace suffix to filter (repeatable)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=500,
        help="events per micro-batch",
    )
    parser.add_argument(
        "--score-every", type=int, default=1,
        help="run a scoring round every N micro-batches",
    )
    parser.add_argument(
        "--checkpoint", type=Path, default=None,
        help="persist engine state to this JSON file while streaming",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="checkpoint every N micro-batches",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="restore from --checkpoint and continue where it left off "
             "(detection config and filters come from the checkpoint)",
    )
    parser.add_argument(
        "--max-batches", type=int, default=None,
        help="stop after N micro-batches (for testing restarts); "
             "exits with status 3 when interrupted",
    )
    parser.add_argument(
        "--no-warm-start", action="store_true",
        help="disable warm-start belief propagation (always cold)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="print every intra-day scoring update, not just day reports",
    )
    _add_intel_db_arguments(parser)
    _add_obs_arguments(parser)


def _add_fleet_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "fleet",
        help="run one detection engine per enterprise tenant above a "
             "shared intel plane (VT/WHOIS caches + cross-tenant priors)",
        description="Advance every tenant named in the manifest through "
                    "its log directory in day-barrier rounds.  Tenants "
                    "may mix pipelines (DNS and enterprise/proxy).  "
                    "Detections published by one tenant seed belief "
                    "propagation in the others from the next day on -- "
                    "across pipeline types; results are identical for "
                    "any --workers value.  Exit codes: 0 success, 2 bad "
                    "manifest/checkpoint, 3 interrupted (resume with "
                    "--resume).",
    )
    parser.add_argument(
        "manifest", type=Path,
        help="fleet manifest JSON (as written by 'generate --tenants N')",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="tenants advanced concurrently per round (default 1)",
    )
    parser.add_argument(
        "--executor", choices=("thread", "process", "resident"),
        default="thread",
        help="'thread' keeps engines in memory; 'process' runs real "
             "parallel workers with engine state carried through the "
             "per-tenant checkpoints; 'resident' runs long-lived worker "
             "processes whose engines stay in memory across rounds with "
             "delta checkpoints at the barriers (see the operations "
             "runbook for sizing guidance)",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=5.0,
        help="resident executor: seconds between worker liveness polls "
             "while awaiting a response (default 5.0); a worker that "
             "dies is respawned from its last checkpoint",
    )
    parser.add_argument(
        "--window-shards", type=int, default=1,
        help="resident executor: aggregate each DNS tenant's day through "
             "N host-hash window shards merged at the barrier "
             "(default 1 = serial ingest; detections are identical)",
    )
    parser.add_argument(
        "--checkpoint-dir", type=Path, default=None,
        help="directory for per-tenant checkpoints and the fleet state "
             "(enables --resume after an interruption)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="continue a checkpointed fleet run from its last completed "
             "round (requires --checkpoint-dir)",
    )
    parser.add_argument(
        "--max-rounds", type=int, default=None,
        help="stop after N day-barrier rounds (for testing restarts); "
             "exits with status 3 when interrupted",
    )
    parser.add_argument(
        "--json", type=Path, default=None,
        help="also write the full fleet report to this JSON file",
    )
    _add_intel_db_arguments(parser)
    _add_obs_arguments(parser)


def _add_intel_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "intel",
        help="inspect or maintain a durable intel store "
             "(as written by 'fleet --intel-db' / 'stream --intel-db')",
        description="Maintenance verbs for the SQLite intel store: "
                    "'stats' prints a JSON health document (size, "
                    "per-table row counts, pending writes), 'vacuum' "
                    "drops expired entries and compacts the file, "
                    "'export' dumps every stored record as JSON. "
                    "Exit codes: 0 success, 2 missing or corrupt store.",
    )
    parser.add_argument(
        "action", choices=("stats", "vacuum", "export"),
        help="what to do with the store",
    )
    parser.add_argument("db", type=Path, help="intel store path")


def _add_timing_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "timing",
        help="test a timestamp series (one float per line on stdin or a "
             "file) for automated C&C-like behaviour",
    )
    parser.add_argument(
        "series", nargs="?", type=Path, default=None,
        help="file with one epoch timestamp per line (default: stdin)",
    )
    parser.add_argument("--bin-width", type=float, default=10.0)
    parser.add_argument("--threshold", type=float, default=0.06)


def build_parser() -> argparse.ArgumentParser:
    """Build the repro-detect argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro-detect",
        description="Early-stage enterprise infection detection "
                    "(Oprea et al., DSN 2015 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_lanl_parser(subparsers)
    _add_enterprise_parser(subparsers)
    _add_generate_parser(subparsers)
    _add_run_parser(subparsers)
    _add_stream_parser(subparsers)
    _add_fleet_parser(subparsers)
    _add_intel_parser(subparsers)
    _add_timing_parser(subparsers)
    return parser


def _fail(message: str, *, json_mode: bool = False) -> int:
    """Uniform one-line failure: no traceback, exit status 2.

    With ``json_mode`` (the command ran with ``--log-json``) the error
    leaves through the structured logger as one JSON line on stderr,
    so log collectors see failures in the same shape as every other
    event.
    """
    if json_mode:
        import logging

        from .obs import configure_logging, get_logger, log_event

        configure_logging("error", json_mode=True)
        log_event(
            get_logger("cli"), "error",
            level=logging.ERROR, message=message,
        )
    else:
        print(f"error: {message}", file=sys.stderr)
    return 2


def _setup_obs(args):
    """Apply a command's obs flags; the run's registry (or ``None``).

    Logging stays off unless asked for; the metrics registry exists
    only when ``--metrics-out`` was given, so uninstrumented runs pay
    the NULL-registry path everywhere.
    """
    if args.log_level is not None or args.log_json:
        from .obs import configure_logging

        configure_logging(args.log_level or "info", json_mode=args.log_json)
    if args.metrics_out is None:
        return None
    from .obs.metrics import MetricsRegistry

    return MetricsRegistry()


def _write_metrics(metrics, path: Path) -> None:
    """Write the final snapshot: JSON at ``path``, text at ``.prom``."""
    import json

    snapshot = metrics.snapshot()
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot.as_dict(), indent=1) + "\n")
    prom_path = path.with_suffix(".prom")
    prom_path.write_text(snapshot.to_prom())
    print(f"metrics written to {path} and {prom_path}")


# ---------------------------------------------------------------------------
# Command implementations
# ---------------------------------------------------------------------------

def _run_lanl(args) -> int:
    from .eval import LanlChallengeSolver, render_table
    from .synthetic import generate_lanl_dataset
    from .synthetic.lanl import LanlConfig

    dataset = generate_lanl_dataset(
        LanlConfig(seed=args.seed, n_hosts=args.hosts,
                   bootstrap_days=args.bootstrap_days)
    )
    report = LanlChallengeSolver(dataset).solve_all()
    rows = []
    for case in (1, 2, 3, 4):
        train = report.counts_for(case, training=True)
        test = report.counts_for(case, training=False)
        rows.append((f"Case {case}", train.true_positives, test.true_positives,
                     train.false_positives, test.false_positives,
                     train.false_negatives, test.false_negatives))
    print(render_table(
        ("case", "TP(tr)", "TP(te)", "FP(tr)", "FP(te)", "FN(tr)", "FN(te)"),
        rows, title="LANL challenge results",
    ))
    overall = report.overall
    print(f"TDR={overall.tdr:.2%} FDR={overall.fdr:.2%} FNR={overall.fnr:.2%}")
    return 0


def _run_enterprise(args) -> int:
    from .eval import EnterpriseEvaluation, render_table
    from .synthetic import EnterpriseDatasetConfig, generate_enterprise_dataset

    dataset = generate_enterprise_dataset(
        EnterpriseDatasetConfig(
            seed=args.seed, n_hosts=args.hosts,
            operation_days=args.operation_days, n_campaigns=args.campaigns,
        )
    )
    evaluation = EnterpriseEvaluation(dataset)
    for title, sweep in (
        ("C&C sweep (Fig 6a)", evaluation.cc_sweep()),
        ("No-hint sweep (Fig 6b)", evaluation.no_hint_sweep()),
        ("SOC-hints sweep (Fig 6c)", evaluation.soc_hints_sweep()),
    ):
        rows = [
            (f"{p.threshold:.2f}", p.detected_count,
             p.breakdown.known_malicious, p.breakdown.new_malicious,
             p.breakdown.legitimate, f"{p.breakdown.tdr:.0%}")
            for p in sweep
        ]
        print(render_table(
            ("thr", "detected", "VT/SOC", "new", "legit", "TDR"),
            rows, title=title,
        ))
        print()
    if args.save_state is not None:
        from .state import save_detector

        save_detector(evaluation.detector, args.save_state)
        print(f"detector state saved to {args.save_state}")
    return 0


def _run_generate(args) -> int:
    from .logs import format_dns_line
    from .logs.netflow import format_netflow_line
    from .synthetic import generate_lanl_dataset
    from .synthetic.lanl import LanlConfig

    if args.tenants < 1:
        return _fail("--tenants must be positive")
    if args.enterprise_tenants and args.tenants < 2:
        return _fail(
            "--enterprise-tenants needs a fleet (--tenants N >= 2); use "
            "--pipeline enterprise for a single-tenant enterprise layout"
        )
    if not 0 <= args.enterprise_tenants < args.tenants:
        return _fail(
            "--enterprise-tenants must leave at least the lead tenant "
            "on the DNS path"
        )
    if args.pipeline == "enterprise" and args.tenants > 1:
        return _fail(
            "--pipeline enterprise writes a single-tenant layout; for "
            "mixed fleets use --tenants N --enterprise-tenants K"
        )
    if args.ct_siblings and args.tenants < 2:
        return _fail("--ct-siblings needs a fleet (--tenants N >= 2)")
    if args.ct_siblings < 0:
        return _fail("--ct-siblings must be non-negative")
    campaign = args.campaign
    if args.evasion and campaign is None:
        return _fail("--evasion requires --campaign")
    if campaign is not None:
        from .synthetic.campaigns import CAMPAIGN_NAMES, FLEET_CAMPAIGN_NAMES

        if not 0.0 <= args.evasion <= 1.0:
            return _fail("--evasion must be in [0, 1]")
        if campaign in FLEET_CAMPAIGN_NAMES:
            if args.tenants < 3:
                return _fail(
                    "--campaign tenant-churn needs --tenants N >= 3"
                )
            if args.days < 6:
                return _fail(
                    "--campaign tenant-churn needs --days >= 6 (the "
                    "joining tenant is hit on a later follower date)"
                )
        elif campaign in CAMPAIGN_NAMES:
            if args.tenants > 1:
                return _fail(
                    f"--campaign {campaign} is single-tenant; only "
                    "tenant-churn works with --tenants"
                )
            if args.netflow:
                return _fail("--netflow is not supported with --campaign")
        else:
            known = ", ".join(CAMPAIGN_NAMES + FLEET_CAMPAIGN_NAMES)
            return _fail(
                f"unknown campaign {campaign!r} (use one of {known})"
            )
    if args.tenants > 1:
        if args.netflow:
            return _fail("--netflow is not supported with --tenants")
        if args.days < 3:
            return _fail(
                "--tenants needs --days >= 3 (follower tenants are hit "
                "by the shared campaign on day 3)"
            )
        from .synthetic import (
            FleetScenarioConfig,
            generate_fleet_dataset,
            write_fleet_layout,
        )

        if campaign is not None:
            from dataclasses import replace

            from .synthetic import churn_fleet_config

            scenario = replace(
                churn_fleet_config(
                    strength=args.evasion,
                    seed=args.seed,
                    n_tenants=args.tenants,
                    tenant=LanlConfig(seed=args.seed, n_hosts=args.hosts),
                    enterprise_tenants=args.enterprise_tenants,
                ),
                ct_sibling_domains=args.ct_siblings,
            )
        else:
            scenario = FleetScenarioConfig(
                seed=args.seed,
                n_tenants=args.tenants,
                tenant=LanlConfig(seed=args.seed, n_hosts=args.hosts),
                enterprise_tenants=args.enterprise_tenants,
                ct_sibling_domains=args.ct_siblings,
            )
        fleet = generate_fleet_dataset(scenario)
        manifest_path = write_fleet_layout(fleet, args.output, days=args.days)
        for tenant_id in fleet.tenant_ids:
            pattern = (
                "proxy-*.log"
                if fleet.pipeline_of(tenant_id) == "enterprise"
                else "dns-*.log"
            )
            written = len(list((args.output / tenant_id).glob(pattern)))
            print(f"wrote {args.output / tenant_id}/ "
                  f"({written} daily logs, "
                  f"{fleet.pipeline_of(tenant_id)} pipeline)")
        print(f"wrote {manifest_path}")
        print(f"run it:  repro-detect fleet {manifest_path} --workers "
              f"{args.tenants}")
        return 0

    if args.pipeline == "enterprise":
        if args.netflow:
            return _fail("--netflow is not supported with --pipeline enterprise")
        from .synthetic import (
            EnterpriseDatasetConfig,
            generate_enterprise_dataset,
            write_enterprise_layout,
        )

        dataset = generate_enterprise_dataset(EnterpriseDatasetConfig(
            seed=args.seed,
            n_hosts=args.hosts,
            operation_days=max(args.days, 4),
            quiet_days=1,
        ))
        realized = _realize_cli_campaign(campaign, args, dataset)
        try:
            if realized is not None:
                from .intel.whois_db import save_whois_file
                from .synthetic.campaigns import campaign_proxy_records
                from .synthetic.fleet import (
                    _prejoined_proxy_records,
                    write_enterprise_tenant,
                )

                for domain, registered, expires in realized.whois_records:
                    dataset.whois.register(domain, registered, expires)

                def day_records(march_date):
                    day = dataset.config.bootstrap_days + (march_date - 1)
                    records = _prejoined_proxy_records(dataset, day)
                    records.extend(campaign_proxy_records(realized, day))
                    records.sort(key=lambda r: r.timestamp)
                    return records

                write_enterprise_tenant(
                    dataset, args.output, days=args.days,
                    day_records=day_records,
                )
                save_whois_file(dataset.whois, args.output / "whois.json")
            else:
                write_enterprise_layout(dataset, args.output, days=args.days)
        except ValueError as exc:
            return _fail(str(exc))
        _write_adversarial_truth(realized, args.output, dataset)
        print(f"wrote {args.output}/ ({args.days} daily proxy logs, "
              "model.json, whois.json)")
        print(f"run it:  repro-detect stream {args.output} "
              "--pipeline enterprise "
              f"--model-state {args.output / 'model.json'} "
              f"--whois {args.output / 'whois.json'} --bootstrap-files 0")
        return 0

    dataset = generate_lanl_dataset(
        LanlConfig(seed=args.seed, n_hosts=args.hosts)
    )
    realized = _realize_cli_campaign(campaign, args, dataset)
    args.output.mkdir(parents=True, exist_ok=True)
    for march_date in range(1, args.days + 1):
        records = dataset.day_records(march_date)
        if realized is not None:
            from .synthetic.campaigns import campaign_dns_records

            day = dataset.config.bootstrap_days + (march_date - 1)
            overlay = campaign_dns_records(realized, dataset.host_ips, day)
            if overlay:
                records = sorted(
                    records + overlay, key=lambda r: r.timestamp
                )
        day_path = args.output / f"dns-march-{march_date:02d}.log"
        with day_path.open("w") as handle:
            for record in records:
                handle.write(format_dns_line(record) + "\n")
        print(f"wrote {day_path}")
        if args.netflow:
            flow_path = args.output / f"netflow-march-{march_date:02d}.log"
            with flow_path.open("w") as handle:
                for flow in dataset.day_netflow(march_date):
                    handle.write(format_netflow_line(flow) + "\n")
            print(f"wrote {flow_path}")
    truth_path = args.output / "ground_truth.txt"
    with truth_path.open("w") as handle:
        for truth in dataset.campaigns:
            handle.write(
                f"3/{truth.march_date:02d} case{truth.case} "
                f"hints={','.join(truth.hint_hosts) or '-'} "
                f"domains={','.join(truth.malicious_domains)}\n"
            )
    print(f"wrote {truth_path}")
    _write_adversarial_truth(realized, args.output, dataset)
    return 0


def _realize_cli_campaign(campaign, args, dataset):
    """Realize a single-tenant adversarial campaign for ``generate``.

    The campaign starts on March 2 (the first post-bootstrap log file
    is still a clean training day), so a default layout's
    ``bootstrap_files=1`` run sees it on its first operational days.
    """
    if campaign is None:
        return None
    from .synthetic.campaigns import (
        AdversarialCampaignSpec,
        WorldView,
        realize_campaign,
    )

    spec = AdversarialCampaignSpec(
        campaign=campaign,
        strength=args.evasion,
        seed=args.seed,
        start_day=dataset.config.bootstrap_days + 1,
        duration_days=min(6 if campaign == "slow-burn" else 2,
                          max(args.days - 1, 1)),
        n_hosts=min(3, args.hosts),
    )
    return realize_campaign(WorldView.from_dataset(dataset), spec)


def _write_adversarial_truth(realized, output: Path, dataset) -> None:
    """Write the overlaid campaign's answers next to the layout."""
    if realized is None:
        return
    spec = realized.spec
    dates = ",".join(
        str(day - dataset.config.bootstrap_days + 1)
        for day in realized.active_days
    )
    truth_path = output / "adversarial_truth.txt"
    with truth_path.open("w") as handle:
        handle.write(
            f"campaign={spec.campaign} strength={spec.strength} "
            f"seed={spec.seed}\n"
        )
        handle.write(f"march_dates={dates}\n")
        handle.write(f"hosts={','.join(realized.hosts)}\n")
        handle.write(
            f"domains={','.join(sorted(realized.truth_domains()))}\n"
        )
    print(f"wrote {truth_path}")


def _run_run(args) -> int:
    from .eval.clusters import triage_report
    from .runner import run_directory

    metrics = _setup_obs(args)
    try:
        reports = run_directory(
            args.directory,
            bootstrap_files=args.bootstrap_files,
            pattern=args.pattern,
            internal_suffixes=tuple(args.internal_suffix),
            metrics=metrics,
        )
    except (ValueError, OSError) as exc:
        return _fail(str(exc), json_mode=args.log_json)
    all_detected: set[str] = set()
    for report in reports:
        print(
            f"{report.path.name}: {report.records} records, "
            f"{len(report.rare_domains)} rare, "
            f"C&C={sorted(report.cc_domains) or '-'}, "
            f"detected={report.detected or '-'}"
        )
        all_detected.update(report.detected)
    if all_detected:
        print()
        print(triage_report(all_detected))
    if metrics is not None:
        _write_metrics(metrics, args.metrics_out)
    return 0


def _run_stream(args) -> int:
    from .eval.clusters import triage_report
    from .state import StateError
    from .streaming import (
        WarmStartConfig,
        replay_directory,
        replay_enterprise_directory,
    )

    def on_update(update) -> None:
        if args.verbose and update.detected:
            print(
                f"  [day {update.day} +{update.events_today} ev] "
                f"{update.mode}: detected={list(update.detected)}"
            )

    metrics = _setup_obs(args)
    if args.resume and args.checkpoint is None:
        return _fail("--resume requires --checkpoint",
                     json_mode=args.log_json)
    if args.intel_ttl_days is not None and args.intel_db is None:
        return _fail("--intel-ttl-days requires --intel-db",
                     json_mode=args.log_json)
    enterprise = args.pipeline == "enterprise"
    if enterprise and args.model_state is None:
        return _fail(
            "--pipeline enterprise requires --model-state (a trained "
            "detector JSON; see 'generate --pipeline enterprise')",
            json_mode=args.log_json,
        )
    if not enterprise and args.model_state is not None:
        return _fail("--model-state is only valid with --pipeline enterprise",
                     json_mode=args.log_json)
    if not enterprise and args.whois is not None:
        return _fail("--whois is only valid with --pipeline enterprise",
                     json_mode=args.log_json)
    if enterprise and args.internal_suffix:
        return _fail(
            "--internal-suffix applies to the DNS reduction funnel only "
            "(enterprise proxy logs arrive pre-joined)",
            json_mode=args.log_json,
        )
    store = None
    if args.intel_db is not None:
        from .intelstore import IntelStore, IntelStoreError

        try:
            store = IntelStore(
                args.intel_db,
                ttl_seconds=(
                    args.intel_ttl_days * 86_400.0
                    if args.intel_ttl_days is not None else None
                ),
            )
        except IntelStoreError as exc:
            return _fail(str(exc), json_mode=args.log_json)
        if metrics is not None:
            store.bind_metrics(metrics)
    pattern = args.pattern or ("proxy-*.log" if enterprise else "dns-*.log")
    shared = dict(
        bootstrap_files=args.bootstrap_files,
        pattern=pattern,
        batch_size=args.batch_size,
        score_every=args.score_every,
        warm=WarmStartConfig(enabled=not args.no_warm_start),
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        max_batches=args.max_batches,
        on_update=on_update,
        metrics=metrics,
    )
    try:
        if enterprise:
            whois_cache = None
            if store is not None:
                # The store-backed registry hydrates previously
                # persisted WHOIS/RDAP facts and write-behinds novel
                # lookups -- repeat runs stop re-resolving.
                from .intelstore import StoreCachingWhois
                from .intelstore.rdap import load_registration_registry

                registry = (
                    load_registration_registry(args.whois)
                    if args.whois is not None else None
                )
                whois_cache = StoreCachingWhois(store, registry)
            result = replay_enterprise_directory(
                args.directory,
                model_state=args.model_state,
                whois_path=args.whois if whois_cache is None else None,
                whois=whois_cache,
                **shared,
            )
        else:
            result = replay_directory(
                args.directory,
                internal_suffixes=tuple(args.internal_suffix),
                **shared,
            )
    except (ValueError, OSError, StateError) as exc:
        return _fail(str(exc), json_mode=args.log_json)
    if store is not None:
        from .fleet.workers import _scored_detections
        from .intelstore import IntelStoreError

        try:
            for report in result.reports:
                for domain, score in _scored_detections(report).items():
                    store.record_profile("stream", domain, report.day, score)
            flushed = store.flush()
            store.close()
        except IntelStoreError as exc:
            return _fail(str(exc), json_mode=args.log_json)
        print(f"intel store: {flushed} rows flushed to {args.intel_db}")
    all_detected: set[str] = set()
    for report in result.reports:
        print(
            f"day {report.day}: {report.records} records, "
            f"{len(report.rare_domains)} rare, "
            f"C&C={sorted(report.cc_domains) or '-'}, "
            f"detected={report.detected or '-'}"
        )
        all_detected.update(report.detected)
    if metrics is not None:
        # Interrupted runs dump their partial snapshot too -- the next
        # --resume restores it from the checkpoint and keeps counting.
        _write_metrics(metrics, args.metrics_out)
    if result.interrupted:
        print(
            f"interrupted after {result.batches} micro-batches"
            + (f"; resume with --resume --checkpoint {args.checkpoint}"
               if args.checkpoint else "")
        )
        return 3
    if all_detected:
        print()
        print(triage_report(all_detected))
    return 0


def _run_fleet(args) -> int:
    import json

    from .fleet import (
        FleetError,
        FleetManager,
        ManifestError,
        load_manifest,
    )
    from .state import StateError

    from .intelstore import IntelStoreError

    metrics = _setup_obs(args)
    if args.intel_ttl_days is not None and args.intel_db is None:
        return _fail("--intel-ttl-days requires --intel-db",
                     json_mode=args.log_json)
    try:
        manifest = load_manifest(args.manifest)
        manager = FleetManager.from_manifest(
            manifest,
            workers=args.workers,
            executor=args.executor,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            heartbeat=args.heartbeat,
            window_shards=args.window_shards,
            metrics=metrics,
            intel_db=args.intel_db,
            intel_ttl_days=args.intel_ttl_days,
        )
        report = manager.run(max_rounds=args.max_rounds)
    except (ManifestError, FleetError, StateError, IntelStoreError,
            OSError) as exc:
        return _fail(str(exc), json_mode=args.log_json)
    print(report.render())
    if metrics is not None:
        _write_metrics(metrics, args.metrics_out)
    if args.json is not None:
        try:
            args.json.write_text(
                json.dumps(report.as_dict(), indent=1) + "\n"
            )
        except OSError as exc:
            return _fail(str(exc), json_mode=args.log_json)
        print(f"\nreport written to {args.json}")
    if report.interrupted:
        print(
            f"interrupted after {args.max_rounds} rounds"
            + (f"; resume with --resume --checkpoint-dir "
               f"{args.checkpoint_dir}" if args.checkpoint_dir else "")
        )
        return 3
    return 0


def _run_intel(args) -> int:
    import json

    from .intelstore import IntelStore, IntelStoreError, export_json

    if not args.db.is_file():
        return _fail(f"intel store not found: {args.db}")
    try:
        store = IntelStore(args.db)
        if args.action == "stats":
            print(json.dumps(store.stats_document(), indent=1))
        elif args.action == "vacuum":
            dropped = store.purge_expired()
            store.vacuum()
            document = store.stats_document()
            print(
                f"dropped {dropped} expired entries; "
                f"{document['size_bytes']} bytes on disk"
            )
        else:
            print(export_json(store))
        store.close()
    except IntelStoreError as exc:
        return _fail(str(exc))
    return 0


def _run_timing(args) -> int:
    from .config import HistogramConfig
    from .timing import AutomationDetector

    if args.series is not None:
        lines = args.series.read_text().splitlines()
    else:
        lines = sys.stdin.read().splitlines()
    try:
        timestamps = sorted(float(line) for line in lines if line.strip())
    except ValueError:
        print("error: series must contain one float per line", file=sys.stderr)
        return 2
    detector = AutomationDetector(
        HistogramConfig(bin_width=args.bin_width,
                        jeffrey_threshold=args.threshold)
    )
    verdict = detector.test_series("cli", "cli", timestamps)
    print(f"connections:  {verdict.connections}")
    print(f"divergence:   {verdict.divergence:.4f} (threshold {args.threshold})")
    if verdict.period:
        print(f"period:       {verdict.period:.1f} s")
    print(f"automated:    {'YES' if verdict.automated else 'no'}")
    return 0 if verdict.automated else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "lanl": _run_lanl,
        "enterprise": _run_enterprise,
        "generate": _run_generate,
        "run": _run_run,
        "stream": _run_stream,
        "fleet": _run_fleet,
        "intel": _run_intel,
        "timing": _run_timing,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
