"""End-to-end enterprise detection pipeline (Section III-E, Figure 1).

:class:`EnterpriseDetector` glues the substrates together in exactly
the paper's two phases:

**Training** (one month of logs):

1. normalize + reduce (done upstream, the detector consumes
   :class:`~repro.logs.records.Connection` streams);
2. profile destination and user-agent histories;
3. customize the C&C detector: collect rare automated domains over the
   later training days, label them through VirusTotal, fit the
   six-feature linear model and keep threshold ``Tc``;
4. customize similarity scoring: starting from hosts contacting
   VT-confirmed C&C domains, collect rare (non-automated) domains they
   visit, fit the eight-feature model and keep threshold ``Ts``.

**Operation** (daily):

1. build the day's traffic aggregate, extract rare destinations;
2. run the automation detector over rare (host, domain) series;
3. score automated rare domains; those above ``Tc`` are potential C&C;
4. run belief propagation in the no-hint mode (seeded by today's C&C
   detections) and, when IOC seeds are supplied, the SOC-hints mode;
5. commit the day's observations into the histories.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence, Set
from dataclasses import dataclass, field

from ..config import SystemConfig
from ..features.extract import (
    CC_FEATURE_NAMES,
    SIMILARITY_FEATURE_NAMES,
    FeatureExtractor,
)
from ..features.regression import LinearModel, fit_linear_model
from ..features.whois import WhoisFeatureExtractor
from ..intel.virustotal import VirusTotalOracle
from ..intel.whois_db import WhoisDatabase
from ..logs.records import Connection
from ..profiling.history import DestinationHistory
from ..profiling.rare import (
    DailyTraffic,
    extract_rare_domains,
    rare_domains_by_host,
)
from ..profiling.ua import UserAgentHistory
from ..timing.detector import AutomationDetector, AutomationVerdict
from .beliefprop import BeliefPropagationResult, belief_propagation
from .scoring import (
    BatchedSimilarityScorer,
    RegressionCCScorer,
    RegressionSimilarityScorer,
    ScoredDomain,
)

#: Parity-only path: ``detect_on_enterprise_traffic(...,
#: use_index=False)`` keeps the legacy per-domain feature extraction
#: and similarity scoring purely as the reference the indexed/batched
#: path is pinned against (``pytest -m parity``).  Production always
#: runs ``use_index=True``; the legacy branch is kept green only for
#: those tests and is slated for retirement (ROADMAP).
_parity = "detect_on_enterprise_traffic(use_index=False)"

DailyBatch = tuple[int, Sequence[Connection]]


@dataclass
class DayResult:
    """Everything the system produced for one operational day."""

    day: int
    rare_domains: set[str]
    automated_verdicts: list[AutomationVerdict]
    cc_domains: list[ScoredDomain]
    no_hint: BeliefPropagationResult | None = None
    soc_hints: BeliefPropagationResult | None = None
    intel_seeded: set[str] = field(default_factory=set)
    """Rare domains seeded from shared intelligence (fleet mode)."""

    ct_seeded: set[str] = field(default_factory=set)
    """Rare domains pulled in through CT SAN-pivot sibling edges."""

    stage_seconds: dict[str, float] = field(default_factory=dict)
    """Wall-clock seconds per detection stage (``automation``, ``cc``,
    ``bp``); always measured, observability only."""

    @property
    def cc_domain_names(self) -> set[str]:
        return {scored.domain for scored in self.cc_domains}

    def all_detected_domains(self) -> set[str]:
        """Union of both modes' detections (seeds included only for
        intel- and CT-seeded domains, which are detections in their
        own right) plus C&C hits."""
        detected = (
            set(self.cc_domain_names)
            | set(self.intel_seeded)
            | set(self.ct_seeded)
        )
        for result in (self.no_hint, self.soc_hints):
            if result is not None:
                detected.update(result.detected_domains)
        return detected


@dataclass
class TrainingReport:
    """Summary of what training produced, for inspection and tests."""

    profiled_days: int = 0
    history_size: int = 0
    ua_count: int = 0
    automated_domain_samples: int = 0
    cc_model: LinearModel | None = None
    similarity_samples: int = 0
    similarity_model: LinearModel | None = None


class EnterpriseDetector:
    """The full training + daily-operation detection system."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        whois: WhoisDatabase | None = None,
    ) -> None:
        self.config = config or SystemConfig()
        self.history = DestinationHistory()
        self.ua_history = UserAgentHistory(
            rare_max_hosts=self.config.rarity.rare_ua_max_hosts
        )
        whois_features = WhoisFeatureExtractor(whois) if whois is not None else None
        self.extractor = FeatureExtractor(self.ua_history, whois_features)
        self.automation = AutomationDetector(self.config.histogram)
        self.cc_scorer: RegressionCCScorer | None = None
        self.similarity_scorer: RegressionSimilarityScorer | None = None
        self.report = TrainingReport()

    # ------------------------------------------------------------------
    # Training phase
    # ------------------------------------------------------------------

    def train(
        self,
        batches: Sequence[DailyBatch],
        virustotal: VirusTotalOracle,
        *,
        model_days: int = 14,
    ) -> TrainingReport:
        """Run the full training phase over one month of daily batches.

        The first pass profiles histories chronologically.  The last
        ``model_days`` days are then replayed to collect labeled
        feature samples for the two regression models, mirroring the
        paper's "two weeks" of labeled automated domains.
        """
        ordered = sorted(batches, key=lambda item: item[0])
        split = max(len(ordered) - model_days, 1)
        profile_only, model_batches = ordered[:split], ordered[split:]

        for day, connections in profile_only:
            self._profile_day(day, connections)
        self.report.profiled_days = len(profile_only)

        cc_rows: list[tuple[Sequence[float], float]] = []
        sim_rows: list[tuple[Sequence[float], float]] = []
        for day, connections in model_batches:
            traffic, rare = self._aggregate_day(day, connections)
            when = (day + 1) * 86_400.0
            verdicts = self._automation_verdicts(traffic, rare)
            auto_hosts = _automated_hosts_by_domain(verdicts)

            for domain in sorted(auto_hosts):
                features = self.extractor.cc_features(
                    domain, traffic, auto_hosts[domain], when
                )
                label = 1.0 if virustotal.is_reported(domain) else 0.0
                cc_rows.append((features.as_vector(), label))

            sim_rows.extend(
                self._similarity_samples(traffic, rare, auto_hosts, virustotal, when)
            )
            self._profile_day(day, connections)
            self.report.profiled_days += 1

        self.report.history_size = len(self.history)
        self.report.ua_count = len(self.ua_history)

        if len(cc_rows) >= len(CC_FEATURE_NAMES) + 2:
            matrix = [row for row, _ in cc_rows]
            labels = [label for _, label in cc_rows]
            model = fit_linear_model(
                CC_FEATURE_NAMES, matrix, labels,
                ridge=self.config.regression_ridge,
            )
            self.cc_scorer = RegressionCCScorer(
                model,
                self.extractor,
                threshold=self.config.belief_propagation.cc_score_threshold,
            )
            self.report.cc_model = model
            self.report.automated_domain_samples = len(cc_rows)

        if len(sim_rows) >= len(SIMILARITY_FEATURE_NAMES) + 2:
            matrix = [row for row, _ in sim_rows]
            labels = [label for _, label in sim_rows]
            model = fit_linear_model(
                SIMILARITY_FEATURE_NAMES, matrix, labels,
                ridge=self.config.regression_ridge,
            )
            self.similarity_scorer = RegressionSimilarityScorer(model, self.extractor)
            self.report.similarity_model = model
            self.report.similarity_samples = len(sim_rows)

        return self.report

    def _similarity_samples(
        self,
        traffic: DailyTraffic,
        rare: set[str],
        auto_hosts: dict[str, set[str]],
        virustotal: VirusTotalOracle,
        when: float,
        *,
        negatives_per_day: int = 12,
    ) -> list[tuple[Sequence[float], float]]:
        """Labeled similarity rows (Section VI-A, "Domain similarity").

        Compromised hosts are those contacting VT-confirmed automated
        domains; every rare non-automated domain they visit becomes a
        sample, scored against the confirmed set and labeled by VT.

        Scale adaptation: the paper's 100k-host enterprise yields
        abundant co-visited domains; at simulator scale we additionally
        draw up to ``negatives_per_day`` rare domains *not* touching
        the compromised set so the regression sees enough clearly
        benign rows (their timing/IP features are zero by definition).
        """
        confirmed = {
            domain for domain in auto_hosts if virustotal.is_reported(domain)
        }
        if not confirmed:
            return []
        compromised: set[str] = set()
        for domain in confirmed:
            compromised.update(traffic.hosts_by_domain.get(domain, ()))
        rows: list[tuple[Sequence[float], float]] = []
        untouched: list[str] = []
        for domain in sorted(rare - set(auto_hosts)):
            hosts = traffic.hosts_by_domain.get(domain, set())
            if not hosts & compromised:
                untouched.append(domain)
                continue
            features = self.extractor.similarity_features(
                domain, confirmed, traffic, when
            )
            label = 1.0 if virustotal.is_reported(domain) else 0.0
            rows.append((features.as_vector(), label))
        for domain in untouched[:negatives_per_day]:
            features = self.extractor.similarity_features(
                domain, confirmed, traffic, when
            )
            label = 1.0 if virustotal.is_reported(domain) else 0.0
            rows.append((features.as_vector(), label))
        return rows

    # ------------------------------------------------------------------
    # Daily operation
    # ------------------------------------------------------------------

    def process_day(
        self,
        day: int,
        connections: Sequence[Connection],
        *,
        soc_seed_domains: Iterable[str] = (),
        intel_domains: Set[str] = frozenset(),
        update_profiles: bool = True,
    ) -> DayResult:
        """Run the four daily operation stages on one day of traffic."""
        if self.cc_scorer is None or self.similarity_scorer is None:
            raise RuntimeError("detector must be trained before operation")

        traffic, rare = self._aggregate_day(day, connections)
        result = detect_on_enterprise_traffic(
            traffic,
            rare,
            day=day,
            automation=self.automation,
            cc_scorer=self.cc_scorer,
            similarity_scorer=self.similarity_scorer,
            config=self.config,
            soc_seed_domains=soc_seed_domains,
            intel_domains=intel_domains,
        )
        if update_profiles:
            self._profile_day(day, connections)
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _aggregate_day(
        self, day: int, connections: Sequence[Connection]
    ) -> tuple[DailyTraffic, set[str]]:
        traffic = DailyTraffic(day)
        traffic.ingest(connections, ua_is_rare=self.ua_history.is_rare)
        traffic.finalize()
        rare = extract_rare_domains(
            traffic,
            self.history,
            unpopular_max_hosts=self.config.rarity.unpopular_max_hosts,
        )
        return traffic, rare

    def _automation_verdicts(
        self, traffic: DailyTraffic, rare: set[str]
    ) -> list[AutomationVerdict]:
        """Automation test restricted to rare domains (Section IV-C)."""
        return self.automation.automated_pairs(traffic.rare_series(rare))

    def _profile_day(self, day: int, connections: Sequence[Connection]) -> None:
        """Stage and commit one day into the histories (end of day)."""
        for conn in connections:
            self.history.stage(conn.domain, day)
            self.ua_history.stage(conn.user_agent, conn.host)
        self.history.commit_day(day)
        self.ua_history.commit_day()


def detect_on_enterprise_traffic(
    traffic: DailyTraffic,
    rare: set[str],
    *,
    day: int,
    automation: AutomationDetector,
    cc_scorer: RegressionCCScorer,
    similarity_scorer: RegressionSimilarityScorer,
    config: SystemConfig,
    soc_seed_domains: Iterable[str] = (),
    intel_domains: Set[str] = frozenset(),
    ct_edges=None,
    use_index: bool = True,
    metrics=None,
) -> DayResult:
    """The enterprise-path daily detection stages on one day of traffic.

    This is the single implementation both the batch
    :meth:`EnterpriseDetector.process_day` and the streaming engine
    (:class:`repro.streaming.StreamingEnterpriseDetector`) run at end
    of day, so streaming replay is batch-identical by construction --
    the enterprise analogue of :func:`repro.runner.detect_on_traffic`:
    automation test over rare (host, domain) series, regression C&C
    scoring above ``Tc``, then belief propagation seeded by today's
    C&C detections (no-hint mode) and, separately, by SOC hint domains.

    ``intel_domains`` carries externally confirmed malicious domains
    (a fleet's shared intel plane, a SOC blocklist).  Those that are
    *rare today* enter the no-hint belief propagation as seed labels --
    the paper's community-feedback amplification: a domain confirmed in
    one enterprise elevates the prior everywhere it appears, even where
    local evidence (a single beaconing host, say, below the regression
    model's connectivity signal) would not fire ``Detect_C&C`` alone.

    ``ct_edges`` is an optional :class:`repro.intelstore.ct.CtIndex`:
    rare domains reachable from the no-hint seeds through shared
    certificates join the seed set (reported as ``ct_seeded``), and
    both BP runs receive a rare-restricted SAN-pivot sibling map for
    frontier extension.  ``None`` (the default) is byte-identical to a
    build without the parameter.

    ``use_index`` routes each belief-propagation run through the day's
    :class:`~repro.profiling.index.TrafficIndex` and a fresh
    :class:`~repro.core.scoring.BatchedSimilarityScorer` (one per run:
    its incremental state tracks that run's growing malicious set);
    ``False`` keeps the legacy per-domain feature extraction.  Both
    produce identical detections -- the parity the randomized tests
    assert -- including identical WHOIS imputation state evolution.
    """
    from ..obs.metrics import NULL_METRICS

    obs = metrics if metrics is not None else NULL_METRICS
    stage_seconds: dict[str, float] = {}
    when = (day + 1) * 86_400.0
    with obs.span("detect_automation") as automation_span:
        verdicts = automation.automated_pairs(traffic.rare_series(rare))
        auto_hosts = _automated_hosts_by_domain(verdicts)
    stage_seconds["automation"] = automation_span.elapsed

    with obs.span("detect_cc") as cc_span:
        cc_domains: list[ScoredDomain] = []
        candidates = sorted(auto_hosts)
        scores = cc_scorer.score_all(candidates, traffic, auto_hosts, when)
        for domain, score in zip(candidates, scores):
            if score >= cc_scorer.threshold:
                cc_domains.append(ScoredDomain(domain, score))
        cc_domains.sort(key=lambda s: (-s.score, s.domain))
        cc_set = {scored.domain for scored in cc_domains}
    stage_seconds["cc"] = cc_span.elapsed
    intel_seeded = set(intel_domains) & rare

    ct_seeded: set[str] = set()
    sibling_dom = None
    if ct_edges is not None:
        from ..intelstore.ct import expand_ct_seeds, sibling_map

        ct_seeded = expand_ct_seeds(cc_set | intel_seeded, rare, ct_edges)
        sibling_dom = sibling_map(ct_edges, rare)

    if use_index:
        index = traffic.index()
        dom_host, host_rdom = traffic.bp_views(rare)
    else:
        index = None
        host_rdom = rare_domains_by_host(traffic, rare)
        dom_host = {
            domain: frozenset(traffic.hosts_by_domain.get(domain, ()))
            for domain in rare
        }

    def detect_cc(domain: str) -> bool:
        return domain in cc_set

    def scoring_kwargs() -> dict:
        """Similarity scoring for one BP run: a fresh batched scorer
        per run (its state follows that run's malicious set), or the
        legacy per-domain callable."""
        if index is None:
            return {
                "similarity_score":
                    lambda domain, malicious:
                        similarity_scorer.score(
                            domain, malicious, traffic, when
                        ),
            }
        batched = BatchedSimilarityScorer(
            similarity_scorer, traffic, when, index=index
        )
        return {"score_frontier": batched.score_frontier}

    result = DayResult(
        day=day,
        rare_domains=rare,
        automated_verdicts=verdicts,
        cc_domains=cc_domains,
        intel_seeded=intel_seeded,
        ct_seeded=ct_seeded,
    )

    with obs.span("detect_bp") as bp_span:
        no_hint_seeds = cc_set | intel_seeded | ct_seeded
        if no_hint_seeds:
            seed_hosts: set[str] = set()
            for domain in no_hint_seeds:
                seed_hosts.update(traffic.hosts_by_domain.get(domain, ()))
            result.no_hint = belief_propagation(
                seed_hosts,
                no_hint_seeds,
                dom_host=dom_host,
                host_rdom=host_rdom,
                detect_cc=detect_cc,
                config=config.belief_propagation,
                sibling_dom=sibling_dom,
                metrics=metrics,
                **scoring_kwargs(),
            )

        soc_seeds = {
            d for d in soc_seed_domains if d in traffic.hosts_by_domain
        }
        if soc_seeds:
            seed_hosts = set()
            for domain in soc_seeds:
                seed_hosts.update(traffic.hosts_by_domain.get(domain, ()))
            result.soc_hints = belief_propagation(
                seed_hosts,
                soc_seeds,
                dom_host=dom_host,
                host_rdom=host_rdom,
                detect_cc=detect_cc,
                config=config.belief_propagation,
                sibling_dom=sibling_dom,
                metrics=metrics,
                **scoring_kwargs(),
            )
    if no_hint_seeds or soc_seeds:
        stage_seconds["bp"] = bp_span.elapsed

    result.stage_seconds = stage_seconds
    return result


def _automated_hosts_by_domain(
    verdicts: Iterable[AutomationVerdict],
) -> dict[str, set[str]]:
    by_domain: dict[str, set[str]] = defaultdict(set)
    for verdict in verdicts:
        if verdict.automated:
            by_domain[verdict.domain].add(verdict.host)
    return dict(by_domain)
