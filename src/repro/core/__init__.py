"""Core contribution: belief propagation, scorers, detection pipeline."""

from .beliefprop import (
    BeliefPropagationResult,
    Detection,
    IterationTrace,
    belief_propagation,
)
from .graph import InfectionGraph, Label, NodeKind, NodeRecord
from .pipeline import DayResult, EnterpriseDetector, TrainingReport
from .scoring import (
    AdditiveSimilarityScorer,
    RegressionCCScorer,
    RegressionSimilarityScorer,
    ScoredDomain,
    multi_host_beacon_heuristic,
)

__all__ = [
    "BeliefPropagationResult",
    "Detection",
    "IterationTrace",
    "belief_propagation",
    "InfectionGraph",
    "Label",
    "NodeKind",
    "NodeRecord",
    "DayResult",
    "EnterpriseDetector",
    "TrainingReport",
    "AdditiveSimilarityScorer",
    "RegressionCCScorer",
    "RegressionSimilarityScorer",
    "ScoredDomain",
    "multi_host_beacon_heuristic",
]
