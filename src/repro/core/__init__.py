"""Core contribution: belief propagation, scorers, detection pipeline."""

from .beliefprop import (
    BeliefPropagationResult,
    Detection,
    IterationTrace,
    belief_propagation,
)
from .graph import InfectionGraph, Label, NodeKind, NodeRecord
from .pipeline import (
    DayResult,
    EnterpriseDetector,
    TrainingReport,
    detect_on_enterprise_traffic,
)
from .scoring import (
    AdditiveSimilarityScorer,
    RegressionCCScorer,
    RegressionSimilarityScorer,
    ScoredDomain,
    multi_host_beacon_heuristic,
)

__all__ = [
    "BeliefPropagationResult",
    "Detection",
    "IterationTrace",
    "belief_propagation",
    "InfectionGraph",
    "Label",
    "NodeKind",
    "NodeRecord",
    "DayResult",
    "EnterpriseDetector",
    "TrainingReport",
    "detect_on_enterprise_traffic",
    "AdditiveSimilarityScorer",
    "RegressionCCScorer",
    "RegressionSimilarityScorer",
    "ScoredDomain",
    "multi_host_beacon_heuristic",
]
