"""Domain scorers: regression-weighted (enterprise) and additive (LANL).

Two interchangeable scorer families plug into belief propagation:

* :class:`RegressionCCScorer` / :class:`RegressionSimilarityScorer` --
  the enterprise path (Sections IV-C, IV-D): features weighted by a
  trained linear model.
* :class:`AdditiveSimilarityScorer` and
  :func:`multi_host_beacon_heuristic` -- the LANL path (Section V-B),
  where registration and HTTP features do not exist and training data
  is too scarce for regression: a normalized additive score over
  connectivity, timing and IP proximity, and the "two hosts beaconing
  in sync" C&C heuristic.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..features.extract import FeatureExtractor
from ..features.regression import LinearModel
from ..profiling.rare import DailyTraffic
from ..timing.detector import AutomationVerdict


@dataclass(frozen=True)
class ScoredDomain:
    """A domain with its computed suspiciousness score."""

    domain: str
    score: float


class RegressionCCScorer:
    """Scores rare automated domains with the trained C&C model."""

    def __init__(
        self,
        model: LinearModel,
        extractor: FeatureExtractor,
        threshold: float = 0.4,
    ) -> None:
        self.model = model
        self.extractor = extractor
        self.threshold = threshold

    def score(
        self,
        domain: str,
        traffic: DailyTraffic,
        automated_hosts: set[str],
        when: float,
    ) -> float:
        """Regression C&C score for a domain's automated hosts at ``when``."""
        features = self.extractor.cc_features(domain, traffic, automated_hosts, when)
        return self.model.score(features.as_vector())

    def is_cc(
        self,
        domain: str,
        traffic: DailyTraffic,
        automated_hosts: set[str],
        when: float,
    ) -> bool:
        """``Detect_C&C``: automated connections + score above ``Tc``."""
        if not automated_hosts:
            return False
        return self.score(domain, traffic, automated_hosts, when) >= self.threshold


class RegressionSimilarityScorer:
    """Scores rare domains against the labeled-malicious set."""

    def __init__(self, model: LinearModel, extractor: FeatureExtractor) -> None:
        self.model = model
        self.extractor = extractor

    def score(
        self,
        domain: str,
        malicious: set[str],
        traffic: DailyTraffic,
        when: float,
    ) -> float:
        """Regression similarity of ``domain`` to the malicious set."""
        features = self.extractor.similarity_features(
            domain, malicious, traffic, when
        )
        return self.model.score(features.as_vector())


class AdditiveSimilarityScorer:
    """LANL additive similarity score (Section V-B).

    Three components, summed then normalized by the maximum possible
    sum so the score lies in [0, 1]:

    * connectivity: hosts contacting the domain, scaled to [0, 1];
    * timing: 1 when the domain was first contacted within
      ``timing_window`` of a malicious domain by the same host;
    * IP proximity: 2 for sharing a /24 with a malicious domain, 1 for
      a /16, 0 otherwise.
    """

    MAX_COMPONENT_SUM = 4.0  # 1 (connectivity) + 1 (timing) + 2 (IP/24)

    def __init__(
        self,
        extractor: FeatureExtractor | None = None,
        *,
        timing_window: float = 600.0,
        host_cap: int = 10,
    ) -> None:
        self.extractor = extractor or FeatureExtractor()
        self.timing_window = timing_window
        self.host_cap = host_cap

    def components(
        self, domain: str, malicious: set[str], traffic: DailyTraffic
    ) -> tuple[float, float, float]:
        """(connectivity, timing, ip) raw components."""
        hosts = len(traffic.hosts_by_domain.get(domain, ()))
        connectivity = min(hosts, self.host_cap) / self.host_cap
        gap = FeatureExtractor.min_visit_gap(domain, malicious, traffic)
        timing = 1.0 if gap is not None and gap <= self.timing_window else 0.0
        ip24, ip16 = FeatureExtractor.subnet_proximity(domain, malicious, traffic)
        if ip24:
            ip = 2.0
        elif ip16:
            ip = 1.0
        else:
            ip = 0.0
        return connectivity, timing, ip

    def score(
        self,
        domain: str,
        malicious: set[str],
        traffic: DailyTraffic,
        when: float = 0.0,
    ) -> float:
        """Additive (feature-count) similarity score in [0, 1]."""
        connectivity, timing, ip = self.components(domain, malicious, traffic)
        return (connectivity + timing + ip) / self.MAX_COMPONENT_SUM


def multi_host_beacon_heuristic(
    domain: str,
    verdicts: Sequence[AutomationVerdict],
    traffic: DailyTraffic,
    *,
    sync_window: float = 10.0,
    min_hosts: int = 2,
) -> bool:
    """LANL C&C heuristic (Section V-B).

    A rare automated domain is potential C&C when at least ``min_hosts``
    distinct hosts beacon to it *at similar time periods* -- their
    inferred periods differ by at most ``sync_window`` seconds.  This
    works on LANL because every simulated campaign infects multiple
    hosts; the enterprise regression scorer handles the single-host
    case.
    """
    periods = [
        v.period for v in verdicts if v.domain == domain and v.automated
    ]
    if len(periods) < min_hosts:
        return False
    periods.sort()
    # Any pair within the window qualifies; with sorted periods the
    # closest pairs are adjacent.
    return any(
        later - earlier <= sync_window
        for earlier, later in zip(periods, periods[1:])
    )
