"""Domain scorers: regression-weighted (enterprise) and additive (LANL).

Two interchangeable scorer families plug into belief propagation:

* :class:`RegressionCCScorer` / :class:`RegressionSimilarityScorer` --
  the enterprise path (Sections IV-C, IV-D): features weighted by a
  trained linear model.
* :class:`AdditiveSimilarityScorer` and
  :func:`multi_host_beacon_heuristic` -- the LANL path (Section V-B),
  where registration and HTTP features do not exist and training data
  is too scarce for regression: a normalized additive score over
  connectivity, timing and IP proximity, and the "two hosts beaconing
  in sync" C&C heuristic.

Each family also ships an *incremental frontier scorer* for the
belief-propagation hot path (:class:`IncrementalAdditiveScorer`,
:class:`BatchedSimilarityScorer`).  Rescoring every frontier domain
against the entire malicious set each iteration is
O(iterations x frontier x malicious); because Algorithm 1 is monotone
(domains only ever *enter* the malicious set) and its timing/subnet
similarity components are min/max aggregates, the incremental scorers
fold in only the domains labeled since the previous iteration and
reproduce the per-domain scorers' results exactly -- the parity the
randomized tests and ``bench_bp_scale`` assert.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections.abc import Iterable, Mapping, Sequence, Set
from dataclasses import dataclass

import numpy as np

from ..features.extract import (
    SIMILARITY_FEATURE_NAMES,
    FeatureExtractor,
    timing_closeness,
)
from ..features.regression import LinearModel
from ..profiling.index import TrafficIndex
from ..profiling.rare import DailyTraffic
from ..timing.detector import AutomationVerdict


@dataclass(frozen=True)
class ScoredDomain:
    """A domain with its computed suspiciousness score."""

    domain: str
    score: float


class RegressionCCScorer:
    """Scores rare automated domains with the trained C&C model."""

    def __init__(
        self,
        model: LinearModel,
        extractor: FeatureExtractor,
        threshold: float = 0.4,
    ) -> None:
        self.model = model
        self.extractor = extractor
        self.threshold = threshold

    def score(
        self,
        domain: str,
        traffic: DailyTraffic,
        automated_hosts: set[str],
        when: float,
    ) -> float:
        """Regression C&C score for a domain's automated hosts at ``when``."""
        features = self.extractor.cc_features(domain, traffic, automated_hosts, when)
        return self.model.score(features.as_vector())

    def score_all(
        self,
        domains: Sequence[str],
        traffic: DailyTraffic,
        automated_hosts: Mapping[str, set[str]],
        when: float,
    ) -> list[float]:
        """Scores for a day's candidates in one matrix pass.

        Builds one feature matrix
        (:meth:`~repro.features.extract.FeatureExtractor.cc_feature_matrix`)
        and scores it column-wise
        (:meth:`~repro.features.regression.LinearModel.score_many`);
        both steps are documented bit-identical to the per-domain
        :meth:`score` loop in ``domains`` order, including the WHOIS
        imputation state evolution.
        """
        if not domains:
            return []
        matrix = self.extractor.cc_feature_matrix(
            domains, traffic, automated_hosts, when
        )
        return self.model.score_many(matrix).tolist()

    def is_cc(
        self,
        domain: str,
        traffic: DailyTraffic,
        automated_hosts: set[str],
        when: float,
    ) -> bool:
        """``Detect_C&C``: automated connections + score above ``Tc``."""
        if not automated_hosts:
            return False
        return self.score(domain, traffic, automated_hosts, when) >= self.threshold


class RegressionSimilarityScorer:
    """Scores rare domains against the labeled-malicious set."""

    def __init__(self, model: LinearModel, extractor: FeatureExtractor) -> None:
        self.model = model
        self.extractor = extractor

    def score(
        self,
        domain: str,
        malicious: set[str],
        traffic: DailyTraffic,
        when: float,
    ) -> float:
        """Regression similarity of ``domain`` to the malicious set."""
        features = self.extractor.similarity_features(
            domain, malicious, traffic, when
        )
        return self.model.score(features.as_vector())


class AdditiveSimilarityScorer:
    """LANL additive similarity score (Section V-B).

    Three components, summed then normalized by the maximum possible
    sum so the score lies in [0, 1]:

    * connectivity: hosts contacting the domain, scaled to [0, 1];
    * timing: 1 when the domain was first contacted within
      ``timing_window`` of a malicious domain by the same host;
    * IP proximity: 2 for sharing a /24 with a malicious domain, 1 for
      a /16, 0 otherwise.
    """

    MAX_COMPONENT_SUM = 4.0  # 1 (connectivity) + 1 (timing) + 2 (IP/24)

    def __init__(
        self,
        extractor: FeatureExtractor | None = None,
        *,
        timing_window: float = 600.0,
        host_cap: int = 10,
    ) -> None:
        self.extractor = extractor or FeatureExtractor()
        self.timing_window = timing_window
        self.host_cap = host_cap

    def components(
        self, domain: str, malicious: set[str], traffic: DailyTraffic
    ) -> tuple[float, float, float]:
        """(connectivity, timing, ip) raw components."""
        hosts = len(traffic.hosts_by_domain.get(domain, ()))
        connectivity = min(hosts, self.host_cap) / self.host_cap
        gap = FeatureExtractor.min_visit_gap(domain, malicious, traffic)
        timing = 1.0 if gap is not None and gap <= self.timing_window else 0.0
        ip24, ip16 = FeatureExtractor.subnet_proximity(domain, malicious, traffic)
        if ip24:
            ip = 2.0
        elif ip16:
            ip = 1.0
        else:
            ip = 0.0
        return connectivity, timing, ip

    def score(
        self,
        domain: str,
        malicious: set[str],
        traffic: DailyTraffic,
        when: float = 0.0,
    ) -> float:
        """Additive (feature-count) similarity score in [0, 1]."""
        connectivity, timing, ip = self.components(domain, malicious, traffic)
        return (connectivity + timing + ip) / self.MAX_COMPONENT_SUM


class SimilarityIndexState:
    """Incremental best-gap / subnet-hit state against a growing set.

    The similarity components that depend on the malicious set are a
    min (first-visit gap) and two ORs (/24 and /16 co-location) -- all
    monotone under set growth, so folding in only newly labeled
    domains is exact.  One instance serves one belief-propagation run:
    the traffic (hence the :class:`TrafficIndex`) is frozen while the
    malicious set grows iteration by iteration.

    State per tracked frontier domain: the best first-visit gap to any
    malicious domain over co-visiting hosts, and whether any malicious
    domain shares a /24 (/16).  Absorbing ``k`` new labels touches only
    hosts and subnet keys of those ``k`` domains.
    """

    def __init__(self, index: TrafficIndex) -> None:
        self.index = index
        self._version = index.version
        #: host id -> sorted first-contact times of malicious domains.
        self._mal_first: dict[int, list[float]] = {}
        self._mal_ids: set[int] = set()
        self._mal24: set[str] = set()
        self._mal16: set[str] = set()
        #: subnet key -> tracked domain ids resolving into it.
        self._owners24: dict[str, list[int]] = {}
        self._owners16: dict[str, list[int]] = {}
        self._best_gap: dict[int, float] = {}
        self._hit24: set[int] = set()
        self._hit16: set[int] = set()
        self._tracked: set[int] = set()

    def _check_version(self) -> None:
        if self.index.version != self._version:
            raise RuntimeError(
                "traffic changed under an active similarity state; "
                "create a new scorer per scoring round"
            )

    def absorb(self, new_malicious: Iterable[str]) -> None:
        """Fold newly labeled domains into the malicious-side state."""
        self._check_version()
        index = self.index
        for name in new_malicious:
            m = index.domain_id(name)
            if m is None or m in self._mal_ids:
                # Domains with no traffic today contribute no hosts,
                # timestamps or IPs -- exactly the legacy scorers'
                # empty-set behaviour.
                continue
            self._mal_ids.add(m)
            for key in index.keys24(m):
                if key not in self._mal24:
                    self._mal24.add(key)
                    self._hit24.update(self._owners24.get(key, ()))
            for key in index.keys16(m):
                if key not in self._mal16:
                    self._mal16.add(key)
                    self._hit16.update(self._owners16.get(key, ()))
            for h, t_mal in zip(
                index.hosts_of(m), index.first_contacts_of(m)
            ):
                insort(self._mal_first.setdefault(h, []), t_mal)
                # Only domains co-visited by one of m's hosts can see
                # their gap shrink -- walk m's host neighborhoods.
                for d in index.domains_of(h):
                    if (
                        d == m
                        or d not in self._tracked
                        or d in self._mal_ids
                    ):
                        continue
                    gap = abs(index.first_contact(h, d) - t_mal)
                    best = self._best_gap.get(d)
                    if best is None or gap < best:
                        self._best_gap[d] = gap

    def track(self, frontier: Iterable[str]) -> None:
        """Initialize state for frontier domains seen for the first
        time, against the malicious set absorbed so far."""
        self._check_version()
        index = self.index
        for name in frontier:
            d = index.domain_id(name)
            if d is None or d in self._tracked:
                continue
            self._tracked.add(d)
            for key in index.keys24(d):
                self._owners24.setdefault(key, []).append(d)
                if key in self._mal24:
                    self._hit24.add(d)
            for key in index.keys16(d):
                self._owners16.setdefault(key, []).append(d)
                if key in self._mal16:
                    self._hit16.add(d)
            best: float | None = None
            for h, t_dom in zip(
                index.hosts_of(d), index.first_contacts_of(d)
            ):
                times = self._mal_first.get(h)
                if not times:
                    continue
                # Nearest malicious first-contact on this shared host.
                pos = bisect_left(times, t_dom)
                if pos < len(times):
                    gap = times[pos] - t_dom
                    if best is None or gap < best:
                        best = gap
                if pos:
                    gap = t_dom - times[pos - 1]
                    if best is None or gap < best:
                        best = gap
            if best is not None:
                self._best_gap[d] = best

    # -- per-domain reads ---------------------------------------------

    def best_gap(self, d_id: int) -> float | None:
        """Minimum first-visit gap to the malicious set; ``None`` when
        no host co-visited the domain and a malicious one."""
        return self._best_gap.get(d_id)

    def subnet_flags(self, d_id: int) -> tuple[float, float]:
        """(ip24, ip16) indicators against the malicious set."""
        return (
            1.0 if d_id in self._hit24 else 0.0,
            1.0 if d_id in self._hit16 else 0.0,
        )


class IncrementalAdditiveScorer:
    """LANL frontier scorer: :class:`AdditiveSimilarityScorer` made
    incremental.

    Exposes the :data:`repro.core.beliefprop.ScoreFrontier` hook --
    ``score_frontier(frontier, new_malicious)`` -- and reproduces the
    per-domain scorer's arithmetic term by term, so detections are
    byte-identical while per-iteration cost drops from
    O(frontier x malicious) to O(frontier + labeled-delta).
    """

    def __init__(
        self,
        base: AdditiveSimilarityScorer,
        traffic: DailyTraffic,
        *,
        index: TrafficIndex | None = None,
    ) -> None:
        self.base = base
        self.index = index if index is not None else traffic.index()
        self.state = SimilarityIndexState(self.index)

    def score_frontier(
        self, frontier: Sequence[str], new_malicious: Set[str]
    ) -> dict[str, float]:
        """Scores for every frontier domain after folding in the delta."""
        state = self.state
        state.absorb(new_malicious)
        state.track(frontier)
        index = self.index
        base = self.base
        cap = base.host_cap
        window = base.timing_window
        scores: dict[str, float] = {}
        for name in frontier:
            d = index.domain_id(name)
            if d is None:
                scores[name] = 0.0
                continue
            connectivity = min(index.host_count(d), cap) / cap
            gap = state.best_gap(d)
            timing = 1.0 if gap is not None and gap <= window else 0.0
            ip24, ip16 = state.subnet_flags(d)
            if ip24:
                ip = 2.0
            elif ip16:
                ip = 1.0
            else:
                ip = 0.0
            scores[name] = (
                connectivity + timing + ip
            ) / base.MAX_COMPONENT_SUM
        return scores


class BatchedSimilarityScorer:
    """Enterprise frontier scorer: :class:`RegressionSimilarityScorer`
    batched over the frontier.

    Assembles the frontier's eight-feature matrix -- static columns
    cached per domain, timing/subnet columns maintained incrementally
    by :class:`SimilarityIndexState` -- and scores it with one
    :meth:`~repro.features.regression.LinearModel.score_many` pass.

    WHOIS registration features need care: the per-domain extractor
    advances running imputation means on every successful lookup, and
    imputed domains read those means at extraction time.  The batched
    scorer replays the cached lookup values through
    :meth:`~repro.features.whois.WhoisFeatureExtractor.extract_known`
    in the same sorted-frontier order every round, so the shared
    extractor's state (and every imputed feature) stays bit-identical
    to the per-domain path's.
    """

    def __init__(
        self,
        scorer: RegressionSimilarityScorer,
        traffic: DailyTraffic,
        when: float,
        *,
        index: TrafficIndex | None = None,
    ) -> None:
        if scorer.model.feature_names != SIMILARITY_FEATURE_NAMES:
            raise ValueError(
                "similarity model features "
                f"{scorer.model.feature_names} do not match "
                f"{SIMILARITY_FEATURE_NAMES}"
            )
        self.model = scorer.model
        self.extractor = scorer.extractor
        self.traffic = traffic
        self.when = when
        self.index = index if index is not None else traffic.index()
        self.state = SimilarityIndexState(self.index)
        #: domain -> (no_hosts, no_ref, rare_ua), frozen for the day.
        self._static: dict[str, tuple[float, float, float]] = {}
        #: domain -> (dom_age, dom_validity) of a successful WHOIS
        #: lookup, or None when the domain imputes.
        self._registration: dict[str, tuple[float, float] | None] = {}

    def _registration_pair(self, domain: str) -> tuple[float, float]:
        whois = self.extractor.whois
        if whois is None:
            # DNS-only datasets: the extractor's neutral constant.
            return (0.5, 0.5)
        if domain not in self._registration:
            features = whois.extract(domain, self.when)
            self._registration[domain] = (
                None if features.imputed
                else (features.dom_age, features.dom_validity)
            )
            return (features.dom_age, features.dom_validity)
        cached = self._registration[domain]
        if cached is None:
            features = whois.impute_defaults()
            return (features.dom_age, features.dom_validity)
        features = whois.extract_known(*cached)
        return (features.dom_age, features.dom_validity)

    def score_frontier(
        self, frontier: Sequence[str], new_malicious: Set[str]
    ) -> dict[str, float]:
        """Scores for every frontier domain after folding in the delta."""
        state = self.state
        state.absorb(new_malicious)
        state.track(frontier)
        index = self.index
        matrix = np.empty((len(frontier), len(SIMILARITY_FEATURE_NAMES)))
        for row, name in enumerate(frontier):
            static = self._static.get(name)
            if static is None:
                static = self.extractor.similarity_static(name, self.traffic)
                self._static[name] = static
            no_hosts, no_ref, rare_ua = static
            d = index.domain_id(name)
            if d is None:
                dom_interval, ip24, ip16 = 0.0, 0.0, 0.0
            else:
                dom_interval = timing_closeness(state.best_gap(d))
                ip24, ip16 = state.subnet_flags(d)
            dom_age, dom_validity = self._registration_pair(name)
            matrix[row] = (
                no_hosts, dom_interval, ip24, ip16,
                no_ref, rare_ua, dom_age, dom_validity,
            )
        scores = self.model.score_many(matrix)
        return {
            name: float(score) for name, score in zip(frontier, scores)
        }


def group_verdicts_by_domain(
    verdicts: Iterable[AutomationVerdict],
) -> dict[str, list[AutomationVerdict]]:
    """Automation verdicts grouped by domain, insertion-ordered.

    :func:`multi_host_beacon_heuristic` filters its ``verdicts``
    argument down to one domain; callers testing every automated
    domain should group once and pass each domain's slice instead of
    re-scanning the full verdict list per domain
    (O(domains x verdicts))."""
    by_domain: dict[str, list[AutomationVerdict]] = {}
    for verdict in verdicts:
        by_domain.setdefault(verdict.domain, []).append(verdict)
    return by_domain


def multi_host_beacon_heuristic(
    domain: str,
    verdicts: Sequence[AutomationVerdict],
    traffic: DailyTraffic,
    *,
    sync_window: float = 10.0,
    min_hosts: int = 2,
) -> bool:
    """LANL C&C heuristic (Section V-B).

    A rare automated domain is potential C&C when at least ``min_hosts``
    distinct hosts beacon to it *at similar time periods* -- their
    inferred periods differ by at most ``sync_window`` seconds.  This
    works on LANL because every simulated campaign infects multiple
    hosts; the enterprise regression scorer handles the single-host
    case.
    """
    periods = [
        v.period for v in verdicts if v.domain == domain and v.automated
    ]
    if len(periods) < min_hosts:
        return False
    periods.sort()
    # Any pair within the window qualifies; with sorted periods the
    # closest pairs are adjacent.
    return any(
        later - earlier <= sync_window
        for earlier, later in zip(periods, periods[1:])
    )
