"""Bipartite host-domain infection graph (Section III-C).

The communication between internal hosts and external domains is a
bipartite graph: an edge connects a host and a domain when the host
contacted the domain during the observation window.  Because daily
graphs reach tens of thousands of nodes, the paper builds the graph
*incrementally* -- nodes enter only once their compromise confidence is
high.  :class:`InfectionGraph` records that incremental expansion plus
the evidence attached to each node, and can export to ``networkx`` for
community inspection (Figures 4, 7, 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import networkx as nx


class NodeKind(str, Enum):
    """Node families of the infection graph (hosts vs domains)."""
    HOST = "host"
    DOMAIN = "domain"


class Label(str, Enum):
    """Why a node entered the graph."""

    SEED = "seed"
    CC_DETECTED = "cc"
    SIMILARITY = "similarity"
    CONTACT = "contact"
    """Hosts pulled in because they contacted a labeled domain."""


@dataclass(frozen=True, slots=True)
class NodeRecord:
    """Provenance of one graph node."""

    name: str
    kind: NodeKind
    label: Label
    iteration: int
    score: float = 0.0


@dataclass
class InfectionGraph:
    """Incrementally grown bipartite graph of compromise evidence."""

    hosts: dict[str, NodeRecord] = field(default_factory=dict)
    domains: dict[str, NodeRecord] = field(default_factory=dict)
    edges: set[tuple[str, str]] = field(default_factory=set)

    def add_host(
        self, host: str, label: Label, iteration: int, score: float = 0.0
    ) -> bool:
        """Add a host node; returns False when already present."""
        if host in self.hosts:
            return False
        self.hosts[host] = NodeRecord(host, NodeKind.HOST, label, iteration, score)
        return True

    def add_domain(
        self, domain: str, label: Label, iteration: int, score: float = 0.0
    ) -> bool:
        """Add a labeled domain node; returns False if already present."""
        if domain in self.domains:
            return False
        self.domains[domain] = NodeRecord(
            domain, NodeKind.DOMAIN, label, iteration, score
        )
        return True

    def add_edge(self, host: str, domain: str) -> None:
        """Connect a host to a domain; both must already be nodes."""
        if host not in self.hosts:
            raise KeyError(f"unknown host {host!r}")
        if domain not in self.domains:
            raise KeyError(f"unknown domain {domain!r}")
        self.edges.add((host, domain))

    @property
    def node_count(self) -> int:
        return len(self.hosts) + len(self.domains)

    def domains_by_iteration(self) -> dict[int, list[str]]:
        """Domains grouped by the BP iteration that added them."""
        by_iter: dict[int, list[str]] = {}
        for record in self.domains.values():
            by_iter.setdefault(record.iteration, []).append(record.name)
        return {k: sorted(v) for k, v in sorted(by_iter.items())}

    def to_networkx(self) -> nx.Graph:
        """Export as a networkx bipartite graph with node attributes."""
        graph = nx.Graph()
        for record in self.hosts.values():
            graph.add_node(
                record.name,
                bipartite=0,
                kind=record.kind.value,
                label=record.label.value,
                iteration=record.iteration,
                score=record.score,
            )
        for record in self.domains.values():
            graph.add_node(
                record.name,
                bipartite=1,
                kind=record.kind.value,
                label=record.label.value,
                iteration=record.iteration,
                score=record.score,
            )
        graph.add_edges_from(self.edges)
        return graph

    def ascii_render(self) -> str:
        """Small text rendering of the community (Figures 4/7/8 style)."""
        lines = ["hosts:"]
        for name in sorted(self.hosts):
            record = self.hosts[name]
            lines.append(f"  {name}  [{record.label.value}, iter {record.iteration}]")
        lines.append("domains:")
        for name in sorted(self.domains):
            record = self.domains[name]
            score = f", score {record.score:.2f}" if record.score else ""
            lines.append(
                f"  {name}  [{record.label.value}, iter {record.iteration}{score}]"
            )
        lines.append(f"edges: {len(self.edges)}")
        return "\n".join(lines)
