"""Belief propagation over the host-domain graph (Algorithm 1).

Starting from seed hosts (and optionally seed domains), each iteration:

1. examines the rare domains ``R`` contacted by the current compromised
   set ``H``, first looking for C&C-like behaviour (``Detect_C&C``);
2. when no C&C domain is found, scores every unlabeled rare domain
   against the labeled-malicious set ``M`` (``Compute_SimScore``) and
   labels the top scorer when its score clears ``Ts``;
3. expands ``H`` with every host contacting newly labeled domains, and
   ``R`` with the rare domains those hosts visit.

The loop stops when an iteration labels nothing or the iteration cap
is reached.  The output is the expanded ``(H, M)`` plus an ordered,
per-iteration trace (the paper presents detections "ordered by
suspiciousness level" for the SOC, and Figure 4 is exactly this trace
for the 3/19 LANL campaign).

One pseudocode note: the paper's listing reads ``N <- N ∪ {dom}``
under the max-score branch while the surrounding text says "the domain
of maximum score (if above a certain threshold Ts) is included"; we
implement the stated intent and add the argmax domain.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence, Set
from dataclasses import dataclass, field

from ..config import BeliefPropagationConfig
from ..obs.metrics import DEFAULT_SIZE_BUCKETS, NULL_METRICS
from .graph import InfectionGraph, Label

DetectCC = Callable[[str], bool]
"""Predicate: does this rare domain exhibit scoring C&C behaviour?"""

SimilarityScore = Callable[[str, set[str]], float]
"""Score of a rare domain against the current malicious set."""

ScoreFrontier = Callable[[Sequence[str], Set[str]], Mapping[str, float]]
"""Batch hook: scores for a whole frontier at once.

Called with the sorted frontier and the domains added to the malicious
set since the hook's previous call *in this run* (the first call
receives the full initial set, including warm-start priors).  A
stateful implementation (:class:`repro.core.scoring
.IncrementalAdditiveScorer`, :class:`~repro.core.scoring
.BatchedSimilarityScorer`) folds in only that delta; labels are
monotone, so the incremental aggregates are exact."""


@dataclass(frozen=True, slots=True)
class Detection:
    """One labeled domain in the output ordering."""

    domain: str
    iteration: int
    reason: str
    """``"seed"``, ``"cc"`` or ``"similarity"``."""

    score: float


@dataclass(frozen=True, slots=True)
class IterationTrace:
    """What one belief-propagation iteration did."""

    iteration: int
    cc_detected: tuple[str, ...]
    labeled: tuple[str, ...]
    top_score: float
    new_hosts: tuple[str, ...]
    frontier_size: int
    """|R \\ M| examined this iteration."""


@dataclass
class BeliefPropagationResult:
    """Expanded compromise sets plus full provenance."""

    hosts: set[str]
    domains: set[str]
    detections: list[Detection]
    trace: list[IterationTrace]
    graph: InfectionGraph = field(default_factory=InfectionGraph)

    @property
    def detected_domains(self) -> list[str]:
        """Non-seed detections in labeling (suspiciousness) order."""
        return [d.domain for d in self.detections if d.reason != "seed"]

    @property
    def iterations(self) -> int:
        return len(self.trace)


_PRIOR_LABELS = {
    "seed": Label.SEED,
    "cc": Label.CC_DETECTED,
    "similarity": Label.SIMILARITY,
}


def belief_propagation(
    seed_hosts: Set[str],
    seed_domains: Set[str],
    *,
    dom_host: Mapping[str, Set[str]],
    host_rdom: Mapping[str, Set[str]],
    detect_cc: DetectCC,
    similarity_score: SimilarityScore | None = None,
    score_frontier: ScoreFrontier | None = None,
    config: BeliefPropagationConfig | None = None,
    prior: "BeliefPropagationResult | None" = None,
    sibling_dom: Mapping[str, Set[str]] | None = None,
    metrics=None,
) -> BeliefPropagationResult:
    """Run Algorithm 1.

    ``dom_host`` maps a domain to the hosts contacting it and
    ``host_rdom`` maps a host to the rare domains it visited -- the two
    precomputed maps named in the paper's pseudocode.

    Similarity scoring accepts either form: ``score_frontier`` scores
    the whole frontier in one call and is handed only the
    newly-labeled delta (the fast path -- see :data:`ScoreFrontier`),
    while a per-domain ``similarity_score`` callable is wrapped in a
    compatibility adapter that rescores every frontier domain against
    the full malicious set.  Exactly one must be provided; both paths use the
    same deterministic argmax tie-breaking, so a ``score_frontier``
    implementation matching the per-domain scores yields byte-identical
    detections.

    ``prior`` warm-starts the run from an earlier round's result: its
    hosts and domains enter ``H`` and ``M`` as already-labeled beliefs
    (keeping their original reasons and scores in the output), so only
    *new* evidence needs propagating.  Because the algorithm is
    monotone -- labels are only ever added -- warm-starting from the
    previous round's fixed point reaches the same final sets as a cold
    run over the same graph whenever the scorers are themselves
    monotone in the day's accumulating traffic, while spending
    iterations only on newly labeled domains.

    ``sibling_dom`` optionally maps a domain to sibling domains
    connected through out-of-band evidence (certificate-transparency
    SAN pivots -- see :mod:`repro.intelstore.ct`): whenever a domain is
    labeled malicious, its siblings join ``R`` and get examined like
    any rare domain contacted by a compromised host.  Callers are
    expected to pre-filter the mapping to the day's rare set.  When
    ``None`` (the default) the run is byte-identical to a build
    without the parameter.

    ``metrics`` is an optional :class:`repro.obs.MetricsRegistry`;
    when given, the run records iteration counts, per-iteration
    frontier sizes and ``score_frontier`` batch timings.  Detection
    output is byte-identical with or without it.
    """
    if (similarity_score is None) == (score_frontier is None):
        raise TypeError(
            "provide exactly one of similarity_score / score_frontier"
        )
    config = config or BeliefPropagationConfig()
    hosts: set[str] = set(seed_hosts)
    malicious: set[str] = set(seed_domains)
    prior_detections: dict[str, Detection] = {}
    contact_hosts: set[str] = set()
    if prior is not None:
        hosts.update(prior.hosts)
        malicious.update(prior.domains)
        prior_detections = {d.domain: d for d in prior.detections}
        # Re-establish the fixed-point invariant H ⊇ hosts(M): edges may
        # have landed on already-labeled domains since the prior round,
        # and cold-start would have pulled those hosts in on expansion.
        for domain in malicious:
            contact_hosts.update(dom_host.get(domain, ()))
        contact_hosts -= hosts
        hosts.update(contact_hosts)
    graph = InfectionGraph()
    detections: list[Detection] = []

    for host in sorted(hosts):
        label = Label.CONTACT if host in contact_hosts else Label.SEED
        graph.add_host(host, label, iteration=0)
    for domain in sorted(malicious):
        carried = prior_detections.get(domain)
        if carried is not None and domain not in seed_domains:
            reason, score = carried.reason, carried.score
        else:
            reason, score = "seed", 0.0
        graph.add_domain(
            domain,
            _PRIOR_LABELS.get(reason, Label.SEED),
            iteration=0,
            score=score,
        )
        detections.append(Detection(domain, 0, reason, score))
        for host in sorted(dom_host.get(domain, ())):
            if host in hosts:
                graph.add_edge(host, domain)

    rare: set[str] = set()
    for host in hosts:
        rare.update(host_rdom.get(host, ()))
    if sibling_dom:
        for domain in malicious:
            rare.update(sibling_dom.get(domain, ()))

    if score_frontier is None:
        # Compatibility adapter: per-domain scoring against the full
        # malicious set, in the same sorted order as always.  The
        # closure reads the live ``malicious`` local at call time.
        def score_frontier(
            frontier: "Sequence[str]", new_malicious: Set[str]
        ) -> Mapping[str, float]:
            return {
                domain: similarity_score(domain, malicious)
                for domain in frontier
            }

    #: malicious domains already handed to the batch hook as deltas.
    reported: set[str] = set()

    obs = metrics if metrics is not None else NULL_METRICS
    frontier_hist = obs.histogram(
        "bp_frontier_size", buckets=DEFAULT_SIZE_BUCKETS
    )

    trace: list[IterationTrace] = []
    for iteration in range(1, config.max_iterations + 1):
        frontier = rare - malicious
        frontier_hist.observe(len(frontier))
        newly_labeled: set[str] = set()
        cc_found: list[str] = []

        # Phase 1: C&C detection over the frontier (deterministic order).
        for domain in sorted(frontier):
            if detect_cc(domain):
                newly_labeled.add(domain)
                cc_found.append(domain)
                rare.discard(domain)

        top_score = 0.0
        # Phase 2: similarity labeling only when no C&C was found.
        if not newly_labeled:
            ordered = sorted(frontier)
            scores: dict[str, float] = {}
            if ordered:
                delta = malicious - reported
                with obs.span("bp_score_batch"):
                    batch = score_frontier(ordered, delta)
                reported |= delta
                # Canonical dict in sorted-frontier order: argmax and
                # threshold logic below see the same structure whether
                # the hook or the per-domain adapter produced it.
                scores = {domain: batch[domain] for domain in ordered}
            if scores:
                # max() on sorted items makes argmax ties deterministic.
                max_domain = max(scores, key=lambda d: (scores[d], d))
                top_score = scores[max_domain]
                if top_score >= config.similarity_threshold:
                    ranked = sorted(
                        scores, key=lambda d: (-scores[d], d)
                    )[: config.max_domains_per_iteration]
                    for domain in ranked:
                        if scores[domain] >= config.similarity_threshold:
                            newly_labeled.add(domain)

        if not newly_labeled:
            trace.append(
                IterationTrace(
                    iteration=iteration,
                    cc_detected=(),
                    labeled=(),
                    top_score=top_score,
                    new_hosts=(),
                    frontier_size=len(frontier),
                )
            )
            break

        # Expansion: M, then H, then R (pseudocode order).
        new_hosts: set[str] = set()
        for domain in sorted(newly_labeled):
            reason = "cc" if domain in cc_found else "similarity"
            score = top_score if reason == "similarity" else 1.0
            malicious.add(domain)
            graph.add_domain(
                domain,
                Label.CC_DETECTED if reason == "cc" else Label.SIMILARITY,
                iteration=iteration,
                score=score,
            )
            detections.append(Detection(domain, iteration, reason, score))
            for host in sorted(dom_host.get(domain, ())):
                if host not in hosts:
                    new_hosts.add(host)
                    hosts.add(host)
                    graph.add_host(host, Label.CONTACT, iteration=iteration)
                graph.add_edge(host, domain)
        for host in hosts:
            rare.update(host_rdom.get(host, ()))
        if sibling_dom:
            for domain in newly_labeled:
                rare.update(sibling_dom.get(domain, ()))

        trace.append(
            IterationTrace(
                iteration=iteration,
                cc_detected=tuple(cc_found),
                labeled=tuple(sorted(newly_labeled)),
                top_score=top_score,
                new_hosts=tuple(sorted(new_hosts)),
                frontier_size=len(frontier),
            )
        )

    obs.counter("bp_runs_total").inc()
    obs.counter("bp_iterations_total").inc(len(trace))
    return BeliefPropagationResult(
        hosts=hosts,
        domains=malicious,
        detections=detections,
        trace=trace,
        graph=graph,
    )
