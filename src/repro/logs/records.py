"""Record types for the log formats the system consumes.

The paper's pipeline ingests two families of border logs:

* **DNS logs** (the LANL dataset): queries by internal hosts and the
  responses of the site's resolvers.  Only A records carry usable
  information there (Section IV-A).
* **Web-proxy logs** (the AC dataset): HTTP/HTTPS connections
  intercepted at the enterprise border, with URL, user-agent, referer
  and status code.

DHCP leases and VPN sessions are side inputs used to normalize dynamic
IP addresses back to stable hostnames (Section IV-A).

All timestamps are POSIX epoch seconds in UTC *after* normalization;
raw proxy records may carry a collector-local timestamp plus a timezone
offset that :mod:`repro.logs.normalize` resolves.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class DnsRecordType(str, Enum):
    """DNS record types observed in the LANL logs.

    Non-A records are redacted in the released data and carry no usable
    payload, so the reduction step drops them.
    """

    A = "A"
    AAAA = "AAAA"
    TXT = "TXT"
    MX = "MX"
    CNAME = "CNAME"
    PTR = "PTR"
    SRV = "SRV"


@dataclass(frozen=True, slots=True)
class DnsRecord:
    """One DNS query/response pair from the LANL-style logs."""

    timestamp: float
    """Epoch seconds (UTC)."""

    source_ip: str
    """Internal host that issued the query (anonymized in LANL)."""

    domain: str
    """Queried name (anonymized in LANL, e.g. ``rainbow-.c3``)."""

    record_type: DnsRecordType = DnsRecordType.A
    resolved_ip: str = ""
    """Response address; empty when the lookup failed or was redacted."""

    @property
    def is_a_record(self) -> bool:
        return self.record_type is DnsRecordType.A


@dataclass(frozen=True, slots=True)
class ProxyRecord:
    """One web-proxy log line from the AC-style logs."""

    timestamp: float
    """Epoch seconds, possibly collector-local before normalization."""

    source_ip: str
    """Client address (frequently a DHCP or VPN address)."""

    destination: str
    """Destination host part of the URL; may be a bare IP address."""

    destination_ip: str = ""
    url_path: str = "/"
    method: str = "GET"
    status_code: int = 200
    user_agent: str = ""
    referer: str = ""
    tz_offset_hours: float = 0.0
    """Offset of the collector's clock from UTC in hours (0 after
    normalization)."""

    hostname: str = ""
    """Stable client hostname; filled in by normalization from DHCP/VPN
    logs, empty in raw records."""

    @property
    def has_referer(self) -> bool:
        return bool(self.referer)


@dataclass(frozen=True, slots=True)
class DhcpLease:
    """A DHCP lease binding an IP address to a hostname for an interval."""

    ip: str
    hostname: str
    start: float
    end: float

    def covers(self, timestamp: float) -> bool:
        """Whether ``timestamp`` falls inside the lease interval.

        The start is inclusive and the end exclusive so back-to-back
        leases on the same address never both claim an instant.
        """
        return self.start <= timestamp < self.end


@dataclass(frozen=True, slots=True)
class VpnSession:
    """A VPN session binding a tunnel IP to a hostname for an interval."""

    ip: str
    hostname: str
    start: float
    end: float

    def covers(self, timestamp: float) -> bool:
        return self.start <= timestamp < self.end


@dataclass(frozen=True, slots=True)
class Connection:
    """Normalized connection event -- the unit the detectors consume.

    Both DNS and proxy records reduce to this shape: *who* (a stable
    host identifier) contacted *what* (a folded external domain) *when*,
    plus the HTTP context fields when the source log provides them.
    """

    timestamp: float
    host: str
    domain: str
    resolved_ip: str = ""
    user_agent: str | None = None
    """``None`` means the source log has no UA field (DNS logs);
    an empty string means the field exists but was blank."""

    referer: str | None = None
    """Same convention as :attr:`user_agent`."""

    status_code: int = 0

    @property
    def day(self) -> int:
        """Day index (UTC) of the event, for daily batching."""
        return int(self.timestamp // 86_400)


@dataclass(slots=True)
class ConnectionBatch:
    """Column-oriented micro-batch of DNS :class:`Connection` events.

    Rows are stored as four parallel lists -- one value per event --
    instead of one object per event.  The columnar traffic store
    ingests the lists directly, so the streaming hot path never
    materializes per-event objects at all.  DNS logs carry no HTTP
    context, so the UA/referer/status columns (always ``None``/``0``
    there) are omitted; proxy-derived events keep using
    :class:`Connection`.

    Iterating a batch yields equivalent :class:`Connection` objects,
    so any consumer written against the scalar event type accepts a
    batch unchanged (at scalar cost).
    """

    timestamps: list[float]
    hosts: list[str]
    domains: list[str]
    resolved_ips: list[str]

    def __len__(self) -> int:
        return len(self.timestamps)

    def __iter__(self):
        """Yield the rows as scalar :class:`Connection` events."""
        for timestamp, host, domain, ip in zip(
            self.timestamps, self.hosts, self.domains, self.resolved_ips
        ):
            yield Connection(
                timestamp=timestamp,
                host=host,
                domain=domain,
                resolved_ip=ip,
            )
