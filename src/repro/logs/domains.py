"""Domain-name utilities: folding, internal-name tests, IP subnet keys.

The paper folds destination names to their second-level domain
("news.nbc.com" -> "nbc.com") on the assumption that the second level
identifies the responsible organization (Section IV-A).  For the LANL
dataset, where names are anonymized and top-level labels are missing,
it conservatively folds to the *third* level instead.
"""

from __future__ import annotations

import ipaddress
import re
from functools import lru_cache

_LABEL_RE = re.compile(r"^[a-z0-9_\-]{1,63}$", re.IGNORECASE)


def is_ip_address(name: str) -> bool:
    """Whether ``name`` is a literal IPv4/IPv6 address.

    The paper drops destinations that are bare IP addresses from the
    proxy-log analysis (Section IV-A).
    """
    try:
        ipaddress.ip_address(name)
    except ValueError:
        return False
    return True


def is_valid_domain(name: str) -> bool:
    """Loose syntactic check for a dotted domain name."""
    if not name or len(name) > 253 or is_ip_address(name):
        return False
    labels = name.rstrip(".").split(".")
    if len(labels) < 2:
        return False
    return all(_LABEL_RE.match(label) for label in labels)


def fold_domain(name: str, level: int = 2) -> str:
    """Fold ``name`` to its last ``level`` labels.

    >>> fold_domain("news.nbc.com")
    'nbc.com'
    >>> fold_domain("a.b.c.example", level=3)
    'b.c.example'

    Names with fewer labels than ``level`` are returned unchanged.  The
    result is lower-cased and stripped of a trailing dot so that the
    same entity always folds to the same key.
    """
    if level < 1:
        raise ValueError(f"fold level must be >= 1, got {level}")
    cleaned = name.rstrip(".").lower()
    labels = cleaned.split(".")
    if len(labels) <= level:
        return cleaned
    return ".".join(labels[-level:])


def is_internal_domain(name: str, internal_suffixes: tuple[str, ...]) -> bool:
    """Whether ``name`` belongs to the organization's own namespace.

    Queries for internal resources are filtered during reduction since
    the goal is detecting suspicious *external* communication.
    """
    cleaned = name.rstrip(".").lower()
    for suffix in internal_suffixes:
        suffix = suffix.lstrip(".").lower()
        if cleaned == suffix or cleaned.endswith("." + suffix):
            return True
    return False


@lru_cache(maxsize=65536)
def subnet_key(ip: str, prefix: int) -> str:
    """Return the /``prefix`` network an IPv4 address belongs to.

    Used for the IP24 / IP16 proximity features (Section IV-D): attack
    domains tend to co-locate in small numbers of subnets.  Pure
    string-to-string, so the result is memoized -- resolved IPs recur
    across days and the ``ipaddress`` parse dominates the call.

    >>> subnet_key("93.184.216.34", 24)
    '93.184.216.0/24'
    """
    if prefix not in (8, 16, 24, 32):
        raise ValueError(f"unsupported prefix length {prefix}")
    network = ipaddress.ip_network(f"{ip}/{prefix}", strict=False)
    return str(network)


def same_subnet(ip_a: str, ip_b: str, prefix: int) -> bool:
    """Whether two addresses share a /``prefix`` network."""
    if not ip_a or not ip_b:
        return False
    return subnet_key(ip_a, prefix) == subnet_key(ip_b, prefix)
