"""Normalization of raw proxy records (Section IV-A).

Two inconsistencies in the AC dataset require normalization before any
analysis:

* collection devices sit in different geographies, so raw timestamps
  are in several local timezones -- everything is converted to UTC;
* most of the client IP space is dynamically assigned (DHCP) or
  tunnel-allocated (VPN), so an IP address does not identify a machine
  across time -- addresses are resolved to stable hostnames by joining
  against the DHCP/VPN lease logs.

:class:`IpResolver` holds the lease intervals, indexed per address and
binary-searched by timestamp, so resolution is ``O(log n)`` per record
and the whole join streams.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterable, Iterator

from .records import Connection, DhcpLease, DnsRecord, ProxyRecord, VpnSession
from .domains import fold_domain, is_ip_address


class IpResolver:
    """Resolves dynamic IP addresses to hostnames at a point in time.

    DHCP leases and VPN sessions are both ``(ip, hostname, start, end)``
    intervals; they are merged into one index.  Addresses outside any
    lease are treated as statically assigned and mapped through
    ``static_map`` (or identity if absent there -- the hostname *is*
    the address, which is what the paper falls back to as well).
    """

    def __init__(
        self,
        leases: Iterable[DhcpLease | VpnSession] = (),
        static_map: dict[str, str] | None = None,
    ) -> None:
        self._static = dict(static_map or {})
        per_ip: dict[str, list[tuple[float, float, str]]] = {}
        for lease in leases:
            per_ip.setdefault(lease.ip, []).append(
                (lease.start, lease.end, lease.hostname)
            )
        self._intervals: dict[str, list[tuple[float, float, str]]] = {}
        self._starts: dict[str, list[float]] = {}
        for ip, intervals in per_ip.items():
            intervals.sort()
            self._intervals[ip] = intervals
            self._starts[ip] = [start for start, _, _ in intervals]

    def add_lease(self, lease: DhcpLease | VpnSession) -> None:
        """Insert one lease, keeping the per-address index sorted."""
        intervals = self._intervals.setdefault(lease.ip, [])
        starts = self._starts.setdefault(lease.ip, [])
        entry = (lease.start, lease.end, lease.hostname)
        index = bisect_right(starts, lease.start)
        intervals.insert(index, entry)
        starts.insert(index, lease.start)

    def resolve(self, ip: str, timestamp: float) -> str:
        """Return the hostname using ``ip`` at ``timestamp``.

        Falls back to the static map, then to the raw address.
        """
        intervals = self._intervals.get(ip)
        if intervals:
            index = bisect_right(self._starts[ip], timestamp) - 1
            if index >= 0:
                start, end, hostname = intervals[index]
                if start <= timestamp < end:
                    return hostname
        return self._static.get(ip, ip)


def to_utc(record: ProxyRecord) -> ProxyRecord:
    """Shift a proxy record's collector-local timestamp to UTC."""
    if record.tz_offset_hours == 0.0:
        return record
    from dataclasses import replace

    return replace(
        record,
        timestamp=record.timestamp - record.tz_offset_hours * 3600.0,
        tz_offset_hours=0.0,
    )


def normalize_proxy_records(
    records: Iterable[ProxyRecord],
    resolver: IpResolver,
    *,
    fold_level: int = 2,
) -> Iterator[Connection]:
    """Normalize raw proxy records into :class:`Connection` events.

    Applies, in order: UTC conversion, DHCP/VPN hostname resolution,
    and destination folding.  Destinations that are bare IP addresses
    are dropped (Section IV-A: "we do not consider destinations that
    are IP addresses").
    """
    for record in records:
        if is_ip_address(record.destination):
            continue
        utc = to_utc(record)
        hostname = utc.hostname or resolver.resolve(utc.source_ip, utc.timestamp)
        yield Connection(
            timestamp=utc.timestamp,
            host=hostname,
            domain=fold_domain(utc.destination, fold_level),
            resolved_ip=utc.destination_ip,
            user_agent=utc.user_agent,
            referer=utc.referer,
            status_code=utc.status_code,
        )


def normalize_dns_records(
    records: Iterable[DnsRecord],
    *,
    fold_level: int = 3,
) -> Iterator[Connection]:
    """Normalize DNS records into :class:`Connection` events.

    DNS logs carry no HTTP context, so ``user_agent`` and ``referer``
    stay ``None`` (meaning "field does not exist", as opposed to the
    empty string used for "field exists but blank").

    Folding is memoized per distinct raw name for the duration of the
    pass -- :func:`~repro.logs.domains.fold_domain` is a pure function
    of the name and the (fixed) fold level, and real query streams
    repeat a small domain vocabulary millions of times.
    """
    folded: dict[str, str] = {}
    for record in records:
        domain = folded.get(record.domain)
        if domain is None:
            domain = fold_domain(record.domain, fold_level)
            folded[record.domain] = domain
        yield Connection(
            timestamp=record.timestamp,
            host=record.source_ip,
            domain=domain,
            resolved_ip=record.resolved_ip,
            user_agent=None,
            referer=None,
        )
