"""LANL-style DNS log serialization, parsing and filtering.

The released LANL data is anonymized DNS query/response traffic.  We
use a line-oriented text format with one query/response pair per line::

    <epoch> <source_ip> <record_type> <domain> <resolved_ip|->

Fields are space separated; a missing response address is ``-``.
:func:`format_dns_line` and :func:`parse_dns_line` round-trip this
format, and :func:`parse_dns_log` streams a whole file-like object.

The filtering predicates implement the reduction steps of Section IV-A:
keep only A records, drop queries for internal resources, and drop
queries initiated by internal servers (detection targets are user
hosts, not servers).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from .records import DnsRecord, DnsRecordType


class DnsLogFormatError(ValueError):
    """Raised when a DNS log line cannot be parsed."""


def format_dns_line(record: DnsRecord) -> str:
    """Serialize a :class:`DnsRecord` to one log line."""
    resolved = record.resolved_ip or "-"
    return (
        f"{record.timestamp:.3f} {record.source_ip} "
        f"{record.record_type.value} {record.domain} {resolved}"
    )


def parse_dns_line(line: str) -> DnsRecord:
    """Parse one log line into a :class:`DnsRecord`.

    Raises :class:`DnsLogFormatError` on malformed input.
    """
    parts = line.split()
    if len(parts) != 5:
        raise DnsLogFormatError(f"expected 5 fields, got {len(parts)}: {line!r}")
    raw_ts, source_ip, raw_type, domain, resolved = parts
    try:
        timestamp = float(raw_ts)
    except ValueError as exc:
        raise DnsLogFormatError(f"bad timestamp {raw_ts!r}") from exc
    try:
        record_type = DnsRecordType(raw_type)
    except ValueError as exc:
        raise DnsLogFormatError(f"unknown record type {raw_type!r}") from exc
    return DnsRecord(
        timestamp=timestamp,
        source_ip=source_ip,
        domain=domain,
        record_type=record_type,
        resolved_ip="" if resolved == "-" else resolved,
    )


def parse_dns_log(
    lines: Iterable[str], *, skip_malformed: bool = True
) -> Iterator[DnsRecord]:
    """Stream-parse an iterable of log lines.

    Blank lines are ignored.  With ``skip_malformed`` (the default, as
    befits multi-terabyte operational logs) unparseable lines are
    silently dropped; otherwise they raise.
    """
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            yield parse_dns_line(line)
        except DnsLogFormatError:
            if not skip_malformed:
                raise


def is_a_record(record: DnsRecord) -> bool:
    """Reduction step 1: keep only A records (others are redacted)."""
    return record.record_type is DnsRecordType.A


def is_external_query(
    record: DnsRecord, internal_suffixes: tuple[str, ...]
) -> bool:
    """Reduction step 2: drop queries for the site's own namespace."""
    from .domains import is_internal_domain

    return not is_internal_domain(record.domain, internal_suffixes)


def is_from_client(record: DnsRecord, server_ips: frozenset[str]) -> bool:
    """Reduction step 3: drop queries initiated by internal servers."""
    return record.source_ip not in server_ips
