"""AC-style web-proxy log serialization and parsing.

The enterprise ("AC") dataset consists of proxy logs captured at the
network border.  We use a tab-separated line format (URLs and UA
strings contain spaces, so whitespace splitting is not an option)::

    <epoch_local> <tz_offset_h> <source_ip> <method> <dest> <path>
    <dest_ip|-> <status> <user_agent|-> <referer|->

``epoch_local`` is the collector's local clock; normalization
(:mod:`repro.logs.normalize`) converts it to UTC using ``tz_offset_h``,
mirroring the paper's multi-timezone challenge.  ``-`` encodes an empty
field.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from .records import ProxyRecord

_FIELD_COUNT = 10


class ProxyLogFormatError(ValueError):
    """Raised when a proxy log line cannot be parsed."""


def _encode(value: str) -> str:
    return value.replace("\t", " ") if value else "-"


def _decode(value: str) -> str:
    return "" if value == "-" else value


def format_proxy_line(record: ProxyRecord) -> str:
    """Serialize a :class:`ProxyRecord` to one tab-separated log line."""
    fields = (
        f"{record.timestamp:.3f}",
        f"{record.tz_offset_hours:g}",
        record.source_ip,
        record.method,
        record.destination,
        record.url_path or "/",
        _encode(record.destination_ip),
        str(record.status_code),
        _encode(record.user_agent),
        _encode(record.referer),
    )
    return "\t".join(fields)


def parse_proxy_line(line: str) -> ProxyRecord:
    """Parse one tab-separated log line into a :class:`ProxyRecord`."""
    parts = line.rstrip("\n").split("\t")
    if len(parts) != _FIELD_COUNT:
        raise ProxyLogFormatError(
            f"expected {_FIELD_COUNT} fields, got {len(parts)}: {line!r}"
        )
    (raw_ts, raw_tz, source_ip, method, dest, path,
     dest_ip, raw_status, user_agent, referer) = parts
    try:
        timestamp = float(raw_ts)
        tz_offset = float(raw_tz)
        status = int(raw_status)
    except ValueError as exc:
        raise ProxyLogFormatError(f"bad numeric field in {line!r}") from exc
    return ProxyRecord(
        timestamp=timestamp,
        source_ip=source_ip,
        destination=dest,
        destination_ip=_decode(dest_ip),
        url_path=path,
        method=method,
        status_code=status,
        user_agent=_decode(user_agent),
        referer=_decode(referer),
        tz_offset_hours=tz_offset,
    )


def parse_proxy_log(
    lines: Iterable[str], *, skip_malformed: bool = True
) -> Iterator[ProxyRecord]:
    """Stream-parse an iterable of proxy log lines.

    Blank lines are ignored; malformed lines are dropped unless
    ``skip_malformed`` is false.
    """
    for line in lines:
        if not line.strip():
            continue
        try:
            yield parse_proxy_line(line)
        except ProxyLogFormatError:
            if not skip_malformed:
                raise
