"""NetFlow substrate: flow records and passive-DNS domain attribution.

Section II-C claims the detection patterns are "common in various types
of network data (e.g., NetFlow, DNS logs, web proxies logs, full packet
capture)".  DNS and proxy logs are evaluated in the paper; this module
supplies the NetFlow leg so the same pipeline runs on flow exports.

A flow record carries no domain name, only a destination address, so
flows must be joined against a passive-DNS view -- the set of
(domain -> address) bindings observed in the site's own DNS traffic.
That is exactly what enterprise deployments do, and the join preserves
the paper's domain-centric analysis: flows to an address resolve to the
folded domain that most recently mapped there.

Line format (space separated, ``-`` for empty)::

    <epoch> <src_ip> <dst_ip> <dst_port> <proto> <bytes> <packets>
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from .records import Connection, DnsRecord

#: Ports the paper's HTTP/HTTPS focus keeps (Section II-A: backdoors
#: speak HTTP/HTTPS because enterprise firewalls allow them).
WEB_PORTS = frozenset({80, 443, 8080, 8443})


class NetflowFormatError(ValueError):
    """Raised when a flow log line cannot be parsed."""


@dataclass(frozen=True, slots=True)
class NetflowRecord:
    """One unidirectional flow export."""

    timestamp: float
    source_ip: str
    destination_ip: str
    destination_port: int
    protocol: str = "TCP"
    byte_count: int = 0
    packet_count: int = 0

    @property
    def is_web(self) -> bool:
        return self.destination_port in WEB_PORTS


def format_netflow_line(record: NetflowRecord) -> str:
    """Serialize a :class:`NetflowRecord` to one log line."""
    return (
        f"{record.timestamp:.3f} {record.source_ip} {record.destination_ip} "
        f"{record.destination_port} {record.protocol} "
        f"{record.byte_count} {record.packet_count}"
    )


def parse_netflow_line(line: str) -> NetflowRecord:
    """Parse one flow log line."""
    parts = line.split()
    if len(parts) != 7:
        raise NetflowFormatError(f"expected 7 fields, got {len(parts)}: {line!r}")
    raw_ts, src, dst, raw_port, proto, raw_bytes, raw_packets = parts
    try:
        return NetflowRecord(
            timestamp=float(raw_ts),
            source_ip=src,
            destination_ip=dst,
            destination_port=int(raw_port),
            protocol=proto,
            byte_count=int(raw_bytes),
            packet_count=int(raw_packets),
        )
    except ValueError as exc:
        raise NetflowFormatError(f"bad numeric field in {line!r}") from exc


def parse_netflow_log(
    lines: Iterable[str], *, skip_malformed: bool = True
) -> Iterator[NetflowRecord]:
    """Stream-parse an iterable of flow log lines."""
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            yield parse_netflow_line(line)
        except NetflowFormatError:
            if not skip_malformed:
                raise


class PassiveDnsMap:
    """Time-aware (address -> domain) view built from DNS answers.

    Each successful A-record answer binds the answered address to the
    (folded) queried domain from the answer's timestamp onward, until a
    different domain is observed for the same address.  Lookups return
    the binding in force at the flow's timestamp -- bindings never look
    into the future, so the join is causally sound for streaming use.
    """

    def __init__(self, *, fold_level: int = 2) -> None:
        self.fold_level = fold_level
        self._bindings: dict[str, list[tuple[float, str]]] = {}

    def observe(self, record: DnsRecord) -> None:
        """Fold one DNS answer into the map (must arrive time-ordered
        per address; out-of-order inserts are handled but cost O(n))."""
        if not record.resolved_ip or not record.is_a_record:
            return
        from .domains import fold_domain

        domain = fold_domain(record.domain, self.fold_level)
        history = self._bindings.setdefault(record.resolved_ip, [])
        if history and history[-1][0] <= record.timestamp:
            if history[-1][1] != domain:
                history.append((record.timestamp, domain))
            return
        timestamps = [t for t, _ in history]
        index = bisect_right(timestamps, record.timestamp)
        history.insert(index, (record.timestamp, domain))

    def observe_all(self, records: Iterable[DnsRecord]) -> None:
        for record in records:
            self.observe(record)

    def lookup(self, ip: str, timestamp: float) -> str | None:
        """Domain bound to ``ip`` at ``timestamp``, or ``None``."""
        history = self._bindings.get(ip)
        if not history:
            return None
        timestamps = [t for t, _ in history]
        index = bisect_right(timestamps, timestamp) - 1
        if index < 0:
            return None
        return history[index][1]

    def __len__(self) -> int:
        return len(self._bindings)


def normalize_netflow_records(
    records: Iterable[NetflowRecord],
    pdns: PassiveDnsMap,
    *,
    web_only: bool = True,
    host_of_ip=None,
) -> Iterator[Connection]:
    """Join flows against passive DNS into :class:`Connection` events.

    Flows to addresses with no DNS binding are dropped -- they are the
    direct-to-IP connections the paper excludes.  ``host_of_ip`` maps a
    source address to a stable host identifier (e.g. an
    :class:`~repro.logs.normalize.IpResolver` resolve method); identity
    by default, which suits statically addressed networks.
    """
    for record in records:
        if web_only and not record.is_web:
            continue
        domain = pdns.lookup(record.destination_ip, record.timestamp)
        if domain is None:
            continue
        if host_of_ip is not None:
            host = host_of_ip(record.source_ip, record.timestamp)
        else:
            host = record.source_ip
        yield Connection(
            timestamp=record.timestamp,
            host=host,
            domain=domain,
            resolved_ip=record.destination_ip,
            user_agent=None,
            referer=None,
        )
