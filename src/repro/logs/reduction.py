"""Data-reduction funnel with per-step accounting (Section IV-A, Figure 2).

The paper reduces multi-terabyte daily logs by an order of magnitude
before any detection runs.  For DNS logs the steps are:

1. keep only A records;
2. drop queries for internal resources;
3. drop queries initiated by internal servers.

Profiling then derives *new* and *rare* destinations on top of the
reduced stream.  :class:`ReductionFunnel` streams records through the
filters while counting distinct domains surviving each step per day --
exactly the series plotted in Figure 2.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from ..obs.metrics import NULL_METRICS
from .dns import is_a_record, is_external_query, is_from_client
from .domains import fold_domain
from .records import DnsRecord

SECONDS_PER_DAY = 86_400

#: Ordered step names; "new"/"rare" are appended by the profiling layer.
DNS_REDUCTION_STEPS = (
    "all",
    "a_records",
    "filter_internal_queries",
    "filter_internal_servers",
)


@dataclass
class ReductionStats:
    """Distinct-domain and record counts per reduction step and day."""

    domains: dict[str, dict[int, set[str]]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(set))
    )
    records: dict[str, dict[int, int]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(int))
    )

    def observe(self, step: str, day: int, domain: str) -> None:
        """Record one day's pre/post-reduction record counts."""
        self.domains[step][day].add(domain)
        self.records[step][day] += 1

    def domain_counts(self, step: str) -> dict[int, int]:
        """Distinct domains per day surviving ``step``."""
        return {day: len(doms) for day, doms in self.domains[step].items()}

    def record_counts(self, step: str) -> dict[int, int]:
        return dict(self.records[step])

    def days(self) -> list[int]:
        """How many days of reduction this tracker has observed."""
        observed: set[int] = set()
        for per_day in self.domains.values():
            observed.update(per_day)
        return sorted(observed)


class ReductionFunnel:
    """Streams DNS records through the Section IV-A reduction filters.

    Parameters mirror the paper's setting: the organization's internal
    namespace suffixes and the set of internal server addresses whose
    queries should be ignored.
    """

    def __init__(
        self,
        internal_suffixes: tuple[str, ...] = (),
        server_ips: frozenset[str] = frozenset(),
        *,
        fold_level: int = 3,
        metrics=None,
    ) -> None:
        self.internal_suffixes = internal_suffixes
        self.server_ips = server_ips
        self.fold_level = fold_level
        self.stats = ReductionStats()
        # Counters are resolved once here, but the per-record hot path
        # never touches them: increments accumulate in plain ints and
        # flush in bulk every ``_FLUSH_EVERY`` records (and at the end
        # of each ``reduce`` pass), so a registry lock is taken a
        # handful of times per day instead of once per record
        # (``metrics`` is an optional repro.obs.MetricsRegistry).
        obs = metrics if metrics is not None else NULL_METRICS
        self._seen_counter = obs.counter("reduction_records_total")
        self._kept_counter = obs.counter(
            "reduction_kept_total", stage="filter_internal_servers"
        )
        self._drop_counters = {
            "a_records": obs.counter(
                "reduction_dropped_total", stage="non_a_record"
            ),
            "internal_query": obs.counter(
                "reduction_dropped_total", stage="internal_query"
            ),
            "internal_server": obs.counter(
                "reduction_dropped_total", stage="internal_server"
            ),
        }
        self._pending_seen = 0
        self._pending_kept = 0
        self._pending_drops = dict.fromkeys(self._drop_counters, 0)

    _FLUSH_EVERY = 4096

    def flush_metrics(self) -> None:
        """Fold the locally accumulated counts into the registry.

        Called automatically on the flush cadence and when a ``reduce``
        pass is exhausted; snapshots taken at day/round barriers are
        therefore exact.
        """
        if self._pending_seen:
            self._seen_counter.inc(self._pending_seen)
            self._pending_seen = 0
        if self._pending_kept:
            self._kept_counter.inc(self._pending_kept)
            self._pending_kept = 0
        for stage, pending in self._pending_drops.items():
            if pending:
                self._drop_counters[stage].inc(pending)
                self._pending_drops[stage] = 0

    def reduce_record(self, record: DnsRecord) -> DnsRecord | None:
        """Run one record through the filters; ``None`` when dropped.

        This is the single-event path the streaming engine uses; the
        accounting is identical to :meth:`reduce` so a replayed stream
        produces the same Figure 2 funnel as a bulk pass.
        """
        day = int(record.timestamp // SECONDS_PER_DAY)
        domain = fold_domain(record.domain, self.fold_level)
        self.stats.observe("all", day, domain)
        self._pending_seen += 1
        if self._pending_seen >= self._FLUSH_EVERY:
            self.flush_metrics()
        if not is_a_record(record):
            self._pending_drops["a_records"] += 1
            return None
        self.stats.observe("a_records", day, domain)
        if not is_external_query(record, self.internal_suffixes):
            self._pending_drops["internal_query"] += 1
            return None
        self.stats.observe("filter_internal_queries", day, domain)
        if not is_from_client(record, self.server_ips):
            self._pending_drops["internal_server"] += 1
            return None
        self.stats.observe("filter_internal_servers", day, domain)
        self._pending_kept += 1
        return record

    def reduce(self, records: Iterable[DnsRecord]) -> Iterator[DnsRecord]:
        """Yield records surviving all filters, updating the counters."""
        try:
            for record in records:
                kept = self.reduce_record(record)
                if kept is not None:
                    yield kept
        finally:
            self.flush_metrics()

    def observe_profiling_step(self, step: str, day: int, domains: Iterable[str]) -> None:
        """Record domains surviving a downstream profiling step.

        The profiling layer calls this with the daily "new" and "rare"
        destination sets so the full Figure 2 funnel lives in one place.
        """
        for domain in domains:
            self.stats.observe(step, day, domain)
