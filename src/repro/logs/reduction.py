"""Data-reduction funnel with per-step accounting (Section IV-A, Figure 2).

The paper reduces multi-terabyte daily logs by an order of magnitude
before any detection runs.  For DNS logs the steps are:

1. keep only A records;
2. drop queries for internal resources;
3. drop queries initiated by internal servers.

Profiling then derives *new* and *rare* destinations on top of the
reduced stream.  :class:`ReductionFunnel` streams records through the
filters while counting distinct domains surviving each step per day --
exactly the series plotted in Figure 2.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from ..obs.metrics import NULL_METRICS
from .dns import is_external_query
from .domains import fold_domain
from .records import DnsRecord, DnsRecordType

SECONDS_PER_DAY = 86_400

#: Ordered step names; "new"/"rare" are appended by the profiling layer.
DNS_REDUCTION_STEPS = (
    "all",
    "a_records",
    "filter_internal_queries",
    "filter_internal_servers",
)


@dataclass
class ReductionStats:
    """Distinct-domain and record counts per reduction step and day."""

    domains: dict[str, dict[int, set[str]]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(set))
    )
    records: dict[str, dict[int, int]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(int))
    )

    def observe(self, step: str, day: int, domain: str) -> None:
        """Record one day's pre/post-reduction record counts."""
        self.domains[step][day].add(domain)
        self.records[step][day] += 1

    def domain_counts(self, step: str) -> dict[int, int]:
        """Distinct domains per day surviving ``step``."""
        return {day: len(doms) for day, doms in self.domains[step].items()}

    def record_counts(self, step: str) -> dict[int, int]:
        return dict(self.records[step])

    def days(self) -> list[int]:
        """How many days of reduction this tracker has observed."""
        observed: set[int] = set()
        for per_day in self.domains.values():
            observed.update(per_day)
        return sorted(observed)


class ReductionFunnel:
    """Streams DNS records through the Section IV-A reduction filters.

    Parameters mirror the paper's setting: the organization's internal
    namespace suffixes and the set of internal server addresses whose
    queries should be ignored.
    """

    def __init__(
        self,
        internal_suffixes: tuple[str, ...] = (),
        server_ips: frozenset[str] = frozenset(),
        *,
        fold_level: int = 3,
        metrics=None,
    ) -> None:
        self.internal_suffixes = internal_suffixes
        self.server_ips = server_ips
        self.fold_level = fold_level
        self.stats = ReductionStats()
        # Counters are resolved once here, but the per-record hot path
        # never touches them: increments accumulate in plain ints and
        # flush in bulk every ``_FLUSH_EVERY`` records (and at the end
        # of each ``reduce`` pass), so a registry lock is taken a
        # handful of times per day instead of once per record
        # (``metrics`` is an optional repro.obs.MetricsRegistry).
        obs = metrics if metrics is not None else NULL_METRICS
        self._seen_counter = obs.counter("reduction_records_total")
        self._kept_counter = obs.counter(
            "reduction_kept_total", stage="filter_internal_servers"
        )
        self._drop_counters = {
            "a_records": obs.counter(
                "reduction_dropped_total", stage="non_a_record"
            ),
            "internal_query": obs.counter(
                "reduction_dropped_total", stage="internal_query"
            ),
            "internal_server": obs.counter(
                "reduction_dropped_total", stage="internal_server"
            ),
        }
        self._pending_seen = 0
        self._pending_kept = 0
        self._pend_drop_a = 0
        self._pend_drop_query = 0
        self._pend_drop_server = 0
        # Streaming hot-path caches: folding and the internal-namespace
        # test are pure functions of the raw domain name (the suffixes
        # are fixed per funnel), so both are computed once per distinct
        # domain.  Per-day stats are equally redundant per record: a
        # domain's step sets only change the first time the domain
        # reaches a deeper step that day (tracked in ``_dom_depth``),
        # and the per-step record counts are plain ints flushed into
        # the stats dicts at day boundaries and on
        # :meth:`flush_metrics`.  Byte-identical to the uncached path
        # at every flush point.
        self._domain_memo: dict[str, tuple[str, bool]] = {}
        self._stat_day: int | None = None
        self._dom_depth: dict[str, int] = {}
        self._dom_all: set[str] = set()
        self._dom_a: set[str] = set()
        self._dom_ext: set[str] = set()
        self._dom_kept: set[str] = set()
        self._pend_all = 0
        self._pend_a = 0
        self._pend_ext = 0
        self._pend_kept = 0

    _FLUSH_EVERY = 4096

    def _flush_stat_counts(self) -> None:
        """Fold the deferred per-step record counts into the stats."""
        day = self._stat_day
        if day is None:
            return
        records = self.stats.records
        if self._pend_all:
            records["all"][day] += self._pend_all
            self._pend_all = 0
        if self._pend_a:
            records["a_records"][day] += self._pend_a
            self._pend_a = 0
        if self._pend_ext:
            records["filter_internal_queries"][day] += self._pend_ext
            self._pend_ext = 0
        if self._pend_kept:
            records["filter_internal_servers"][day] += self._pend_kept
            self._pend_kept = 0

    def flush_metrics(self) -> None:
        """Fold the locally accumulated counts into the registry.

        Called automatically on the flush cadence and when a ``reduce``
        pass is exhausted; snapshots taken at day/round barriers are
        therefore exact.  Also folds the deferred per-step record
        counts into :attr:`stats`, so the Figure 2 numbers are exact at
        the same points.
        """
        self._flush_stat_counts()
        if self._pending_seen:
            self._seen_counter.inc(self._pending_seen)
            self._pending_seen = 0
        if self._pending_kept:
            self._kept_counter.inc(self._pending_kept)
            self._pending_kept = 0
        if self._pend_drop_a:
            self._drop_counters["a_records"].inc(self._pend_drop_a)
            self._pend_drop_a = 0
        if self._pend_drop_query:
            self._drop_counters["internal_query"].inc(self._pend_drop_query)
            self._pend_drop_query = 0
        if self._pend_drop_server:
            self._drop_counters["internal_server"].inc(self._pend_drop_server)
            self._pend_drop_server = 0

    def reduce_record(self, record: DnsRecord) -> DnsRecord | None:
        """Run one record through the filters; ``None`` when dropped.

        This is the single-event path the streaming engine uses; the
        accounting is identical to :meth:`reduce` so a replayed stream
        produces the same Figure 2 funnel as a bulk pass.  The filter
        predicates are inlined versions of
        :func:`~repro.logs.dns.is_a_record` /
        :func:`~repro.logs.dns.is_from_client` (memoized
        :func:`~repro.logs.dns.is_external_query` in between), applied
        in the same order with the same short-circuiting.
        """
        day = int(record.timestamp // SECONDS_PER_DAY)
        cached = self._domain_memo.get(record.domain)
        if cached is None:
            cached = (
                fold_domain(record.domain, self.fold_level),
                is_external_query(record, self.internal_suffixes),
            )
            self._domain_memo[record.domain] = cached
        domain, external = cached
        if day != self._stat_day:
            self._flush_stat_counts()
            self._stat_day = day
            domains = self.stats.domains
            self._dom_all = domains["all"][day]
            self._dom_a = domains["a_records"][day]
            self._dom_ext = domains["filter_internal_queries"][day]
            self._dom_kept = domains["filter_internal_servers"][day]
            self._dom_depth = {}
        # How deep the record gets through the funnel: 1 = dropped as
        # non-A, 2 = internal query, 3 = internal server, 4 = kept.
        if record.record_type is not DnsRecordType.A:
            depth = 1
        elif not external:
            depth = 2
        elif record.source_ip in self.server_ips:
            depth = 3
        else:
            depth = 4
        prev = self._dom_depth.get(domain, 0)
        if depth > prev:
            self._dom_depth[domain] = depth
            if prev < 1:
                self._dom_all.add(domain)
            if prev < 2 <= depth:
                self._dom_a.add(domain)
            if prev < 3 <= depth:
                self._dom_ext.add(domain)
            if prev < 4 <= depth:
                self._dom_kept.add(domain)
        self._pend_all += 1
        self._pending_seen += 1
        if self._pending_seen >= self._FLUSH_EVERY:
            self.flush_metrics()
        if depth == 1:
            self._pend_drop_a += 1
            return None
        self._pend_a += 1
        if depth == 2:
            self._pend_drop_query += 1
            return None
        self._pend_ext += 1
        if depth == 3:
            self._pend_drop_server += 1
            return None
        self._pend_kept += 1
        self._pending_kept += 1
        return record

    def reduce_batch(self, records: Iterable[DnsRecord]) -> list[DnsRecord]:
        """Run a chunk of records through the filters; returns the kept.

        The chunked twin of :meth:`reduce_record`: identical filters,
        identical accounting at every flush point, with the per-record
        state hoisted into locals and folded back once per chunk.  The
        fused columnar ingress uses this so the per-record cost is one
        tight loop iteration instead of a method call.
        """
        memo = self._domain_memo
        fold_level = self.fold_level
        suffixes = self.internal_suffixes
        server_ips = self.server_ips
        a_type = DnsRecordType.A
        dom_depth = self._dom_depth
        dom_all = self._dom_all
        dom_a = self._dom_a
        dom_ext = self._dom_ext
        dom_kept = self._dom_kept
        stat_day = self._stat_day
        n_all = n_a = n_ext = n_kept = 0
        drop_a = drop_query = drop_server = 0
        seen_prior = kept_prior = 0
        kept: list[DnsRecord] = []
        keep = kept.append
        for record in records:
            day = int(record.timestamp // SECONDS_PER_DAY)
            if day != stat_day:
                # Day boundary: fold the chunk-local counts back and
                # rebind every per-day structure (self and locals).
                seen_prior += n_all
                kept_prior += n_kept
                self._pend_all += n_all
                self._pend_a += n_a
                self._pend_ext += n_ext
                self._pend_kept += n_kept
                n_all = n_a = n_ext = n_kept = 0
                self._flush_stat_counts()
                stat_day = self._stat_day = day
                domains = self.stats.domains
                dom_all = self._dom_all = domains["all"][day]
                dom_a = self._dom_a = domains["a_records"][day]
                dom_ext = self._dom_ext = (
                    domains["filter_internal_queries"][day]
                )
                dom_kept = self._dom_kept = (
                    domains["filter_internal_servers"][day]
                )
                dom_depth = self._dom_depth = {}
            cached = memo.get(record.domain)
            if cached is None:
                cached = (
                    fold_domain(record.domain, fold_level),
                    is_external_query(record, suffixes),
                )
                memo[record.domain] = cached
            domain, external = cached
            if record.record_type is not a_type:
                depth = 1
            elif not external:
                depth = 2
            elif record.source_ip in server_ips:
                depth = 3
            else:
                depth = 4
            prev = dom_depth.get(domain, 0)
            if depth > prev:
                dom_depth[domain] = depth
                if prev < 1:
                    dom_all.add(domain)
                if prev < 2 <= depth:
                    dom_a.add(domain)
                if prev < 3 <= depth:
                    dom_ext.add(domain)
                if prev < 4 <= depth:
                    dom_kept.add(domain)
            n_all += 1
            if depth == 1:
                drop_a += 1
                continue
            n_a += 1
            if depth == 2:
                drop_query += 1
                continue
            n_ext += 1
            if depth == 3:
                drop_server += 1
                continue
            n_kept += 1
            keep(record)
        self._pend_all += n_all
        self._pend_a += n_a
        self._pend_ext += n_ext
        self._pend_kept += n_kept
        self._pend_drop_a += drop_a
        self._pend_drop_query += drop_query
        self._pend_drop_server += drop_server
        self._pending_seen += seen_prior + n_all
        self._pending_kept += kept_prior + n_kept
        if self._pending_seen >= self._FLUSH_EVERY:
            self.flush_metrics()
        return kept

    def reduce(self, records: Iterable[DnsRecord]) -> Iterator[DnsRecord]:
        """Yield records surviving all filters, updating the counters."""
        try:
            for record in records:
                kept = self.reduce_record(record)
                if kept is not None:
                    yield kept
        finally:
            self.flush_metrics()

    def observe_profiling_step(self, step: str, day: int, domains: Iterable[str]) -> None:
        """Record domains surviving a downstream profiling step.

        The profiling layer calls this with the daily "new" and "rare"
        destination sets so the full Figure 2 funnel lives in one place.
        """
        for domain in domains:
            self.stats.observe(step, day, domain)
