"""Log substrate: record types, parsers, normalization and reduction."""

from .records import (
    Connection,
    ConnectionBatch,
    DhcpLease,
    DnsRecord,
    DnsRecordType,
    ProxyRecord,
    VpnSession,
)
from .domains import (
    fold_domain,
    is_internal_domain,
    is_ip_address,
    is_valid_domain,
    same_subnet,
    subnet_key,
)
from .dns import (
    DnsLogFormatError,
    format_dns_line,
    parse_dns_line,
    parse_dns_log,
)
from .proxy import (
    ProxyLogFormatError,
    format_proxy_line,
    parse_proxy_line,
    parse_proxy_log,
)
from .normalize import (
    IpResolver,
    normalize_dns_records,
    normalize_proxy_records,
    to_utc,
)
from .netflow import (
    NetflowFormatError,
    NetflowRecord,
    PassiveDnsMap,
    format_netflow_line,
    normalize_netflow_records,
    parse_netflow_line,
    parse_netflow_log,
)
from .reduction import DNS_REDUCTION_STEPS, ReductionFunnel, ReductionStats

__all__ = [
    "Connection",
    "ConnectionBatch",
    "DhcpLease",
    "DnsRecord",
    "DnsRecordType",
    "ProxyRecord",
    "VpnSession",
    "fold_domain",
    "is_internal_domain",
    "is_ip_address",
    "is_valid_domain",
    "same_subnet",
    "subnet_key",
    "DnsLogFormatError",
    "format_dns_line",
    "parse_dns_line",
    "parse_dns_log",
    "ProxyLogFormatError",
    "format_proxy_line",
    "parse_proxy_line",
    "parse_proxy_log",
    "IpResolver",
    "normalize_dns_records",
    "normalize_proxy_records",
    "to_utc",
    "NetflowFormatError",
    "NetflowRecord",
    "PassiveDnsMap",
    "format_netflow_line",
    "normalize_netflow_records",
    "parse_netflow_line",
    "parse_netflow_log",
    "DNS_REDUCTION_STEPS",
    "ReductionFunnel",
    "ReductionStats",
]
