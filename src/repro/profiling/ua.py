"""User-agent string profiling (Section IV-C, "Web connection features").

Enterprise software configurations are homogeneous, so most UA strings
are shared by a large population of hosts; a UA used by only a handful
of hosts suggests unpopular -- potentially malicious -- software.  The
profile counts, for every UA string, the set of hosts ever seen using
it.  It is built over the one-month training period and updated daily
afterwards, exactly like the destination history.
"""

from __future__ import annotations

from collections.abc import Iterable


class UserAgentHistory:
    """Tracks which hosts have used which user-agent strings."""

    def __init__(self, rare_max_hosts: int = 10) -> None:
        if rare_max_hosts < 1:
            raise ValueError("rare_max_hosts must be positive")
        self.rare_max_hosts = rare_max_hosts
        self._hosts_by_ua: dict[str, set[str]] = {}
        self._pending: dict[str, set[str]] = {}

    def __len__(self) -> int:
        return len(self._hosts_by_ua)

    def popularity(self, user_agent: str) -> int:
        """Number of distinct hosts seen using ``user_agent``."""
        return len(self._hosts_by_ua.get(user_agent, ()))

    def is_rare(self, user_agent: str | None) -> bool:
        """Whether a UA is rare (or missing entirely).

        The paper's ``RareUA`` feature counts hosts that use *no* UA or
        a rare UA, so an absent/empty UA is treated as rare.
        """
        if not user_agent:
            return True
        return self.popularity(user_agent) < self.rare_max_hosts

    def stage(self, user_agent: str | None, host: str) -> None:
        """Record a same-day (UA, host) observation without committing."""
        if not user_agent:
            return
        hosts = self._pending.get(user_agent)
        if hosts is None:
            self._pending[user_agent] = hosts = set()
        hosts.add(host)

    def commit_day(self) -> None:
        """Fold staged observations into the profile (end of day)."""
        for user_agent, hosts in self._pending.items():
            self._hosts_by_ua.setdefault(user_agent, set()).update(hosts)
        self._pending.clear()

    def bootstrap(self, observations: Iterable[tuple[str, str]]) -> None:
        """Seed from the training month: iterable of (user_agent, host)."""
        for user_agent, host in observations:
            if user_agent:
                self._hosts_by_ua.setdefault(user_agent, set()).add(host)
