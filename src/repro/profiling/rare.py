"""Daily rare-destination extraction (Section III-A) over a columnar core.

A destination is **rare** on a day when it is both

* *new* -- never contacted by any internal host before that day, and
* *unpopular* -- contacted by fewer than ``unpopular_max_hosts``
  distinct hosts during the day (default 10, per SOC guidance).

:class:`DailyTraffic` aggregates one day of normalized connections into
the per-domain / per-host indexes everything downstream consumes:
the rare set, the ``dom_host`` and ``host_rdom`` maps of Algorithm 1,
and per-(host, domain) timestamp series for the timing detector.

**Columnar layout.**  Events land in typed NumPy columns -- one
``int64`` column of packed ``(host_id << 32) | domain_id`` pair keys
and one ``float64`` column of timestamps -- grown by amortized
doubling.  Each :meth:`DailyTraffic.ingest` call appends its batch,
lexsorts the new span by (pair, time) *once*, and merges the per-pair
runs into sorted per-pair series; the same grouped pass produces an
:class:`IngestDigest` that the streaming window, engine and
:class:`~repro.profiling.index.TrafficIndex` consume instead of
re-looping over the batch event by event.  The public ``timestamps``
mapping is a zero-copy view over the per-pair series and remains
interchangeable with the legacy ``dict[(host, domain), list[float]]``
(same keys, same sorted values, same equality semantics), so every
consumer and checkpoint round-trip stays byte-identical.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator, Mapping, Sequence, Set
from dataclasses import dataclass, field

import numpy as np

from ..logs.records import Connection, ConnectionBatch
from .history import DestinationHistory
from .index import RareDomainsByHostView, RareDomHostView, TrafficIndex

#: Shift packing (host_id, domain_id) into one int key; ids are dense
#: small ints, so the packed key stays a machine-word int in practice.
_PAIR_SHIFT = 32
_DOMAIN_MASK = (1 << _PAIR_SHIFT) - 1
#: Pending-span size below which :meth:`DailyTraffic._finalize_pending`
#: groups in plain Python instead of lexsorting -- the array machinery
#: has a fixed per-call cost that only amortizes at batch-pipeline
#: span sizes, not at streaming micro-batch polls.
_SMALL_SPAN = 4096


@dataclass(frozen=True, slots=True)
class IngestDigest:
    """Grouped summary of one :meth:`DailyTraffic.ingest` batch.

    Everything the per-event consumers of a batch used to recompute by
    looping over the connections again -- touched pairs, their new
    timestamps, popularity-relevant domains, first-seen resolved IPs --
    derived once from the columnar lexsort.  Pairs appear in
    first-within-batch order, which is exactly the order per-event
    processing would have first encountered them (the property that
    keeps downstream interning and set-insertion orders identical).
    """

    n_events: int
    #: packed pair keys touched by the batch, first-appearance order.
    pairs: list[int] = field(default_factory=list)
    #: (host, domain) names aligned with :attr:`pairs`.
    named_pairs: list[tuple[str, str]] = field(default_factory=list)
    #: per touched pair: the batch's timestamps, sorted ascending.
    chunks: list[list[float]] = field(default_factory=list)
    #: distinct domains that gained a new host this batch (the only
    #: event that can move a domain's popularity, hence its rarity,
    #: within a day), first-appearance order.
    domains: list[str] = field(default_factory=list)
    #: (domain, ip) resolutions seen for the first time today, in order.
    novel_ips: list[tuple[str, str]] = field(default_factory=list)


class TimestampSeriesView(Mapping):
    """Dict-compatible view of the per-(host, domain) timestamp series.

    Presents the columnar series store under the legacy
    ``dict[(host, domain), list[float]]`` contract: same keys, sorted
    Python-float lists as values, iteration in pair first-appearance
    order, and dict-style equality (against another view or a plain
    dict).  Reads finalize the traffic first, so values are always the
    sorted views of everything ingested so far.
    """

    __slots__ = ("_traffic",)

    def __init__(self, traffic: "DailyTraffic") -> None:
        self._traffic = traffic

    def _lookup(self, key) -> list[float] | None:
        traffic = self._traffic
        try:
            host, domain = key
        except (TypeError, ValueError):
            return None
        h_id = traffic._host_ids.get(host)
        d_id = traffic._domain_ids.get(domain)
        if h_id is None or d_id is None:
            return None
        return traffic._series.get((h_id << _PAIR_SHIFT) | d_id)

    def __getitem__(self, key) -> list[float]:
        self._traffic.finalize()
        series = self._lookup(key)
        if series is None:
            raise KeyError(key)
        return series

    def get(self, key, default=None):
        """``dict.get`` semantics over the series store."""
        self._traffic.finalize()
        series = self._lookup(key)
        return default if series is None else series

    def __contains__(self, key) -> bool:
        self._traffic.finalize()
        return self._lookup(key) is not None

    def __iter__(self) -> Iterator[tuple[str, str]]:
        traffic = self._traffic
        traffic.finalize()
        hosts = traffic._host_names
        domains = traffic._domain_names
        for pair in traffic._series:
            yield (hosts[pair >> _PAIR_SHIFT], domains[pair & _DOMAIN_MASK])

    def __len__(self) -> int:
        self._traffic.finalize()
        return len(self._traffic._series)

    def items(self):
        """``dict.items`` view, materialized in insertion order."""
        traffic = self._traffic
        traffic.finalize()
        hosts = traffic._host_names
        domains = traffic._domain_names
        return [
            ((hosts[pair >> _PAIR_SHIFT], domains[pair & _DOMAIN_MASK]), times)
            for pair, times in traffic._series.items()
        ]

    def __eq__(self, other) -> bool:
        if isinstance(other, (Mapping, dict)):
            if len(self) != len(other):
                return False
            for key, times in self.items():
                try:
                    if other[key] != times:
                        return False
                except KeyError:
                    return False
            return True
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # mutable mapping semantics, like dict


class DailyTraffic:
    """One day of aggregated connection state (columnar event store).

    Attributes populated by :meth:`ingest`:

    ``hosts_by_domain``
        domain -> set of hosts contacting it (``dom_host`` in Alg. 1).
    ``timestamps``
        (host, domain) -> sorted list of connection times (a
        :class:`TimestampSeriesView` over the columnar series store).
    ``no_referer_hosts`` / ``rare_ua_hosts``
        domain -> hosts that contacted it with no referer / with a rare
        or missing UA (inputs to the NoRef and RareUA features).
    ``resolved_ips``
        domain -> set of IP addresses it resolved to during the day.
    """

    def __init__(self, day: int) -> None:
        self.day = day
        self.hosts_by_domain: dict[str, set[str]] = defaultdict(set)
        self.domains_by_host: dict[str, set[str]] = defaultdict(set)
        self.no_referer_hosts: dict[str, set[str]] = defaultdict(set)
        self.rare_ua_hosts: dict[str, set[str]] = defaultdict(set)
        self.resolved_ips: dict[str, set[str]] = defaultdict(set)
        # --- columnar core ------------------------------------------------
        self._host_ids: dict[str, int] = {}
        self._host_names: list[str] = []
        self._domain_ids: dict[str, int] = {}
        self._domain_names: list[str] = []
        #: packed event columns, amortized-doubling growth.
        self._ev_pair = np.empty(0, dtype=np.int64)
        self._ev_time = np.empty(0, dtype=np.float64)
        self._n_events = 0
        self._n_finalized = 0
        #: packed pair -> sorted timestamp series (Python floats).
        self._series: dict[int, list[float]] = {}
        #: packed pair -> its (host, domain) name tuple, assigned when
        #: the pair is first seen; doubles as the seen-pair set and
        #: saves re-materializing the tuple on every later touch.
        self._pair_names: dict[int, tuple[str, str]] = {}
        #: UA string -> rarity verdict memo.  UA popularity is frozen
        #: for the duration of a day (histories commit at rollover, and
        #: a DailyTraffic lives exactly one day), so each distinct UA
        #: needs one predicate call, not one per event.
        self._ua_rare_memo: dict[str, bool] = {}
        self.timestamps = TimestampSeriesView(self)
        self._index: TrafficIndex | None = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(
        self,
        connections: Iterable[Connection | ConnectionBatch]
        | Connection
        | ConnectionBatch,
        *,
        ua_is_rare=None,
        ua_stage=None,
    ) -> IngestDigest:
        """Aggregate a batch (or a single connection) into the day.

        Accepts a single :class:`Connection`, one columnar
        :class:`~repro.logs.records.ConnectionBatch`, or any iterable
        mixing the two.  Everything stages in arrival order (a batch's
        rows count as arriving at its position) and folds through ONE
        grouping pass, so a drained poll of many bus items costs one
        lexsort, not one per item.  ``ua_is_rare`` is an optional
        predicate (typically ``UserAgentHistory.is_rare``) evaluated
        against each scalar connection's UA; without it the UA features
        stay empty, which is the DNS-dataset situation (columnar
        batches carry no UA/referer context by construction).
        ``ua_stage`` is an optional ``(user_agent, host)`` callback
        (typically :meth:`UserAgentHistory.stage
        <repro.profiling.ua.UserAgentHistory.stage>`) invoked for each
        scalar connection while its fields are already in hand, so
        callers that must stage UA observations avoid a second
        per-event loop.  Returns
        an :class:`IngestDigest` describing the whole call so
        downstream consumers (window, engine, index) never re-iterate
        the events.
        """
        if isinstance(connections, (Connection, ConnectionBatch)):
            connections = (connections,)
        host_ids = self._host_ids
        host_names = self._host_names
        domain_ids = self._domain_ids
        domain_names = self._domain_names
        resolved_ips = self.resolved_ips
        no_referer = self.no_referer_hosts
        rare_ua = self.rare_ua_hosts
        pair_stage: list[int] = []
        time_stage: list[float] = []
        stage_pair = pair_stage.append
        stage_time = time_stage.append
        novel_ips: list[tuple[str, str]] = []
        ua_memo = self._ua_rare_memo
        for conn in connections:
            if conn.__class__ is ConnectionBatch:
                # Columnar staging: intern row-wise, bulk-extend the
                # timestamp column (row order keeps the two stages
                # aligned).
                for host, domain, ip in zip(
                    conn.hosts, conn.domains, conn.resolved_ips
                ):
                    h_id = host_ids.get(host)
                    if h_id is None:
                        h_id = len(host_names)
                        host_ids[host] = h_id
                        host_names.append(host)
                    d_id = domain_ids.get(domain)
                    if d_id is None:
                        d_id = len(domain_names)
                        domain_ids[domain] = d_id
                        domain_names.append(domain)
                    stage_pair((h_id << _PAIR_SHIFT) | d_id)
                    if ip:
                        ips = resolved_ips[domain]
                        if ip not in ips:
                            ips.add(ip)
                            novel_ips.append((domain, ip))
                time_stage += conn.timestamps
                continue
            host = conn.host
            domain = conn.domain
            h_id = host_ids.get(host)
            if h_id is None:
                h_id = len(host_names)
                host_ids[host] = h_id
                host_names.append(host)
            d_id = domain_ids.get(domain)
            if d_id is None:
                d_id = len(domain_names)
                domain_ids[domain] = d_id
                domain_names.append(domain)
            stage_pair((h_id << _PAIR_SHIFT) | d_id)
            stage_time(conn.timestamp)
            ip = conn.resolved_ip
            if ip:
                ips = resolved_ips[domain]
                if ip not in ips:
                    ips.add(ip)
                    novel_ips.append((domain, ip))
            referer = conn.referer
            if referer is not None and not referer:
                no_referer[domain].add(host)
            ua = conn.user_agent
            if ua_is_rare is not None and ua is not None:
                rare = ua_memo.get(ua)
                if rare is None:
                    rare = ua_is_rare(ua)
                    ua_memo[ua] = rare
                if rare:
                    rare_ua[domain].add(host)
            if ua_stage is not None:
                ua_stage(ua, host)
        self._append_events(pair_stage, time_stage)
        digest = self._finalize_pending(novel_ips)
        if self._index is not None:
            self._index.observe_digest(digest)
        return digest

    def _append_events(
        self, pairs: Sequence[int], times: Sequence[float]
    ) -> None:
        """Slice-assign a staged batch into the amortized columns."""
        count = len(pairs)
        if not count:
            return
        need = self._n_events + count
        if need > self._ev_pair.shape[0]:
            capacity = max(self._ev_pair.shape[0] * 2, need, 1024)
            for name in ("_ev_pair", "_ev_time"):
                old = getattr(self, name)
                grown = np.empty(capacity, dtype=old.dtype)
                grown[: self._n_events] = old[: self._n_events]
                setattr(self, name, grown)
        self._ev_pair[self._n_events:need] = pairs
        self._ev_time[self._n_events:need] = times
        self._n_events = need

    def _finalize_pending(
        self, novel_ips: list[tuple[str, str]] | None = None
    ) -> IngestDigest:
        """Merge the unfinalized event span into the sorted series.

        One lexsort of the span by (pair, time) yields every pair's new
        timestamps as a contiguous sorted run; runs merge into the
        per-pair series and simultaneously become the
        :class:`IngestDigest` chunks.  Pairs are processed in
        first-appearance order so new-pair set insertions land in the
        same order per-event processing would produce.

        Streaming-sized spans (micro-batch polls) skip the lexsort: a
        plain dict-of-lists grouping gives the same first-appearance
        order (dict insertion order) and the same sorted chunks
        (per-group timsort), without the fixed per-call cost of the
        array machinery.  Both paths produce identical digests; the
        array path wins only at batch-pipeline span sizes.
        """
        lo, hi = self._n_finalized, self._n_events
        if lo == hi:
            return IngestDigest(
                n_events=0, novel_ips=novel_ips if novel_ips else []
            )
        if hi - lo <= _SMALL_SPAN:
            return self._finalize_small(lo, hi, novel_ips)
        span_pair = self._ev_pair[lo:hi]
        span_time = self._ev_time[lo:hi]
        order = np.lexsort((span_time, span_pair))
        grouped_pair = span_pair[order]
        grouped_time = span_time[order]
        boundaries = np.flatnonzero(grouped_pair[1:] != grouped_pair[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [grouped_pair.shape[0]]))
        # The earliest original position inside each group is the
        # pair's first appearance in the span.
        first_seen_at = np.minimum.reduceat(order, starts)
        appearance = np.argsort(first_seen_at, kind="stable")
        # Convert once; per-group list slicing beats per-group ndarray
        # slicing + tolist by a wide margin at streaming batch sizes.
        time_list = grouped_time.tolist()
        group_pairs = grouped_pair[starts].tolist()
        starts_list = starts.tolist()
        ends_list = ends.tolist()
        series = self._series
        pair_names = self._pair_names
        hosts_by_domain = self.hosts_by_domain
        domains_by_host = self.domains_by_host
        host_names = self._host_names
        domain_names = self._domain_names
        pairs_out: list[int] = []
        named_out: list[tuple[str, str]] = []
        chunks_out: list[list[float]] = []
        domains_out: list[str] = []
        domains_seen: set[str] = set()
        for group in appearance.tolist():
            pair = group_pairs[group]
            values = time_list[starts_list[group]:ends_list[group]]
            existing = series.get(pair)
            if existing is None:
                # First time this day sees the pair: register the edge
                # and its name tuple; only here can a domain's host
                # count -- hence its rarity -- change.
                series[pair] = values
                host = host_names[pair >> _PAIR_SHIFT]
                domain = domain_names[pair & _DOMAIN_MASK]
                named = (host, domain)
                pair_names[pair] = named
                hosts_by_domain[domain].add(host)
                domains_by_host[host].add(domain)
                if domain not in domains_seen:
                    domains_seen.add(domain)
                    domains_out.append(domain)
            else:
                if existing[-1] <= values[0]:
                    existing += values
                else:
                    existing += values
                    existing.sort()
                named = pair_names[pair]
            pairs_out.append(pair)
            named_out.append(named)
            chunks_out.append(values)
        self._n_finalized = hi
        return IngestDigest(
            n_events=hi - lo,
            pairs=pairs_out,
            named_pairs=named_out,
            chunks=chunks_out,
            domains=domains_out,
            novel_ips=novel_ips if novel_ips else [],
        )

    def _finalize_small(
        self, lo: int, hi: int, novel_ips: list[tuple[str, str]] | None
    ) -> IngestDigest:
        """Dict-of-lists twin of the array grouping for small spans."""
        groups: dict[int, list[float]] = {}
        for pair, value in zip(
            self._ev_pair[lo:hi].tolist(), self._ev_time[lo:hi].tolist()
        ):
            chunk = groups.get(pair)
            if chunk is None:
                groups[pair] = [value]
            else:
                chunk.append(value)
        series = self._series
        pair_names = self._pair_names
        hosts_by_domain = self.hosts_by_domain
        domains_by_host = self.domains_by_host
        host_names = self._host_names
        domain_names = self._domain_names
        pairs_out: list[int] = []
        named_out: list[tuple[str, str]] = []
        chunks_out: list[list[float]] = []
        domains_out: list[str] = []
        domains_seen: set[str] = set()
        for pair, values in groups.items():
            values.sort()
            existing = series.get(pair)
            if existing is None:
                series[pair] = values
                host = host_names[pair >> _PAIR_SHIFT]
                domain = domain_names[pair & _DOMAIN_MASK]
                named = (host, domain)
                pair_names[pair] = named
                hosts_by_domain[domain].add(host)
                domains_by_host[host].add(domain)
                if domain not in domains_seen:
                    domains_seen.add(domain)
                    domains_out.append(domain)
            else:
                if existing[-1] <= values[0]:
                    existing += values
                else:
                    existing += values
                    existing.sort()
                named = pair_names[pair]
            pairs_out.append(pair)
            named_out.append(named)
            chunks_out.append(values)
        self._n_finalized = hi
        return IngestDigest(
            n_events=hi - lo,
            pairs=pairs_out,
            named_pairs=named_out,
            chunks=chunks_out,
            domains=domains_out,
            novel_ips=novel_ips if novel_ips else [],
        )

    def finalize(self) -> None:
        """Merge any events not yet folded into the sorted series.

        :meth:`ingest` finalizes its own span, so this is a cheap no-op
        on the streaming access pattern; it exists so out-of-band
        appenders (bulk restore, merge) can defer the grouping pass.
        """
        if self._n_finalized != self._n_events:
            self._finalize_pending()

    def load_series(
        self, host: str, domain: str, times: Iterable[float]
    ) -> None:
        """Bulk-restore one (host, domain) series (checkpoint decode).

        Replaces any existing series for the pair and registers the
        host/domain edge; ``times`` must already be sorted (checkpoint
        documents store them sorted).
        """
        h_id = self._host_ids.get(host)
        if h_id is None:
            h_id = len(self._host_names)
            self._host_ids[host] = h_id
            self._host_names.append(host)
        d_id = self._domain_ids.get(domain)
        if d_id is None:
            d_id = len(self._domain_names)
            self._domain_ids[domain] = d_id
            self._domain_names.append(domain)
        pair = (h_id << _PAIR_SHIFT) | d_id
        self._series[pair] = [float(t) for t in times]
        self._pair_names[pair] = (host, domain)
        self.hosts_by_domain[domain].add(host)
        self.domains_by_host[host].add(domain)

    def _extend_series(
        self, host: str, domain: str, times: list[float]
    ) -> None:
        """Merge a sorted series fragment into the pair's series
        (shard-merge path; tolerates pair collisions across shards)."""
        h_id = self._host_ids.get(host)
        d_id = self._domain_ids.get(domain)
        existing = (
            self._series.get((h_id << _PAIR_SHIFT) | d_id)
            if h_id is not None and d_id is not None
            else None
        )
        if existing is None:
            self.load_series(host, domain, times)
            return
        existing += [float(t) for t in times]
        existing.sort()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def domain_popularity(self, domain: str) -> int:
        return len(self.hosts_by_domain.get(domain, ()))

    def connection_times(self, host: str, domain: str) -> list[float]:
        """Sorted timestamps of one (host, domain) pair's connections."""
        self.finalize()
        return self.timestamps.get((host, domain), [])

    def first_contact(self, host: str, domain: str) -> float | None:
        """Earliest timestamp any host reached ``domain`` today."""
        times = self.connection_times(host, domain)
        return times[0] if times else None

    def rare_series(
        self, rare: Set[str]
    ) -> list[tuple[tuple[str, str], list[float]]]:
        """The automation candidate series, sorted by (host, domain).

        Equivalent to filtering ``sorted(traffic.timestamps.items())``
        by rare domain -- the shape
        :meth:`~repro.timing.detector.AutomationDetector.automated_pairs`
        consumes -- but filters on interned domain ids *before* any
        string-tuple sorting, so the sort touches only the rare pairs
        instead of every series of the day.
        """
        self.finalize()
        domain_ids = self._domain_ids
        rare_ids = {
            domain_ids[domain]
            for domain in rare
            if domain in domain_ids
        }
        if not rare_ids:
            return []
        host_names = self._host_names
        domain_names = self._domain_names
        out = [
            (
                (
                    host_names[pair >> _PAIR_SHIFT],
                    domain_names[pair & _DOMAIN_MASK],
                ),
                times,
            )
            for pair, times in self._series.items()
            if pair & _DOMAIN_MASK in rare_ids
        ]
        out.sort(key=lambda item: item[0])
        return out

    def index(self) -> TrafficIndex:
        """The day's :class:`~repro.profiling.index.TrafficIndex`.

        Built from the current aggregate on first call, then kept in
        sync incrementally by :meth:`ingest`.  Code that mutates the
        traffic dicts directly (checkpoint restore) must call
        :meth:`drop_index` so the next access rebuilds.
        """
        if self._index is None:
            self._index = TrafficIndex(self)
        return self._index

    def drop_index(self) -> None:
        """Invalidate the attached index (after out-of-band mutation)."""
        self._index = None

    def bp_views(
        self, rare: Set[str]
    ) -> tuple[RareDomHostView, RareDomainsByHostView]:
        """``(dom_host, host_rdom)`` for belief propagation, zero-copy.

        Replaces the per-call ``{d: frozenset(...)}`` /
        :func:`rare_domains_by_host` rebuilds: both views answer
        lookups straight from the day's live dicts, restricted to
        ``rare`` (no interned index required)."""
        return (
            RareDomHostView(self.hosts_by_domain, rare),
            RareDomainsByHostView(self.domains_by_host, rare),
        )


def extract_rare_domains(
    traffic: DailyTraffic,
    history: DestinationHistory,
    *,
    unpopular_max_hosts: int = 10,
) -> set[str]:
    """Return the day's rare destinations (new AND unpopular)."""
    rare: set[str] = set()
    for domain, hosts in traffic.hosts_by_domain.items():
        if len(hosts) < unpopular_max_hosts and history.is_new(domain):
            rare.add(domain)
    return rare


def merge_daily_traffic(
    shards: Iterable[DailyTraffic], *, day: int | None = None
) -> DailyTraffic:
    """Union per-shard day aggregates into one :class:`DailyTraffic`.

    Sound when the shards partition connections by *host* hash (the
    event bus's :func:`~repro.streaming.events.shard_of`): every
    (host, domain) timestamp series then lives wholly inside one shard,
    so the pair-keyed series are disjoint and concatenate trivially,
    while the domain-keyed host/IP sets union commutatively.  The
    result is indistinguishable from ingesting all connections into a
    single aggregate, which is what makes a sharded day's rollover
    detections byte-identical to serial ingestion (the property the
    resident fleet workers' sharded windows rely on).

    The merged aggregate carries no armed index; callers needing one
    build it with :meth:`DailyTraffic.index` after merging.
    """
    shards = list(shards)
    if day is None:
        day = shards[0].day if shards else 0
    merged = DailyTraffic(day)
    for shard in shards:
        shard.finalize()
        for domain, hosts in shard.hosts_by_domain.items():
            merged.hosts_by_domain[domain] |= hosts
        for host, domains in shard.domains_by_host.items():
            merged.domains_by_host[host] |= domains
        host_names = shard._host_names
        domain_names = shard._domain_names
        for pair, times in shard._series.items():
            merged._extend_series(
                host_names[pair >> _PAIR_SHIFT],
                domain_names[pair & _DOMAIN_MASK],
                times,
            )
        for domain, ips in shard.resolved_ips.items():
            merged.resolved_ips[domain] |= ips
        for domain, hosts in shard.no_referer_hosts.items():
            merged.no_referer_hosts[domain] |= hosts
        for domain, hosts in shard.rare_ua_hosts.items():
            merged.rare_ua_hosts[domain] |= hosts
    return merged


def rare_domains_by_host(
    traffic: DailyTraffic, rare: set[str]
) -> dict[str, set[str]]:
    """``host_rdom`` map of Algorithm 1: host -> rare domains visited."""
    by_host: dict[str, set[str]] = defaultdict(set)
    for domain in rare:
        for host in traffic.hosts_by_domain.get(domain, ()):
            by_host[host].add(domain)
    return dict(by_host)


class RareDomainTracker:
    """Incrementally maintained rare set for one day of traffic.

    :func:`extract_rare_domains` rescans every domain of the day; at
    streaming rates that is O(domains) per micro-batch.  The tracker
    instead reacts to popularity changes: a domain enters the rare set
    on its first contact of the day (if absent from the history) and
    leaves it for good once ``unpopular_max_hosts`` distinct hosts have
    contacted it.  The invariant, checked by the parity tests, is that
    :attr:`rare` always equals ``extract_rare_domains`` on the same
    traffic and history.
    """

    def __init__(
        self,
        history: DestinationHistory,
        *,
        unpopular_max_hosts: int = 10,
    ) -> None:
        self.history = history
        self.unpopular_max_hosts = unpopular_max_hosts
        self.rare: set[str] = set()

    def update(self, domain: str, popularity: int) -> int:
        """React to ``domain`` now having ``popularity`` distinct hosts.

        Returns +1 when the domain entered the rare set, -1 when it
        left, 0 when nothing changed.
        """
        if popularity < self.unpopular_max_hosts and self.history.is_new(domain):
            if domain not in self.rare:
                self.rare.add(domain)
                return +1
        elif domain in self.rare:
            self.rare.discard(domain)
            return -1
        return 0

    def resync(self, traffic: DailyTraffic) -> set[str]:
        """Rebuild the rare set from scratch (checkpoint restore)."""
        self.rare = extract_rare_domains(
            traffic,
            self.history,
            unpopular_max_hosts=self.unpopular_max_hosts,
        )
        return self.rare

    def reset(self) -> None:
        """Clear for a new day (after the history committed)."""
        self.rare.clear()
