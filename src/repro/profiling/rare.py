"""Daily rare-destination extraction (Section III-A).

A destination is **rare** on a day when it is both

* *new* -- never contacted by any internal host before that day, and
* *unpopular* -- contacted by fewer than ``unpopular_max_hosts``
  distinct hosts during the day (default 10, per SOC guidance).

:class:`DailyTraffic` aggregates one day of normalized connections into
the per-domain / per-host indexes everything downstream consumes:
the rare set, the ``dom_host`` and ``host_rdom`` maps of Algorithm 1,
and per-(host, domain) timestamp series for the timing detector.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Set

from ..logs.records import Connection
from .history import DestinationHistory
from .index import RareDomainsByHostView, RareDomHostView, TrafficIndex


class DailyTraffic:
    """One day of aggregated connection state.

    Attributes populated by :meth:`ingest`:

    ``hosts_by_domain``
        domain -> set of hosts contacting it (``dom_host`` in Alg. 1).
    ``timestamps``
        (host, domain) -> sorted list of connection times.
    ``no_referer_hosts`` / ``rare_ua_hosts``
        domain -> hosts that contacted it with no referer / with a rare
        or missing UA (inputs to the NoRef and RareUA features).
    ``resolved_ips``
        domain -> set of IP addresses it resolved to during the day.
    """

    def __init__(self, day: int) -> None:
        self.day = day
        self.hosts_by_domain: dict[str, set[str]] = defaultdict(set)
        self.domains_by_host: dict[str, set[str]] = defaultdict(set)
        self.timestamps: dict[tuple[str, str], list[float]] = defaultdict(list)
        self.no_referer_hosts: dict[str, set[str]] = defaultdict(set)
        self.rare_ua_hosts: dict[str, set[str]] = defaultdict(set)
        self.resolved_ips: dict[str, set[str]] = defaultdict(set)
        self._unsorted: set[tuple[str, str]] = set()
        self._index: TrafficIndex | None = None

    def ingest(
        self,
        connections: Iterable[Connection],
        *,
        ua_is_rare=None,
    ) -> None:
        """Aggregate connections into the day's indexes.

        ``ua_is_rare`` is an optional predicate (typically
        ``UserAgentHistory.is_rare``) evaluated against each
        connection's UA; without it the UA features stay empty, which
        is the DNS-dataset situation.
        """
        if self._index is not None:
            connections = list(connections)
        for conn in connections:
            self.hosts_by_domain[conn.domain].add(conn.host)
            self.domains_by_host[conn.host].add(conn.domain)
            self.timestamps[(conn.host, conn.domain)].append(conn.timestamp)
            self._unsorted.add((conn.host, conn.domain))
            if conn.resolved_ip:
                self.resolved_ips[conn.domain].add(conn.resolved_ip)
            if conn.referer is not None and not conn.referer:
                self.no_referer_hosts[conn.domain].add(conn.host)
            if ua_is_rare is not None and conn.user_agent is not None:
                if ua_is_rare(conn.user_agent):
                    self.rare_ua_hosts[conn.domain].add(conn.host)
        if self._index is not None:
            self._index.observe(connections)

    def finalize(self) -> None:
        """Sort timestamp series touched since the last call.

        Only series with new appends are re-sorted, so interleaving
        ingestion and queries -- the streaming engine's access pattern
        -- costs O(touched) rather than O(all series) per round.
        """
        for pair in self._unsorted:
            self.timestamps[pair].sort()
        self._unsorted.clear()

    def domain_popularity(self, domain: str) -> int:
        return len(self.hosts_by_domain.get(domain, ()))

    def connection_times(self, host: str, domain: str) -> list[float]:
        """Sorted timestamps of one (host, domain) pair's connections."""
        self.finalize()
        return self.timestamps.get((host, domain), [])

    def first_contact(self, host: str, domain: str) -> float | None:
        """Earliest timestamp any host reached ``domain`` today."""
        times = self.connection_times(host, domain)
        return times[0] if times else None

    def index(self) -> TrafficIndex:
        """The day's :class:`~repro.profiling.index.TrafficIndex`.

        Built from the current aggregate on first call, then kept in
        sync incrementally by :meth:`ingest`.  Code that mutates the
        traffic dicts directly (checkpoint restore) must call
        :meth:`drop_index` so the next access rebuilds.
        """
        if self._index is None:
            self._index = TrafficIndex(self)
        return self._index

    def drop_index(self) -> None:
        """Invalidate the attached index (after out-of-band mutation)."""
        self._index = None

    def bp_views(
        self, rare: Set[str]
    ) -> tuple[RareDomHostView, RareDomainsByHostView]:
        """``(dom_host, host_rdom)`` for belief propagation, zero-copy.

        Replaces the per-call ``{d: frozenset(...)}`` /
        :func:`rare_domains_by_host` rebuilds: both views answer
        lookups straight from the day's live dicts, restricted to
        ``rare`` (no interned index required)."""
        return (
            RareDomHostView(self.hosts_by_domain, rare),
            RareDomainsByHostView(self.domains_by_host, rare),
        )


def extract_rare_domains(
    traffic: DailyTraffic,
    history: DestinationHistory,
    *,
    unpopular_max_hosts: int = 10,
) -> set[str]:
    """Return the day's rare destinations (new AND unpopular)."""
    rare: set[str] = set()
    for domain, hosts in traffic.hosts_by_domain.items():
        if len(hosts) < unpopular_max_hosts and history.is_new(domain):
            rare.add(domain)
    return rare


def merge_daily_traffic(
    shards: Iterable[DailyTraffic], *, day: int | None = None
) -> DailyTraffic:
    """Union per-shard day aggregates into one :class:`DailyTraffic`.

    Sound when the shards partition connections by *host* hash (the
    event bus's :func:`~repro.streaming.events.shard_of`): every
    (host, domain) timestamp series then lives wholly inside one shard,
    so the pair-keyed dicts are disjoint and concatenate trivially,
    while the domain-keyed host/IP sets union commutatively.  The
    result is indistinguishable from ingesting all connections into a
    single aggregate, which is what makes a sharded day's rollover
    detections byte-identical to serial ingestion (the property the
    resident fleet workers' sharded windows rely on).

    The merged aggregate carries no armed index; callers needing one
    build it with :meth:`DailyTraffic.index` after merging.
    """
    shards = list(shards)
    if day is None:
        day = shards[0].day if shards else 0
    merged = DailyTraffic(day)
    for shard in shards:
        for domain, hosts in shard.hosts_by_domain.items():
            merged.hosts_by_domain[domain] |= hosts
        for host, domains in shard.domains_by_host.items():
            merged.domains_by_host[host] |= domains
        for pair, times in shard.timestamps.items():
            merged.timestamps[pair].extend(times)
        for domain, ips in shard.resolved_ips.items():
            merged.resolved_ips[domain] |= ips
        for domain, hosts in shard.no_referer_hosts.items():
            merged.no_referer_hosts[domain] |= hosts
        for domain, hosts in shard.rare_ua_hosts.items():
            merged.rare_ua_hosts[domain] |= hosts
        merged._unsorted |= shard._unsorted
    return merged


def rare_domains_by_host(
    traffic: DailyTraffic, rare: set[str]
) -> dict[str, set[str]]:
    """``host_rdom`` map of Algorithm 1: host -> rare domains visited."""
    by_host: dict[str, set[str]] = defaultdict(set)
    for domain in rare:
        for host in traffic.hosts_by_domain.get(domain, ()):
            by_host[host].add(domain)
    return dict(by_host)


class RareDomainTracker:
    """Incrementally maintained rare set for one day of traffic.

    :func:`extract_rare_domains` rescans every domain of the day; at
    streaming rates that is O(domains) per micro-batch.  The tracker
    instead reacts to popularity changes: a domain enters the rare set
    on its first contact of the day (if absent from the history) and
    leaves it for good once ``unpopular_max_hosts`` distinct hosts have
    contacted it.  The invariant, checked by the parity tests, is that
    :attr:`rare` always equals ``extract_rare_domains`` on the same
    traffic and history.
    """

    def __init__(
        self,
        history: DestinationHistory,
        *,
        unpopular_max_hosts: int = 10,
    ) -> None:
        self.history = history
        self.unpopular_max_hosts = unpopular_max_hosts
        self.rare: set[str] = set()

    def update(self, domain: str, popularity: int) -> int:
        """React to ``domain`` now having ``popularity`` distinct hosts.

        Returns +1 when the domain entered the rare set, -1 when it
        left, 0 when nothing changed.
        """
        if popularity < self.unpopular_max_hosts and self.history.is_new(domain):
            if domain not in self.rare:
                self.rare.add(domain)
                return +1
        elif domain in self.rare:
            self.rare.discard(domain)
            return -1
        return 0

    def resync(self, traffic: DailyTraffic) -> set[str]:
        """Rebuild the rare set from scratch (checkpoint restore)."""
        self.rare = extract_rare_domains(
            traffic,
            self.history,
            unpopular_max_hosts=self.unpopular_max_hosts,
        )
        return self.rare

    def reset(self) -> None:
        """Clear for a new day (after the history committed)."""
        self.rare.clear()
