"""Profiling substrate: destination/UA histories and rare destinations."""

from .history import DestinationHistory
from .rare import (
    DailyTraffic,
    extract_rare_domains,
    merge_daily_traffic,
    rare_domains_by_host,
)
from .ua import UserAgentHistory

__all__ = [
    "DestinationHistory",
    "DailyTraffic",
    "extract_rare_domains",
    "merge_daily_traffic",
    "rare_domains_by_host",
    "UserAgentHistory",
]
