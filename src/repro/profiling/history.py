"""Destination history: which external domains the enterprise has seen.

The system bootstraps the history over one month of traffic, then
updates it incrementally at the end of each operational day
(Section III-A).  A domain is **new** on a day if it is absent from the
history at the *start* of that day; the day's connections are folded in
only when :meth:`DestinationHistory.commit_day` is called, so ordering
within a day cannot leak future knowledge.
"""

from __future__ import annotations

from collections.abc import Iterable


class DestinationHistory:
    """Incrementally maintained set of previously seen (folded) domains.

    The history also remembers the first day each domain was observed,
    which supports retrospective analyses and the Figure 2 funnel.
    """

    def __init__(self) -> None:
        self._first_seen: dict[str, int] = {}
        self._pending: dict[str, int] = {}
        self._committed_days: set[int] = set()

    def __len__(self) -> int:
        return len(self._first_seen)

    def __contains__(self, domain: str) -> bool:
        return domain in self._first_seen

    def is_new(self, domain: str) -> bool:
        """Whether ``domain`` is absent from the committed history."""
        return domain not in self._first_seen

    def first_seen(self, domain: str) -> int | None:
        """Day index the domain was first committed, or ``None``."""
        return self._first_seen.get(domain)

    def stage(self, domain: str, day: int) -> None:
        """Record a same-day observation without committing it.

        Staged domains still count as *new* until :meth:`commit_day`
        runs, matching the paper's end-of-day history update.
        """
        if domain not in self._first_seen:
            existing = self._pending.get(domain)
            if existing is None or day < existing:
                self._pending[domain] = day

    def commit_day(self, day: int) -> int:
        """Fold all staged observations into the history.

        Returns the number of domains newly added.  The ``day`` argument
        is recorded for bookkeeping; staged entries keep their own first
        observation day.
        """
        added = 0
        for domain, first_day in self._pending.items():
            if domain not in self._first_seen:
                self._first_seen[domain] = first_day
                added += 1
        self._pending.clear()
        self._committed_days.add(day)
        return added

    def bootstrap(self, domains: Iterable[str], day: int = -1) -> None:
        """Seed the history from the training month in one shot."""
        for domain in domains:
            self._first_seen.setdefault(domain, day)
        self._committed_days.add(day)

    @property
    def committed_days(self) -> frozenset[int]:
        return frozenset(self._committed_days)
