"""Interned traffic index: the data layer of the scoring hot path.

Belief propagation rescoring (Algorithm 1) repeatedly asks the same
questions of one day's traffic: which hosts contact this domain, when
did a host first reach it, which subnets does it resolve into.  The
plain :class:`~repro.profiling.rare.DailyTraffic` dicts answer them
with string keys and per-call set copies; at production frontier sizes
that dominates a detection pass.

:class:`TrafficIndex` interns hosts and domains into dense integer
ids once and maintains:

* CSR-style host<->domain adjacency -- per-domain host-id lists (in
  first-contact order) and per-host domain-id lists;
* per-(host, domain) first-contact times, aligned with the adjacency
  so similarity scoring never re-scans a timestamp series;
* per-domain /24 and /16 subnet-key sets, precomputed from resolved
  IPs as they arrive.

The index is built lazily from a day's aggregate
(:meth:`DailyTraffic.index <repro.profiling.rare.DailyTraffic.index>`)
and from then on updated *incrementally* by
:meth:`DailyTraffic.ingest` -- the streaming
:class:`~repro.streaming.window.WindowedAggregator` therefore pays
O(batch) per micro-batch instead of an O(day) rebuild per scoring
call.  :attr:`version` increments on every mutation so consumers that
snapshot derived state (the incremental scorers) can detect staleness.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Set
from typing import TYPE_CHECKING

from ..logs.domains import subnet_key
from ..logs.records import Connection

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .rare import DailyTraffic, IngestDigest

#: Shift packing (host_id, domain_id) into one dict key; ids are dense
#: small ints, so the packed key stays a machine-word int in practice.
_PAIR_SHIFT = 32
_DOMAIN_MASK = (1 << _PAIR_SHIFT) - 1


class TrafficIndex:
    """Incrementally maintained integer-id view over one day's traffic."""

    def __init__(self, traffic: "DailyTraffic") -> None:
        self.traffic = traffic
        self.version = 0
        # The intern tables are SHARED with the traffic store: both
        # sides assign ids from the same dicts, so the packed pair ids
        # in an :class:`IngestDigest` are directly usable here -- the
        # digest fold touches no string keys at all.  Per-id rows are
        # grown on demand because the traffic store may intern ids
        # before the index sees them.
        self._host_ids: dict[str, int] = traffic._host_ids
        self._domain_ids: dict[str, int] = traffic._domain_ids
        self._host_names: list[str] = traffic._host_names
        self._domain_names: list[str] = traffic._domain_names
        #: per domain id: host ids in first-contact order (CSR rows).
        self._hosts_of: list[list[int]] = []
        #: per domain id: first-contact time aligned with ``_hosts_of``.
        self._first_of: list[list[float]] = []
        #: per host id: domain ids in first-contact order.
        self._domains_of: list[list[int]] = []
        #: packed (host_id << 32 | domain_id) -> earliest timestamp.
        self._first: dict[int, float] = {}
        #: packed pair -> the pair's row slot in ``_first_of``; makes
        #: out-of-order earlier timestamps an O(1) update.
        self._slot: dict[int, int] = {}
        self._keys24: list[set[str]] = []
        self._keys16: list[set[str]] = []
        self._ips_seen: list[set[str]] = []
        self._build()

    # ------------------------------------------------------------------
    # Construction / incremental maintenance
    # ------------------------------------------------------------------

    def _build(self) -> None:
        """Index the traffic's current content (one full scan)."""
        traffic = self.traffic
        for (host, domain), times in traffic.timestamps.items():
            if not times:
                continue
            self._record(host, domain, min(times))
        for domain, ips in traffic.resolved_ips.items():
            for ip in ips:
                self._record_ip(domain, ip)
        self.version += 1

    def observe(self, connections: Iterable[Connection]) -> None:
        """Fold new connections in (per-event parity path).

        :meth:`observe_digest` is the batched equivalent the columnar
        ingest uses; this loop remains for callers holding raw
        connections and for the parity tests pinning the two paths
        together.
        """
        for conn in connections:
            self._record(conn.host, conn.domain, conn.timestamp)
            if conn.resolved_ip:
                self._record_ip(conn.domain, conn.resolved_ip)
        self.version += 1

    def observe_digest(self, digest: "IngestDigest") -> None:
        """Fold one columnar ingest batch in, without re-looping events.

        Bit-identical to :meth:`observe` on the batch's connections:
        each touched pair's earliest batch timestamp (``chunk[0]`` --
        chunks are sorted) is all ``_record`` can ever keep from the
        batch, pairs arrive in first-appearance order so new rows land
        in the order per-event processing would produce, and novel
        (domain, ip) resolutions replay in arrival order.  The digest's
        packed pair ids come from the shared intern tables, so the pair
        loop does pure integer work -- no string lookups.
        """
        first = self._first
        slot = self._slot
        hosts_of = self._hosts_of
        first_of = self._first_of
        domains_of = self._domains_of
        for pair, chunk in zip(digest.pairs, digest.chunks):
            known = first.get(pair)
            if known is None:
                h_id = pair >> _PAIR_SHIFT
                d_id = pair & _DOMAIN_MASK
                while len(domains_of) <= h_id:
                    domains_of.append([])
                if len(hosts_of) <= d_id:
                    self._grow_domain_rows(d_id)
                timestamp = chunk[0]
                first[pair] = timestamp
                row = hosts_of[d_id]
                slot[pair] = len(row)
                row.append(h_id)
                first_of[d_id].append(timestamp)
                domains_of[h_id].append(d_id)
            elif chunk[0] < known:
                first[pair] = chunk[0]
                first_of[pair & _DOMAIN_MASK][slot[pair]] = chunk[0]
        for domain, ip in digest.novel_ips:
            self._record_ip(domain, ip)
        self.version += 1

    def _grow_domain_rows(self, d_id: int) -> None:
        """Extend the per-domain rows to cover ``d_id``.

        Ids can be interned by the traffic store before the index
        records them, so row growth is decoupled from id assignment;
        intermediate ids get empty rows, which downstream scorers
        already treat as "no traffic today".
        """
        while len(self._hosts_of) <= d_id:
            self._hosts_of.append([])
            self._first_of.append([])
            self._keys24.append(set())
            self._keys16.append(set())
            self._ips_seen.append(set())

    def _intern_host(self, host: str) -> int:
        h_id = self._host_ids.get(host)
        if h_id is None:
            h_id = len(self._host_names)
            self._host_ids[host] = h_id
            self._host_names.append(host)
        while len(self._domains_of) <= h_id:
            self._domains_of.append([])
        return h_id

    def _intern_domain(self, domain: str) -> int:
        d_id = self._domain_ids.get(domain)
        if d_id is None:
            d_id = len(self._domain_names)
            self._domain_ids[domain] = d_id
            self._domain_names.append(domain)
        self._grow_domain_rows(d_id)
        return d_id

    def _record(self, host: str, domain: str, timestamp: float) -> None:
        h_id = self._intern_host(host)
        d_id = self._intern_domain(domain)
        key = (h_id << _PAIR_SHIFT) | d_id
        known = self._first.get(key)
        if known is None:
            self._first[key] = timestamp
            self._slot[key] = len(self._hosts_of[d_id])
            self._hosts_of[d_id].append(h_id)
            self._first_of[d_id].append(timestamp)
            self._domains_of[h_id].append(d_id)
        elif timestamp < known:
            self._first[key] = timestamp
            self._first_of[d_id][self._slot[key]] = timestamp

    def _record_ip(self, domain: str, ip: str) -> None:
        d_id = self._intern_domain(domain)
        if ip in self._ips_seen[d_id]:
            return
        self._ips_seen[d_id].add(ip)
        self._keys24[d_id].add(subnet_key(ip, 24))
        self._keys16[d_id].add(subnet_key(ip, 16))

    # ------------------------------------------------------------------
    # Queries (id-level, used by the incremental scorers)
    # ------------------------------------------------------------------

    def domain_id(self, domain: str) -> int | None:
        """Dense id for a domain name; ``None`` when never indexed.

        A domain the shared intern tables know but the index has no
        row for (interned after the last fold) reports ``None`` --
        same contract as before intern-table sharing.
        """
        d_id = self._domain_ids.get(domain)
        if d_id is None or d_id >= len(self._hosts_of):
            return None
        return d_id

    def domain_name(self, d_id: int) -> str:
        """Name interned under ``d_id``."""
        return self._domain_names[d_id]

    def hosts_of(self, d_id: int) -> list[int]:
        """Host ids contacting the domain (first-contact order)."""
        return self._hosts_of[d_id]

    def first_contacts_of(self, d_id: int) -> list[float]:
        """First-contact times aligned with :meth:`hosts_of`."""
        return self._first_of[d_id]

    def domains_of(self, h_id: int) -> list[int]:
        """Domain ids the host contacted (first-contact order)."""
        return self._domains_of[h_id]

    def first_contact(self, h_id: int, d_id: int) -> float:
        """Earliest time ``h_id`` reached ``d_id`` (pair must exist)."""
        return self._first[(h_id << _PAIR_SHIFT) | d_id]

    def host_count(self, d_id: int) -> int:
        """Distinct hosts contacting the domain today."""
        return len(self._hosts_of[d_id])

    def keys24(self, d_id: int) -> set[str]:
        """/24 subnet keys of the domain's resolved IPs."""
        return self._keys24[d_id]

    def keys16(self, d_id: int) -> set[str]:
        """/16 subnet keys of the domain's resolved IPs."""
        return self._keys16[d_id]

class RareDomHostView(Mapping):
    """Lazy ``dom_host`` map: rare domain -> hosts contacting it.

    Equivalent to ``{d: frozenset(hosts_by_domain[d]) for d in rare}``
    without materializing any copy; belief propagation only reads.
    """

    __slots__ = ("_hosts_by_domain", "_rare")

    def __init__(
        self, hosts_by_domain: Mapping[str, set[str]], rare: Set[str]
    ) -> None:
        self._hosts_by_domain = hosts_by_domain
        self._rare = rare

    def __getitem__(self, domain: str) -> Set[str]:
        if domain not in self._rare:
            raise KeyError(domain)
        hosts = self._hosts_by_domain.get(domain)
        if hosts is None:
            raise KeyError(domain)
        return hosts

    def __contains__(self, domain: object) -> bool:
        return domain in self._rare and domain in self._hosts_by_domain

    def __iter__(self) -> Iterator[str]:
        return (d for d in self._rare if d in self._hosts_by_domain)

    def __len__(self) -> int:
        return sum(1 for _ in self)


class RareDomainsByHostView(Mapping):
    """Lazy ``host_rdom`` map: host -> rare domains it visited.

    Intersections are computed on first access and memoized -- belief
    propagation re-reads each compromised host once per iteration, so
    the cache turns O(iterations x hosts) set work into O(hosts).
    """

    __slots__ = ("_domains_by_host", "_rare", "_cache")

    def __init__(
        self, domains_by_host: Mapping[str, set[str]], rare: Set[str]
    ) -> None:
        self._domains_by_host = domains_by_host
        self._rare = rare
        self._cache: dict[str, set[str]] = {}

    def __getitem__(self, host: str) -> Set[str]:
        cached = self._cache.get(host)
        if cached is None:
            visited = self._domains_by_host.get(host)
            if visited is None:
                raise KeyError(host)
            cached = visited & self._rare
            self._cache[host] = cached
        return cached

    def __contains__(self, host: object) -> bool:
        return host in self._domains_by_host

    def __iter__(self) -> Iterator[str]:
        return iter(self._domains_by_host)

    def __len__(self) -> int:
        return len(self._domains_by_host)
