"""Figure 5: score CDFs of VT-reported vs legitimate automated domains.

Paper: automated domains reported by VirusTotal score visibly higher
than legitimate automated domains under the trained C&C regression
model; a 0.4 threshold yields ~57% TDR at ~11% FPR on their training
fortnight.  The shape: the reported-score distribution stochastically
dominates the legitimate one.
"""

import statistics

from conftest import save_output

from repro.eval import cdf_at, render_table

CHECKPOINTS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8)


def test_fig5_score_cdfs(benchmark, enterprise_evaluation):
    reported, legitimate = benchmark.pedantic(
        enterprise_evaluation.score_samples, rounds=1, iterations=1
    )
    assert reported and legitimate
    assert statistics.mean(reported) > statistics.mean(legitimate)

    rows = [
        (f"{c:.1f}",
         f"{cdf_at(reported, c):.3f}",
         f"{cdf_at(legitimate, c):.3f}")
        for c in CHECKPOINTS
    ]
    # At every checkpoint the legitimate CDF is at least the reported
    # one (stochastic dominance of reported scores).
    for _, rep, leg in rows:
        assert float(leg) >= float(rep) - 0.10

    save_output(
        "fig5_score_cdf",
        render_table(
            ("score", "CDF reported", "CDF legitimate"),
            rows,
            title=(
                "Figure 5 analogue -- automated-domain score CDFs "
                f"(n={len(reported)} reported, n={len(legitimate)} legitimate)"
            ),
        ),
    )
