"""Figure 6(a): C&C detections vs the automated-domain score threshold.

Paper: raising Tc from 0.40 to 0.48 shrinks detections from 114 to 19
domains while TDR rises from 85.08% to 94.7%; the 0.40 operating point
is kept because the extra (noisier) detections include new discoveries
worth seeding belief propagation with.  Shape: count decreases
monotonically in the threshold; detected sets are nested; true C&C
domains are among the detections.
"""

from conftest import save_output

from repro.eval import render_table

THRESHOLDS = (0.40, 0.42, 0.44, 0.45, 0.46, 0.48)


def test_fig6a_cc_sweep(benchmark, enterprise_evaluation, enterprise_dataset):
    sweep = benchmark.pedantic(
        enterprise_evaluation.cc_sweep, args=(THRESHOLDS,),
        rounds=1, iterations=1,
    )

    counts = [p.detected_count for p in sweep]
    assert counts == sorted(counts, reverse=True)
    for looser, stricter in zip(sweep, sweep[1:]):
        assert stricter.detected <= looser.detected
    truth_cc = {d for c in enterprise_dataset.campaigns for d in c.cc_domains}
    assert sweep[0].detected & truth_cc

    rows = [
        (f"{p.threshold:.2f}", p.detected_count,
         p.breakdown.known_malicious, p.breakdown.new_malicious,
         p.breakdown.legitimate, f"{p.breakdown.tdr:.1%}")
        for p in sweep
    ]
    save_output(
        "fig6a_cc_sweep",
        render_table(
            ("Tc", "detected", "VT/SOC", "new mal.", "legit", "TDR"),
            rows,
            title="Figure 6(a) analogue -- C&C detections vs score threshold "
                  "(paper: 114->19 domains, TDR 85.1%->94.7%)",
        ),
    )
