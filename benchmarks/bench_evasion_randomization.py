"""Evasion analysis: detection vs attacker timing randomization (§VIII).

Paper: "attackers can randomize timing patterns to C&C servers, but
according to published reports this is uncommon.  Our dynamic histogram
method is resilient against small amounts of randomization"; detecting
*fully* randomized beacons is left open.  This bench quantifies that
claim at the timing layer: recall of the automation detector as beacon
jitter grows from 0 to a full period, for the paper's parameters
(W=10 s, JT=0.06) and a loosened variant (JT=0.35).  Shape: recall
stays at 1.0 for jitter within the bin width, degrades as jitter
crosses it, and collapses for full randomization -- with the looser
threshold degrading later.

This is the micro view folded into the adversarial campaign suite:
``bench_evasion_suite.py`` drives the same jitter knob through the
*full* pipelines (reduction, rare filtering, beacon correlation) as
the ``jitter`` campaign archetype.  The whole strength axis here is a
pure function of one ``SEED`` -- trial RNGs are derived from
(seed, axis index, trial), never from the jitter value itself, so
editing the axis cannot silently reshuffle the random draws of the
points that stayed.
"""

import random

from conftest import save_output

from repro.config import HistogramConfig
from repro.eval import render_table
from repro.timing import AutomationDetector

JITTER_FRACTIONS = (0.0, 0.005, 0.01, 0.02, 0.05, 0.2, 0.5, 1.0)
PERIOD = 600.0
TRIALS = 40
#: Single root seed for the entire strength axis.
SEED = 8191


def beacon(period, count, jitter, rng):
    times, t = [], 0.0
    for _ in range(count):
        times.append(t)
        t += max(1.0, period + rng.uniform(-jitter, jitter))
    return times


def recall_at(detector, jitter, axis_index):
    hits = 0
    for trial in range(TRIALS):
        rng = random.Random(SEED + 1000 * axis_index + trial)
        times = beacon(PERIOD, 30, jitter, rng)
        if detector.test_series("h", "d", times).automated:
            hits += 1
    return hits / TRIALS


def test_evasion_randomization():
    paper = AutomationDetector(
        HistogramConfig(bin_width=10.0, jeffrey_threshold=0.06)
    )
    loose = AutomationDetector(
        HistogramConfig(bin_width=10.0, jeffrey_threshold=0.35)
    )

    rows = []
    recalls_paper = []
    recalls_loose = []
    for index, fraction in enumerate(JITTER_FRACTIONS):
        jitter = fraction * PERIOD
        r_paper = recall_at(paper, jitter, index)
        r_loose = recall_at(loose, jitter, index)
        recalls_paper.append(r_paper)
        recalls_loose.append(r_loose)
        rows.append(
            (f"{fraction:.1%}", f"{jitter:.0f}",
             f"{r_paper:.2f}", f"{r_loose:.2f}")
        )

    # Shape assertions: resilient to small jitter, broken by full
    # randomization, and the looser threshold dominates everywhere.
    assert recalls_paper[0] == 1.0
    assert recalls_paper[1] == 1.0  # jitter 3 s << W
    assert recalls_paper[-1] <= 0.2  # full randomization defeats it
    assert all(l >= p for p, l in zip(recalls_paper, recalls_loose))

    save_output(
        "evasion_randomization",
        render_table(
            ("jitter/period", "jitter (s)", "recall JT=0.06", "recall JT=0.35"),
            rows,
            title="Section VIII analogue -- detection vs attacker "
                  "randomization (W=10 s, 10-min beacon)",
        ),
    )
