"""Table III: per-case true/false positives and negatives on LANL.

Paper: across the 20 campaigns, 26 training TPs and 33 testing TPs with
0/1 false positives and 3/1 false negatives, for overall TDR 98.33%,
FDR 1.67%, FNR 6.25%.  The shape to reproduce: near-complete detection
with at most a handful of errors in the same regime.
"""

from conftest import save_output

from repro.eval import LanlChallengeSolver, render_table


def solve_all(dataset):
    return LanlChallengeSolver(dataset).solve_all()


def test_table3_lanl_results(benchmark, lanl_dataset):
    report = benchmark.pedantic(
        solve_all, args=(lanl_dataset,), rounds=1, iterations=1
    )

    overall = report.overall
    assert overall.tdr >= 0.9
    assert overall.fdr <= 0.1
    assert overall.fnr <= 0.15

    rows = []
    for case in (1, 2, 3, 4):
        train = report.counts_for(case, training=True)
        test = report.counts_for(case, training=False)
        rows.append(
            (f"Case {case}",
             train.true_positives, test.true_positives,
             train.false_positives, test.false_positives,
             train.false_negatives, test.false_negatives)
        )
    train_total = report.totals(True)
    test_total = report.totals(False)
    rows.append(
        ("Total",
         train_total.true_positives, test_total.true_positives,
         train_total.false_positives, test_total.false_positives,
         train_total.false_negatives, test_total.false_negatives)
    )

    table = render_table(
        ("case", "TP(tr)", "TP(te)", "FP(tr)", "FP(te)", "FN(tr)", "FN(te)"),
        rows,
        title="Table III analogue -- results on the LANL challenge",
    )
    summary = (
        f"\nmeasured: TDR={overall.tdr:.2%} FDR={overall.fdr:.2%} "
        f"FNR={overall.fnr:.2%}\n"
        "paper:    TDR=98.33% FDR=1.67% FNR=6.25%"
    )
    save_output("table3_lanl_results", table + summary)
