"""Figure 8: a community discovered in SOC-hints mode.

Paper (2/10): one IOC seed (a Zeus C&C) leads through its contacting
host to seven sibling ``.org`` domains (the Ramdo set) and, in a second
iteration, to six more hosts contacting the same set -- including one
domain unknown to both the SOC and VirusTotal (a new discovery).
Shape: an IOC-seeded BP run recovers same-campaign sibling domains and
additional compromised hosts, at least one sibling not VT-reported.
"""

import networkx as nx
from conftest import save_output

from repro.core.beliefprop import belief_propagation
from repro.profiling.rare import rare_domains_by_host


def find_hinted_community(evaluation):
    seeds = set(evaluation.ioc.seeds())
    for op_day in evaluation.days:
        present = {
            domain for domain in seeds
            if domain in op_day.traffic.hosts_by_domain
        }
        if not present:
            continue
        seed_hosts = set()
        for domain in present:
            seed_hosts.update(op_day.traffic.hosts_by_domain.get(domain, ()))
        cc_set = {d for d, s in op_day.cc_scores.items() if s >= 0.4}
        result = belief_propagation(
            seed_hosts,
            present,
            dom_host=op_day.dom_host(),
            host_rdom=rare_domains_by_host(op_day.traffic, op_day.rare),
            detect_cc=lambda dom: dom in cc_set,
            similarity_score=lambda dom, mal: (
                evaluation.detector.similarity_scorer.score(
                    dom, mal, op_day.traffic, op_day.when
                )
            ),
            config=evaluation.config.belief_propagation.__class__(
                similarity_threshold=0.33
            ),
        )
        if result.detected_domains:
            return op_day.day, result
    return None, None


def test_fig8_hints_community(benchmark, enterprise_evaluation, enterprise_dataset):
    day, result = benchmark.pedantic(
        find_hinted_community, args=(enterprise_evaluation,),
        rounds=1, iterations=1,
    )
    assert result is not None, "no expanding SOC-hints community found"

    graph = result.graph.to_networkx()
    # Several IOC seeds may be present the same day; require every
    # component to be anchored on a seed rather than global connectivity.
    seed_names = {
        name for name, record in result.graph.domains.items()
        if record.label.value == "seed"
    } | {
        name for name, record in result.graph.hosts.items()
        if record.label.value == "seed"
    }
    components = list(nx.connected_components(graph))
    assert all(component & seed_names for component in components)

    truth = enterprise_dataset.malicious_domains
    vt = enterprise_evaluation.virustotal
    siblings = set(result.detected_domains) & truth
    assert siblings, "no true campaign siblings recovered from the seed"
    new_discoveries = {d for d in siblings if not vt.is_reported(d)}

    lines = [
        f"Figure 8 analogue -- SOC-hints community on day {day}",
        "",
        result.graph.ascii_render(),
        "",
        f"true siblings recovered: {sorted(siblings)}",
        f"of which unknown to VirusTotal (new discoveries): "
        f"{sorted(new_discoveries)}",
    ]
    save_output("fig8_hints_community", "\n".join(lines))
