"""Section VI-D: the two operation modes are complementary.

Paper: "Only 21 domains are detected in both modes, which is a small
portion compared to 202 and 108 malicious and suspicious domains
detected separately.  When deployed by the enterprise, we suggest our
detector configured to run in both modes, in order to have better
coverage."  Also exercises the Section VIII longitudinal view: the
detection ledger correlates multi-day campaigns across the month.
"""

from conftest import save_output

from repro.eval import DetectionLedger, render_table


def collect(evaluation):
    no_hint = evaluation.no_hint_detections(0.33)
    hints = evaluation.soc_hints_detections(0.33)
    return no_hint, hints


def test_mode_complementarity(benchmark, enterprise_evaluation, enterprise_dataset):
    no_hint, hints = benchmark.pedantic(
        collect, args=(enterprise_evaluation,), rounds=1, iterations=1
    )
    overlap = no_hint & hints
    union = no_hint | hints
    assert union
    # The paper's shape: the overlap is a strict minority of the union.
    assert len(overlap) < len(union)
    truth = enterprise_dataset.malicious_domains
    union_true = len(union & truth)
    best_single = max(len(no_hint & truth), len(hints & truth))
    assert union_true >= best_single  # both modes never hurt coverage

    # Longitudinal ledger over the month's C&C detections.
    ledger = DetectionLedger()
    for op_day in enterprise_evaluation.days:
        cc = [(d, s) for d, s in op_day.cc_scores.items() if s >= 0.4]
        if cc:
            ledger.record_day(op_day.day, cc, mode="cc")

    table = render_table(
        ("view", "domains", "truly malicious"),
        [
            ("no-hint (Ts=0.33)", len(no_hint), len(no_hint & truth)),
            ("SOC-hints (Ts=0.33)", len(hints), len(hints & truth)),
            ("overlap", len(overlap), len(overlap & truth)),
            ("union (deploy both)", len(union), union_true),
        ],
        title="Section VI-D analogue -- mode complementarity "
              "(paper: 21 shared vs 202/108 separate)",
    )
    recurring = ledger.recurring(min_days=2)
    extra = (
        f"\nledger: {len(ledger)} C&C domains across the month, "
        f"{len(recurring)} redetected on multiple days"
    )
    save_output("mode_complementarity", table + extra)
