"""Figure 6(c): SOC-hints belief propagation vs similarity threshold.

Paper: seeded with 28 IOC domains, sweeping Ts from 0.33 to 0.45 yields
137 to 73 detections (TDR 78.8%-94.6%); at 0.33 the mode surfaces 108
malicious/suspicious domains -- about four times the seed set -- of
which 29 are new discoveries.  Shape: monotone count decrease, seeds
excluded from the output, expansion factor above 1, nonzero new
discoveries.
"""

from conftest import save_output

from repro.eval import render_table

THRESHOLDS = (0.33, 0.37, 0.40, 0.41, 0.45)


def test_fig6c_hints_sweep(benchmark, enterprise_evaluation):
    sweep = benchmark.pedantic(
        enterprise_evaluation.soc_hints_sweep, args=(THRESHOLDS,),
        rounds=1, iterations=1,
    )

    counts = [p.detected_count for p in sweep]
    assert counts == sorted(counts, reverse=True)
    seeds = set(enterprise_evaluation.ioc.seeds())
    for point in sweep:
        assert not (point.detected & seeds)
    assert sweep[0].detected  # hints mode finds campaign siblings

    rows = [
        (f"{p.threshold:.2f}", p.detected_count,
         p.breakdown.known_malicious, p.breakdown.new_malicious,
         p.breakdown.legitimate, f"{p.breakdown.tdr:.1%}")
        for p in sweep
    ]
    expansion = sweep[0].detected_count / max(len(seeds), 1)
    save_output(
        "fig6c_hints_sweep",
        render_table(
            ("Ts", "detected", "VT/SOC", "new mal.", "legit", "TDR"),
            rows,
            title="Figure 6(c) analogue -- SOC-hints detections vs Ts, seeds "
                  f"excluded (expansion x{expansion:.1f}; paper: 137->73, "
                  "TDR 78.8%-94.6%)",
        ),
    )
