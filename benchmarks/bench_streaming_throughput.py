"""Streaming engine throughput: events/sec and per-event latency vs batch.

Not a paper figure -- this bench characterizes the PR's streaming
subsystem against the batch runner it must stay faithful to.  At three
world scales it measures:

* batch: one bulk ``DnsLogRunner``-style pass over a day (aggregate,
  rare extraction, automation test, belief propagation);
* streaming: the same day consumed in micro-batches with a scoring
  round per batch (the minutes-not-hours operating point).

Batch amortizes everything over one pass, so raw events/sec favors it;
the streaming column buys bounded detection latency, and the `detect
parity` column shows it costs nothing in outcome.  A third pass per
scale repeats the streaming run with a live
:class:`~repro.obs.metrics.MetricsRegistry` to price the observability
plane: detections must match the uninstrumented run exactly, the
overhead percentage is recorded, and the registry snapshot's per-stage
timing breakdown rides along.  ``STREAMING_BENCH_SMOKE=1`` keeps only
the smallest scale with a single timing run -- the CI ingest-stage
smoke, gating on detection parity and the presence of the stage
breakdown rather than on timings.  Results go to
``benchmarks/out/streaming_throughput.json`` (plus the usual rendered
table) for EXPERIMENTS.md.
"""

from __future__ import annotations

import gc
import json
import os
import time
from statistics import median

from conftest import OUT_DIR, save_output

from repro.eval import render_table
from repro.logs.normalize import normalize_dns_records
from repro.logs.reduction import ReductionFunnel
from repro.obs.metrics import MetricsRegistry
from repro.profiling.history import DestinationHistory
from repro.profiling.rare import DailyTraffic, extract_rare_domains
from repro.runner import detect_on_traffic
from repro.streaming import StreamingDetector, dns_batch_stream
from repro.synthetic import generate_lanl_dataset
from repro.synthetic.lanl import LanlConfig

SMOKE = os.environ.get("STREAMING_BENCH_SMOKE", "") not in ("", "0")
SCALES = (
    ("small", LanlConfig(seed=7, n_hosts=40, bootstrap_days=2)),
    ("medium", LanlConfig(seed=7, n_hosts=100, bootstrap_days=2)),
    ("large", LanlConfig(seed=7, n_hosts=220, bootstrap_days=2,
                         browsing_visits_per_host=9)),
)
if SMOKE:
    SCALES = SCALES[:1]
MICRO_BATCH = 500
#: best-of-N timing per arm (arms interleaved) -- see the overhead
#: measurement note in ``test_streaming_throughput``.  Odd so the
#: paired-ratio median is a real sample, not an interpolation.  The
#: CI smoke keeps one run: it gates on parity and the stage breakdown,
#: not on the (noise-dominated) single-run numbers.
TIMING_RUNS = 1 if SMOKE else 5


def _bootstrap(dataset, metrics=None) -> StreamingDetector:
    detector = StreamingDetector(
        internal_suffixes=dataset.internal_suffixes,
        server_ips=dataset.server_ips,
        metrics=metrics,
    )
    detector.submit_raw(dataset.day_records(1))
    detector.poll()
    detector.rollover(detect=False)
    return detector


def _stream_day(dataset, records, metrics=None):
    """One streaming pass over a day: micro-batches, score per batch.

    Uses the fused columnar ingress (:func:`dns_batch_stream`), which
    is the deployment-shaped hot path; detections are asserted equal
    to the scalar batch pass, so the comparison stays apples-to-apples
    on outcome.  Returns ``(elapsed, per_event_latencies, streamed,
    report)``.
    """
    detector = _bootstrap(dataset, metrics)
    latencies = []
    streamed = 0
    # Collect garbage from prior passes so a major collection from
    # *their* allocations cannot land inside this timed region (the
    # interleaved best-of-N runs otherwise cross-contaminate).
    gc.collect()
    start = time.perf_counter()
    for batch in dns_batch_stream(
        iter(records), detector.funnel, fold_level=3,
        batch_size=MICRO_BATCH,
    ):
        t0 = time.perf_counter()
        detector.submit(batch)
        detector.poll()
        detector.score()
        latencies.append((time.perf_counter() - t0) / len(batch))
        streamed += len(batch)
    report = detector.rollover()
    elapsed = time.perf_counter() - start
    return elapsed, latencies, streamed, report, detector


def _batch_day(dataset, history: DestinationHistory, records) -> tuple[float, set]:
    """One bulk pass, timed: reduce, aggregate, detect."""
    detector = StreamingDetector(
        internal_suffixes=dataset.internal_suffixes,
        server_ips=dataset.server_ips,
    )
    gc.collect()
    start = time.perf_counter()
    funnel = ReductionFunnel(
        dataset.internal_suffixes, dataset.server_ips, fold_level=3
    )
    connections = list(
        normalize_dns_records(funnel.reduce(records), fold_level=3)
    )
    traffic = DailyTraffic(1)
    traffic.ingest(connections)
    traffic.finalize()
    rare = extract_rare_domains(traffic, history, unpopular_max_hosts=10)
    detection = detect_on_traffic(
        traffic, rare,
        automation=detector.automation,
        scorer=detector.scorer,
        config=detector.config,
    )
    elapsed = time.perf_counter() - start
    return elapsed, set(detection.detected), len(connections)


def test_streaming_throughput():
    rows = []
    results = []
    for name, config in SCALES:
        dataset = generate_lanl_dataset(config)
        records = dataset.day_records(2)

        # Batch reference (history bootstrapped identically).
        batch_detector = _bootstrap(dataset)
        batch_elapsed, batch_detected, n_events = _batch_day(
            dataset, batch_detector.history, records
        )

        # Streaming: micro-batches with a scoring round per batch.
        # Both arms (uninstrumented / live registry) run N times with
        # the arms interleaved, taking the best of each for the
        # throughput columns -- the observability overhead is ~1%,
        # well under single-run scheduler noise, so anything less
        # reports spurious negative overheads.  The overhead itself is
        # the *median of the per-attempt paired ratios*: the two arms
        # of one attempt run back to back and share whatever load the
        # (single-vCPU) box is under, so the ratio cancels drift that
        # independent best-of-N minima cannot.
        stream_elapsed = on_elapsed = float("inf")
        latencies = streamed = report = detector = None
        metrics_parity = True
        ratios = []
        for attempt in range(TIMING_RUNS):
            elapsed, lat, n_streamed, rep, det = _stream_day(
                dataset, records
            )
            if attempt == 0:
                latencies, streamed, report, detector = (
                    lat, n_streamed, rep, det
                )
            stream_elapsed = min(stream_elapsed, elapsed)
            registry = MetricsRegistry()
            elapsed_on, _, _, on_report, _ = _stream_day(
                dataset, records, metrics=registry
            )
            if elapsed_on < on_elapsed:
                # Stage breakdown from the best instrumented attempt,
                # so the reported split matches the reported total.
                on_elapsed = elapsed_on
                stage_seconds = registry.snapshot().timings()
            ratios.append(elapsed_on / elapsed)
            run_parity = list(on_report.detected) == list(
                (rep if attempt else report).detected
            )
            metrics_parity = metrics_parity and run_parity
            assert run_parity, (on_report.detected, report.detected)

        assert streamed == n_events
        verdict_stats = detector.verdict_stats.as_dict()
        parity = set(report.detected) == batch_detected
        assert parity, (report.detected, batch_detected)
        overhead_pct = (median(ratios) - 1.0) * 100.0

        latencies.sort()
        p50 = latencies[len(latencies) // 2] * 1e6
        p99 = latencies[min(len(latencies) - 1,
                            int(len(latencies) * 0.99))] * 1e6
        batch_eps = n_events / batch_elapsed
        stream_eps = n_events / stream_elapsed
        rows.append((
            name, n_events,
            f"{batch_eps:,.0f}", f"{stream_eps:,.0f}",
            f"{p50:.1f}", f"{p99:.1f}",
            "yes" if parity else "NO",
            f"{overhead_pct:+.1f}%",
        ))
        results.append({
            "scale": name,
            "hosts": config.n_hosts,
            "events": n_events,
            "micro_batch": MICRO_BATCH,
            "batch_events_per_sec": batch_eps,
            "stream_events_per_sec": stream_eps,
            # Ingest-stage rate from the instrumented arm's span sum:
            # how fast the columnar path folds events into the window,
            # excluding generation and scoring.
            "ingest_events_per_sec": (
                n_events / stage_seconds["stream_ingest"]
                if stage_seconds.get("stream_ingest")
                else None
            ),
            "stream_event_latency_p50_us": p50,
            "stream_event_latency_p99_us": p99,
            "batch_elapsed_sec": batch_elapsed,
            "stream_elapsed_sec": stream_elapsed,
            "detect_parity": parity,
            # The observability plane, priced: same day with a live
            # registry, identical detections required.
            "metrics_overhead_pct": overhead_pct,
            "metrics_parity": metrics_parity,
            "stage_seconds": stage_seconds,
            # Period-aware verdict cache: how many series re-tests the
            # streaming engine avoided (short series, on-period beacons)
            # or served incrementally instead of rebuilding.
            "verdict_cache": verdict_stats,
        })

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "streaming_throughput.json").write_text(
        json.dumps(results, indent=1) + "\n"
    )
    save_output(
        "streaming_throughput",
        render_table(
            ("scale", "events", "batch ev/s", "stream ev/s",
             "lat p50 us", "lat p99 us", "detect parity", "metrics ovh"),
            rows,
            title=(
                "Streaming engine vs batch pass (one operational day, "
                f"micro-batch={MICRO_BATCH}, scoring round per batch)"
            ),
        ),
    )
