"""Table I: the four LANL challenge cases and their layout.

Paper: 20 campaigns across four cases -- case 1 (one hint host) on 3/2,
3/3, 3/4, 3/9, 3/10; case 2 (three or four hint hosts) on 3/5-3/8 and
3/11-3/13; case 3 (one hint host, further compromised hosts) on 3/14,
3/15, 3/17-3/21; case 4 (no hints) on 3/22.

The bench verifies the synthetic world reproduces that layout exactly
and benchmarks world generation.
"""

from conftest import BENCH_LANL, save_output

from repro.eval import render_table
from repro.synthetic import CASE_DATES, generate_lanl_dataset


def test_table1_layout(benchmark, lanl_dataset):
    rows = []
    for case, dates in CASE_DATES.items():
        campaigns = [c for c in lanl_dataset.campaigns if c.case == case]
        hint_counts = sorted({len(c.hint_hosts) for c in campaigns})
        rows.append(
            (f"Case {case}",
             ", ".join(f"3/{d}" for d in sorted(dates)),
             "/".join(map(str, hint_counts)) or "0",
             len(campaigns))
        )
    assert sum(row[-1] for row in rows) == 20

    save_output(
        "table1_lanl_cases",
        render_table(
            ("case", "dates", "hint hosts", "campaigns"),
            rows,
            title="Table I analogue -- LANL challenge case layout",
        ),
    )

    benchmark(generate_lanl_dataset, BENCH_LANL)
