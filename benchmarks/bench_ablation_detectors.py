"""Ablation: dynamic histograms vs the alternative periodicity detectors.

Backs the Section IV-C design discussion with measurements:

* the std-dev detector (the paper's abandoned first attempt) breaks on
  a single outlier gap;
* static binning breaks on jitter that straddles bin edges;
* Jeffrey divergence and L1 distance agree ("results were very
  similar" -- Section IV-C);
* throughput of the dynamic-histogram test over many series.
"""

import random

from conftest import save_output

from repro.eval import render_table
from repro.timing import (
    AutocorrelationDetector,
    AutomationDetector,
    FftDetector,
    StaticBinDetector,
    StdDevDetector,
)

from repro.config import HistogramConfig

DETECTORS = {
    "dynamic-histogram": AutomationDetector(),
    # L1 runs on a different scale than Jeffrey: for a dominant bin of
    # frequency f, L1 = 2(1-f) while Jeffrey ~= 0.06 corresponds to
    # f ~= 0.9, i.e. L1 ~= 0.19 -- the scale-matched threshold.
    "dynamic-L1": AutomationDetector(
        HistogramConfig(jeffrey_threshold=0.19), metric="l1"
    ),
    "static-bins": StaticBinDetector(),
    "std-dev": StdDevDetector(),
    "fft": FftDetector(),
    "autocorrelation": AutocorrelationDetector(),
}


def beacon(period, count, jitter, seed):
    rng = random.Random(seed)
    times, t = [], 0.0
    for _ in range(count):
        times.append(t)
        t += period + rng.uniform(-jitter, jitter)
    return times


def browsing(count, seed):
    rng = random.Random(seed)
    times, t = [], 0.0
    for _ in range(count):
        t += rng.expovariate(1.0 / 300.0)
        times.append(t)
    return times


def build_workload(n=60):
    """Labeled series: clean/jittered/outlier beacons + browsing."""
    series = []
    for i in range(n):
        period = random.Random(i).choice((120.0, 300.0, 600.0))
        clean = beacon(period, 30, 0.0, i)
        jittered = beacon(period, 30, 3.0, i + 1000)
        outlier = clean[:15] + [t + 30_000.0 for t in clean[15:]]
        series.append((clean, True))
        series.append((jittered, True))
        series.append((outlier, True))
        series.append((browsing(30, i + 2000), False))
    return series


def evaluate(detector, workload):
    tp = fp = fn = tn = 0
    for times, is_beacon in workload:
        automated = detector.test_series("h", "d", times).automated
        if is_beacon and automated:
            tp += 1
        elif is_beacon:
            fn += 1
        elif automated:
            fp += 1
        else:
            tn += 1
    recall = tp / (tp + fn) if tp + fn else 0.0
    precision = tp / (tp + fp) if tp + fp else 0.0
    return recall, precision


def test_ablation_detectors(benchmark):
    workload = build_workload()

    results = {}
    for name, detector in DETECTORS.items():
        results[name] = evaluate(detector, workload)

    # Shape assertions from the Section IV-C discussion.
    assert results["dynamic-histogram"][0] >= 0.95  # robust recall
    assert results["dynamic-histogram"][1] >= 0.95
    assert results["std-dev"][0] < results["dynamic-histogram"][0]
    assert results["static-bins"][0] < results["dynamic-histogram"][0]
    # Jeffrey vs L1: "very similar".
    jeffrey = results["dynamic-histogram"]
    l1 = results["dynamic-L1"]
    assert abs(jeffrey[0] - l1[0]) <= 0.05

    benchmark(
        lambda: [
            DETECTORS["dynamic-histogram"].test_series("h", "d", times)
            for times, _ in workload
        ]
    )

    save_output(
        "ablation_detectors",
        render_table(
            ("detector", "recall", "precision"),
            [
                (name, f"{recall:.2f}", f"{precision:.2f}")
                for name, (recall, precision) in results.items()
            ],
            title="Ablation -- periodicity detectors on beacon workloads "
                  "(clean + jitter + outlier vs browsing)",
        ),
    )
