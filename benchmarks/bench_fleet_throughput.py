"""Fleet throughput: serial vs parallel cross-tenant execution.

Not a paper figure -- this bench characterizes the multi-tenant fleet
subsystem (`repro.fleet`).  It generates N correlated enterprises
sharing one attacker campaign, writes the fleet layout to disk, then
runs the identical workload through every executor:

* serial: ``--workers 1`` (the baseline every mode must match);
* threads: ``--workers N`` on the thread executor;
* processes: ``--workers N`` on the process executor (engine state
  carried through full per-tenant checkpoints every round -- real
  parallelism paid for with serialization; skipped in smoke mode);
* resident: long-lived worker processes with engines resident in
  memory across rounds and barrier delta-checkpoints (at 1/2/N
  workers in the full run to show the scaling curve; one mode in
  smoke).  Resident modes also record per-worker busy stats
  (``workers_detail``) for the operations runbook.

The parity assertion is the load-bearing part: per-tenant detections
must be identical across all modes (day-barrier seeding makes results
independent of worker count).  The table reports tenant-days/sec plus
the shared intel plane's cross-tenant cache hits and the streaming
verdict-cache skip counters.

``FLEET_BENCH_SMOKE=1`` shrinks the world for CI; results go to
``benchmarks/out/fleet_throughput.json``.  Full runs time each mode
best-of-``REPEATS`` and record the host's ``cpu_count``: on a
single-core host the process-based modes can only *match* serial
(the win there is dropping the old per-round serialization tax), so
the scaling curve is meaningful only alongside the core count.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from conftest import OUT_DIR, save_output

from repro.eval import render_table
from repro.fleet import FleetManager, load_manifest
from repro.obs.metrics import MetricsRegistry
from repro.synthetic import (
    FleetScenarioConfig,
    LanlConfig,
    generate_fleet_dataset,
    write_fleet_layout,
)
from repro.testing import make_multi_enterprise_dataset

SMOKE = os.environ.get("FLEET_BENCH_SMOKE", "") not in ("", "0")
N_TENANTS = 3 if SMOKE else 4
DAYS = 3 if SMOKE else 8
WORKERS = N_TENANTS
#: Best-of-N timing in the full run: the container this bench runs on
#: shares its host, so single runs can lose 20%+ to stolen CPU; the
#: minimum over repeats is the standard way to strip that noise.
REPEATS = 1 if SMOKE else 5

#: Dense per-tenant world for the full run.  The test-suite template
#: (40 hosts) finishes a whole mode in well under a second, which is
#: spawn-overhead territory; scaling measurements need each round to
#: cost real compute so the executor difference dominates the noise.
FULL_BENCH_TENANT = LanlConfig(
    seed=42,  # replaced per tenant by the fleet generator
    n_hosts=100,
    bootstrap_days=2,
    popular_domains=60,
    churn_domains_per_day=12,
    browsing_visits_per_host=10,
)


def _bench_dataset():
    """The fleet world under test: small in smoke, dense in full."""
    if SMOKE:
        return make_multi_enterprise_dataset(N_TENANTS)
    return generate_fleet_dataset(FleetScenarioConfig(
        seed=42,
        n_tenants=N_TENANTS,
        tenant=FULL_BENCH_TENANT,
        lead_hosts=2,
        follower_hosts=1,
        vt_coverage=0.8,
    ))


def _run_once(manifest, *, workers: int, executor: str):
    """One timed run of one executor configuration."""
    manager = FleetManager.from_manifest(
        manifest, workers=workers, executor=executor
    )
    start = time.perf_counter()
    report = manager.run()
    elapsed = time.perf_counter() - start
    return report, elapsed, manager


def _time_modes(manifest, modes):
    """Best-of-``REPEATS`` per mode, repeats *interleaved* across modes.

    Detections are deterministic, so every repeat produces the same
    report and the minimum elapsed is the mode's real cost.  The
    interleaving matters on a shared host: noise arrives in time-slabs,
    and timing one mode's repeats back-to-back would let a single mode
    monopolize a quiet slab; round-robin order exposes every mode to
    the same conditions.
    """
    best: dict[str, tuple] = {}
    for _ in range(REPEATS):
        for name, workers, executor in modes:
            run = _run_once(manifest, workers=workers, executor=executor)
            if name not in best or run[1] < best[name][1]:
                best[name] = run
    return best


def test_fleet_throughput():
    fleet = _bench_dataset()
    with tempfile.TemporaryDirectory() as tmp:
        manifest = load_manifest(
            write_fleet_layout(fleet, Path(tmp), days=DAYS)
        )
        modes = [("serial", 1, "thread"), ("threads", WORKERS, "thread")]
        if SMOKE:
            modes.append(("resident", WORKERS, "resident"))
        else:
            modes.append(("processes", WORKERS, "process"))
            modes.extend(
                (f"resident-{workers}", workers, "resident")
                for workers in (1, 2, WORKERS)
            )

        timed = _time_modes(manifest, modes)
        rows, results = [], []
        baseline = None
        for name, workers, executor in modes:
            report, elapsed, manager = timed[name]
            detections = {
                tenant: sorted(domains)
                for tenant, domains in report.detected_by_tenant().items()
            }
            if baseline is None:
                baseline = detections
            # Parity is the contract: worker count and executor must
            # never change what any tenant detects.
            assert detections == baseline, (name, detections, baseline)

            tenant_days = len(report.days)
            records = sum(r.records for r in report.days)
            vt = report.intel.vt_cache.stats
            assert vt.cross_tenant_hits > 0
            rows.append((
                name, workers, tenant_days,
                f"{tenant_days / elapsed:.2f}",
                f"{records / elapsed:,.0f}",
                vt.cross_tenant_hits,
                report.seeded_detections(),
            ))
            result = {
                "mode": name,
                "workers": workers,
                "executor": executor,
                "tenants": N_TENANTS,
                "tenant_days": tenant_days,
                "records": records,
                "elapsed_sec": elapsed,
                "repeats": REPEATS,
                "tenant_days_per_sec": tenant_days / elapsed,
                "records_per_sec": records / elapsed,
                "vt_cache": vt.as_dict(),
                "seeded_detections": report.seeded_detections(),
                "detect_parity": detections == baseline,
            }
            if manager.worker_stats:
                result["workers_detail"] = {
                    str(worker_id): stats
                    for worker_id, stats in sorted(
                        manager.worker_stats.items()
                    )
                }
            results.append(result)

        # One extra instrumented resident run (outside the timing
        # loop): the fleet-wide snapshot's stage breakdown for the
        # summary, with detection parity against the uninstrumented
        # baseline asserted -- the observability plane must be
        # invisible to outcomes.
        registry = MetricsRegistry()
        manager = FleetManager.from_manifest(
            manifest, workers=WORKERS, executor="resident",
            metrics=registry,
        )
        instrumented = manager.run()
        instr_detections = {
            tenant: sorted(domains)
            for tenant, domains in instrumented.detected_by_tenant().items()
        }
        assert instr_detections == baseline, (instr_detections, baseline)
        snapshot = registry.snapshot()
        tenant_days_counted = sum(
            value for key, value in snapshot.counters.items()
            if key.startswith("tenant_days_total")
        )
        assert tenant_days_counted == len(instrumented.days)
        metrics_run = {
            "executor": "resident",
            "workers": WORKERS,
            "detect_parity": True,
            "stage_seconds": snapshot.timings(),
            "tenant_days_counted": tenant_days_counted,
        }

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "fleet_throughput.json").write_text(
        json.dumps(
            {
                "smoke": SMOKE,
                "cpu_count": os.cpu_count(),
                "modes": results,
                "metrics": metrics_run,
            },
            indent=1,
        ) + "\n"
    )
    save_output(
        "fleet_throughput",
        render_table(
            ("mode", "workers", "tenant-days", "td/s", "records/s",
             "x-tenant hits", "seeded"),
            rows,
            title=(
                f"Fleet execution ({N_TENANTS} tenants, {DAYS} days, "
                "shared campaign; identical detections asserted)"
            ),
        ),
    )
