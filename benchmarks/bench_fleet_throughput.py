"""Fleet throughput: serial vs parallel cross-tenant execution.

Not a paper figure -- this bench characterizes the multi-tenant fleet
subsystem (`repro.fleet`).  It generates N correlated enterprises
sharing one attacker campaign, writes the fleet layout to disk, then
runs the identical workload three ways:

* serial: ``--workers 1`` (the baseline every mode must match);
* threads: ``--workers N`` on the thread executor;
* processes: ``--workers N`` on the process executor (engine state
  carried through per-tenant checkpoints -- real parallelism paid for
  with serialization; skipped in smoke mode).

The parity assertion is the load-bearing part: per-tenant detections
must be identical across all modes (day-barrier seeding makes results
independent of worker count).  The table reports tenant-days/sec plus
the shared intel plane's cross-tenant cache hits and the streaming
verdict-cache skip counters.

``FLEET_BENCH_SMOKE=1`` shrinks the world for CI; results go to
``benchmarks/out/fleet_throughput.json``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from conftest import OUT_DIR, save_output

from repro.eval import render_table
from repro.fleet import FleetManager, load_manifest
from repro.synthetic import write_fleet_layout
from repro.testing import make_multi_enterprise_dataset

SMOKE = os.environ.get("FLEET_BENCH_SMOKE", "") not in ("", "0")
N_TENANTS = 3 if SMOKE else 4
DAYS = 3 if SMOKE else 4
WORKERS = N_TENANTS


def _run_mode(manifest, *, workers: int, executor: str):
    manager = FleetManager.from_manifest(
        manifest, workers=workers, executor=executor
    )
    start = time.perf_counter()
    report = manager.run()
    elapsed = time.perf_counter() - start
    return report, elapsed


def test_fleet_throughput():
    fleet = make_multi_enterprise_dataset(N_TENANTS)
    with tempfile.TemporaryDirectory() as tmp:
        manifest = load_manifest(
            write_fleet_layout(fleet, Path(tmp), days=DAYS)
        )
        modes = [("serial", 1, "thread"), ("threads", WORKERS, "thread")]
        if not SMOKE:
            modes.append(("processes", WORKERS, "process"))

        rows, results = [], []
        baseline = None
        for name, workers, executor in modes:
            report, elapsed = _run_mode(
                manifest, workers=workers, executor=executor
            )
            detections = {
                tenant: sorted(domains)
                for tenant, domains in report.detected_by_tenant().items()
            }
            if baseline is None:
                baseline = detections
            # Parity is the contract: worker count and executor must
            # never change what any tenant detects.
            assert detections == baseline, (name, detections, baseline)

            tenant_days = len(report.days)
            records = sum(r.records for r in report.days)
            vt = report.intel.vt_cache.stats
            assert vt.cross_tenant_hits > 0
            rows.append((
                name, workers, tenant_days,
                f"{tenant_days / elapsed:.2f}",
                f"{records / elapsed:,.0f}",
                vt.cross_tenant_hits,
                report.seeded_detections(),
            ))
            results.append({
                "mode": name,
                "workers": workers,
                "executor": executor,
                "tenants": N_TENANTS,
                "tenant_days": tenant_days,
                "records": records,
                "elapsed_sec": elapsed,
                "tenant_days_per_sec": tenant_days / elapsed,
                "records_per_sec": records / elapsed,
                "vt_cache": vt.as_dict(),
                "seeded_detections": report.seeded_detections(),
                "detect_parity": detections == baseline,
            })

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "fleet_throughput.json").write_text(
        json.dumps({"smoke": SMOKE, "modes": results}, indent=1) + "\n"
    )
    save_output(
        "fleet_throughput",
        render_table(
            ("mode", "workers", "tenant-days", "td/s", "records/s",
             "x-tenant hits", "seeded"),
            rows,
            title=(
                f"Fleet execution ({N_TENANTS} tenants, {DAYS} days, "
                "shared campaign; identical detections asserted)"
            ),
        ),
    )
