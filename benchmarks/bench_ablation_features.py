"""Feature ablation for the similarity model (Sections IV-D, VI-A).

Paper: the regression reports per-feature significance; IP16 was
dropped for collinearity with IP24, and RareUA / DomInterval / IP24 /
DomAge were the most relevant similarity features.  This bench zeroes
one feature weight at a time in the *trained* similarity model and
measures the no-hint detection count and TDR, quantifying what each
feature contributes.  Shape: ablating an informative feature never
improves TDR by much, and ablating all timing/IP evidence reduces true
detections.
"""

import numpy as np
from conftest import save_output

from repro.eval import render_table
from repro.features.regression import LinearModel


def ablated_model(model: LinearModel, feature: str) -> LinearModel:
    """Copy of ``model`` with one feature's weight zeroed."""
    index = model.feature_names.index(feature)
    weights = np.array(model.weights, dtype=float)
    weights[index] = 0.0
    return LinearModel(
        feature_names=model.feature_names,
        intercept=model.intercept,
        weights=weights,
        coefficients=model.coefficients,
        r_squared=model.r_squared,
        n_samples=model.n_samples,
    )


def run_with_model(evaluation, model):
    original = evaluation.detector.similarity_scorer.model
    evaluation.detector.similarity_scorer.model = model
    try:
        detected = evaluation.no_hint_detections(0.33)
        return detected, evaluation._validate(detected)
    finally:
        evaluation.detector.similarity_scorer.model = original


def test_ablation_similarity_features(benchmark, enterprise_evaluation):
    base_model = enterprise_evaluation.detector.similarity_scorer.model

    baseline, baseline_breakdown = benchmark.pedantic(
        run_with_model, args=(enterprise_evaluation, base_model),
        rounds=1, iterations=1,
    )

    rows = [("(none)", "", len(baseline),
             baseline_breakdown.known_malicious + baseline_breakdown.new_malicious,
             f"{baseline_breakdown.tdr:.1%}")]
    results = {}
    for index, feature in enumerate(base_model.feature_names):
        detected, breakdown = run_with_model(
            enterprise_evaluation, ablated_model(base_model, feature)
        )
        results[feature] = (detected, breakdown)
        weight = float(base_model.weights[index])
        rows.append(
            (feature, f"{weight:+.2f}", len(detected),
             breakdown.known_malicious + breakdown.new_malicious,
             f"{breakdown.tdr:.1%}")
        )

    base_true = (baseline_breakdown.known_malicious
                 + baseline_breakdown.new_malicious)
    assert base_true > 0
    # Directionality: zeroing a positive weight lowers every score, so
    # detections cannot meaningfully grow; zeroing a negative weight
    # raises scores, so detections cannot meaningfully shrink.  (A small
    # tolerance absorbs belief propagation's argmax path dependence.)
    for index, feature in enumerate(base_model.feature_names):
        detected, _ = results[feature]
        weight = float(base_model.weights[index])
        if weight > 0:
            assert len(detected) <= len(baseline) + 2, feature
        elif weight < 0:
            assert len(detected) >= len(baseline) - 2, feature

    save_output(
        "ablation_features",
        render_table(
            ("ablated feature", "weight", "detected", "true detections", "TDR"),
            rows,
            title="Similarity-feature ablation -- no-hint mode at Ts=0.33",
        ),
    )
