"""Figure 2: domains per day surviving each reduction step.

Paper (LANL, first week of March): ~400k domains/day in the raw logs
drop by roughly an order of magnitude through A-record filtering,
internal-query filtering and internal-server filtering, down to ~31.5k
rare destinations.  The shape to reproduce is the strictly decreasing
funnel: all > filtered > new > rare, with a large total reduction.
"""

from conftest import save_output

from repro.eval import LanlChallengeSolver, render_table

STEPS = (
    "all",
    "a_records",
    "filter_internal_queries",
    "filter_internal_servers",
    "new",
    "rare",
)


def run_first_week(dataset):
    solver = LanlChallengeSolver(dataset)
    for march_date in range(1, 8):
        context = solver.day_context(march_date)
        solver._commit_day(context)
    return solver.funnel.stats


def test_fig2_reduction_funnel(benchmark, lanl_dataset):
    stats = benchmark.pedantic(
        run_first_week, args=(lanl_dataset,), rounds=1, iterations=1
    )

    days = stats.days()
    rows = []
    for step in STEPS:
        counts = stats.domain_counts(step)
        rows.append((step,) + tuple(counts.get(day, 0) for day in days))

    # Funnel must decrease monotonically on every day.
    for column in range(1, len(days) + 1):
        values = [row[column] for row in rows]
        assert values == sorted(values, reverse=True), values
    # And achieve a substantial total reduction, as in the paper.
    assert rows[0][1] > 3 * rows[-1][1]

    save_output(
        "fig2_reduction",
        render_table(
            ("step",) + tuple(f"3/{d - days[0] + 1}" for d in days),
            rows,
            title="Figure 2 analogue -- distinct domains per reduction step "
                  "(first week of March)",
        ),
    )
