"""Figure 4: belief-propagation trace on the 3/19 campaign.

Paper: starting from one hint host, iteration 1 detects C&C beaconing
at 10-minute intervals; iterations 2-4 label three more domains by
similarity (scores 0.82, 0.42, 0.28 in the paper's run); the algorithm
stops when the top score falls below the threshold.  The shape: C&C
first, then similarity labels in decreasing score order, then a stop.
"""

from conftest import save_output

from repro.eval import LanlChallengeSolver


def solve_through_319(dataset):
    solver = LanlChallengeSolver(dataset)
    outcome = None
    for march_date in sorted(t.march_date for t in dataset.campaigns):
        result = solver.solve_day(march_date)
        if march_date == 19:
            outcome = result
            break
    return outcome


def test_fig4_bp_trace(benchmark, lanl_dataset):
    outcome = benchmark.pedantic(
        solve_through_319, args=(lanl_dataset,), rounds=1, iterations=1
    )
    assert outcome is not None
    result = outcome.bp_result
    assert result is not None

    # Iteration 1 detects the C&C domain; later iterations label by
    # similarity, every accepted score clearing the threshold.  (The
    # paper's example run shows decreasing scores, but expansion can
    # legitimately raise later scores when new hosts join the graph.)
    assert result.trace[0].cc_detected
    similarity_scores = [
        t.top_score for t in result.trace if t.labeled and not t.cc_detected
    ]
    assert similarity_scores
    assert all(score >= 0.25 for score in similarity_scores)

    truth = set(lanl_dataset.campaign_for_date(19).malicious_domains)
    lines = ["Figure 4 analogue -- belief propagation on the 3/19 campaign"]
    for step in result.trace:
        if step.cc_detected:
            lines.append(
                f"  iter {step.iteration}: C&C detected {step.cc_detected}"
            )
        elif step.labeled:
            lines.append(
                f"  iter {step.iteration}: labeled {step.labeled} "
                f"score={step.top_score:.2f}"
            )
        else:
            lines.append(
                f"  iter {step.iteration}: stop (top score "
                f"{step.top_score:.2f} < Ts)"
            )
    lines.append("")
    lines.append(result.graph.ascii_render())
    lines.append(
        f"\nall labeled domains confirmed malicious: "
        f"{set(result.detected_domains) <= truth}"
    )
    save_output("fig4_bp_trace", "\n".join(lines))
