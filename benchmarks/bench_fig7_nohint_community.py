"""Figure 7: a community discovered in no-hint mode.

Paper (2/13): a C&C domain beaconed by three hosts at a 120 s period
seeds belief propagation, which then pulls in two delivery-stage
domains and two further hosts -- a connected bipartite community.
Shape: starting from detected C&C only, BP yields a connected
community containing additional (non-C&C) campaign domains.
"""

import networkx as nx
from conftest import save_output

from repro.core.pipeline import _automated_hosts_by_domain  # noqa: F401
from repro.eval.enterprise_eval import EnterpriseEvaluation


def find_community(evaluation: EnterpriseEvaluation):
    """First operation day whose no-hint BP expands past its seeds."""
    for op_day in evaluation.days:
        cc_set = {d for d, s in op_day.cc_scores.items() if s >= 0.4}
        if not cc_set:
            continue
        seed_hosts = set()
        for domain in cc_set:
            seed_hosts.update(op_day.traffic.hosts_by_domain.get(domain, ()))
        from repro.core.beliefprop import belief_propagation
        from repro.profiling.rare import rare_domains_by_host

        result = belief_propagation(
            seed_hosts,
            cc_set,
            dom_host=op_day.dom_host(),
            host_rdom=rare_domains_by_host(op_day.traffic, op_day.rare),
            detect_cc=lambda dom: dom in cc_set,
            similarity_score=lambda dom, mal: (
                evaluation.detector.similarity_scorer.score(
                    dom, mal, op_day.traffic, op_day.when
                )
            ),
            config=evaluation.config.belief_propagation.__class__(
                similarity_threshold=0.33
            ),
        )
        if result.detected_domains:
            return op_day.day, result
    return None, None


def test_fig7_nohint_community(benchmark, enterprise_evaluation, enterprise_dataset):
    day, result = benchmark.pedantic(
        find_community, args=(enterprise_evaluation,), rounds=1, iterations=1
    )
    assert result is not None, "no expanding no-hint community found"

    graph = result.graph.to_networkx()
    # Two campaigns seeded the same day yield two components; the
    # community property is that every component grows around a seed.
    seeds = {
        name for name, record in result.graph.domains.items()
        if record.label.value == "seed" or record.label.value == "cc"
    }
    components = list(nx.connected_components(graph))
    assert all(component & seeds for component in components)
    truth = enterprise_dataset.malicious_domains
    expanded_true = set(result.detected_domains) & truth
    assert expanded_true, "expansion found no true campaign siblings"

    lines = [
        f"Figure 7 analogue -- no-hint community on day {day}",
        "",
        result.graph.ascii_render(),
        "",
        f"communities: {len(components)} (each anchored on a C&C seed)",
        f"expanded domains that are truly malicious: {sorted(expanded_true)}",
    ]
    save_output("fig7_nohint_community", "\n".join(lines))
