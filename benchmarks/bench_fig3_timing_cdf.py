"""Figure 3: CDFs of first-visit gaps between domain pairs.

Paper: for a compromised host, the gap between its first visits to two
malicious domains is much shorter than between a malicious and a rare
legitimate domain -- 56% of malicious-malicious gaps fall under 160
seconds versus 3.8% of malicious-legitimate gaps.  The shape to
reproduce: the malicious-malicious CDF lies far above the mixed CDF at
short gaps.
"""

from conftest import save_output

from repro.eval import LanlChallengeSolver, cdf_at, render_table, timing_gap_samples
from repro.synthetic import TRAINING_DATES

CHECKPOINTS = (60.0, 160.0, 600.0, 3600.0, 10_000.0, 70_000.0)


def collect(dataset):
    solver = LanlChallengeSolver(dataset)
    return timing_gap_samples(solver, sorted(TRAINING_DATES))


def test_fig3_timing_cdfs(benchmark, lanl_dataset):
    mal_mal, mal_legit = benchmark.pedantic(
        collect, args=(lanl_dataset,), rounds=1, iterations=1
    )
    assert mal_mal and mal_legit

    rows = []
    for checkpoint in CHECKPOINTS:
        rows.append(
            (f"{checkpoint:g}",
             f"{cdf_at(mal_mal, checkpoint):.3f}",
             f"{cdf_at(mal_legit, checkpoint):.3f}")
        )

    # The paper's 160 s checkpoint: wide separation.
    assert cdf_at(mal_mal, 160.0) > 3 * cdf_at(mal_legit, 160.0)

    save_output(
        "fig3_timing_cdf",
        render_table(
            ("gap (s)", "CDF mal-mal", "CDF mal-legit"),
            rows,
            title=(
                "Figure 3 analogue -- first-visit gap CDFs "
                f"(n={len(mal_mal)} mal-mal, n={len(mal_legit)} mal-legit; "
                "paper checkpoint: 56% vs 3.8% at 160 s)"
            ),
        ),
    )
