"""Figure 6(b): no-hint belief propagation vs similarity threshold.

Paper: sweeping Ts from 0.33 to 0.85 shrinks total detections from 265
to 114 domains (TDR 76.2%-85.1%); at Ts=0.33 the mode finds 70 new
malicious/suspicious domains unknown to VT and the SOC (NDR 26.4%).
Shape: monotone count decrease, expansion beyond the C&C seeds, and a
nonzero new-discovery count at the loose end.
"""

from conftest import save_output

from repro.eval import render_table

THRESHOLDS = (0.33, 0.5, 0.65, 0.75, 0.85)


def test_fig6b_nohint_sweep(benchmark, enterprise_evaluation):
    sweep = benchmark.pedantic(
        enterprise_evaluation.no_hint_sweep, args=(THRESHOLDS,),
        rounds=1, iterations=1,
    )

    counts = [p.detected_count for p in sweep]
    assert counts == sorted(counts, reverse=True)
    assert sweep[0].breakdown.new_malicious > 0  # the paper's key claim
    cc_only = enterprise_evaluation.cc_detections(0.4)
    assert len(sweep[0].detected) > len(cc_only)  # BP expands the seeds

    rows = [
        (f"{p.threshold:.2f}", p.detected_count,
         p.breakdown.known_malicious, p.breakdown.new_malicious,
         p.breakdown.legitimate, f"{p.breakdown.tdr:.1%}",
         f"{p.breakdown.ndr:.1%}")
        for p in sweep
    ]
    save_output(
        "fig6b_nohint_sweep",
        render_table(
            ("Ts", "detected", "VT/SOC", "new mal.", "legit", "TDR", "NDR"),
            rows,
            title="Figure 6(b) analogue -- no-hint detections vs Ts "
                  "(paper: 265->114 domains, TDR 76.2%-85.1%, NDR 26.4%)",
        ),
    )
