"""Table II: automated-pair counts across (W, JT) parameterizations.

Paper: sweeping bin width W over {5, 10, 20} seconds and Jeffrey
threshold JT over {0, 0.034, 0.06, 0.35} shows (a) larger thresholds
capture more malicious beacon pairs but admit more legitimate automated
pairs, and (b) W=10s with JT=0.06 captures all labeled malicious pairs.
The shape: counts are monotone in JT at fixed W, and the paper's chosen
parameters capture the malicious pairs.
"""

from conftest import save_output

from repro.eval import render_table, sweep_histogram_parameters


def test_table2_parameter_sweep(benchmark, lanl_dataset):
    rows = benchmark.pedantic(
        sweep_histogram_parameters,
        args=(lanl_dataset,),
        kwargs={
            "bin_widths": (5.0, 10.0, 20.0),
            "thresholds": (0.0, 0.034, 0.06, 0.35),
        },
        rounds=1,
        iterations=1,
    )

    by_width = {}
    for row in rows:
        by_width.setdefault(row.bin_width, []).append(row)
    for width_rows in by_width.values():
        width_rows.sort(key=lambda r: r.jeffrey_threshold)
        totals = [r.all_pairs_testing for r in width_rows]
        assert totals == sorted(totals)

    chosen = next(
        r for r in rows if r.bin_width == 10.0 and r.jeffrey_threshold == 0.06
    )
    assert chosen.malicious_pairs_training > 0
    assert chosen.malicious_pairs_testing > 0

    save_output(
        "table2_histogram_params",
        render_table(
            ("W (s)", "JT", "mal pairs (train)", "mal pairs (test)",
             "all pairs (test)"),
            [
                (f"{r.bin_width:g}", f"{r.jeffrey_threshold:g}",
                 r.malicious_pairs_training, r.malicious_pairs_testing,
                 r.all_pairs_testing)
                for r in rows
            ],
            title="Table II analogue -- automated pairs vs (W, JT)",
        ),
    )
