"""Belief-propagation scoring at scale: legacy vs incremental frontier.

Not a paper figure -- this bench characterizes the PR's scoring hot
path.  Algorithm 1's inner loop rescored every frontier domain against
the *entire* malicious set each iteration
(O(iterations x frontier x malicious) pure-Python loops); the
:class:`~repro.profiling.index.TrafficIndex`-backed incremental
scorers fold in only the newly labeled delta per iteration.  The two
paths must agree byte-for-byte on detections, so each measured pair is
also a parity assertion.

The synthetic world is a labeling *chain*: a seed C&C domain, ``M``
chain domains each pulled in one belief-propagation iteration via a
timing + /24 similarity hit, and ``F`` background frontier domains
that score below threshold but must be rescanned every iteration --
the adversarial shape for the legacy loop.  Sweeping (F, M) sweeps
frontier x malicious-set size.

Results go to ``benchmarks/out/bp_scale.json`` (plus the rendered
table); ``BP_SCALE_SMOKE=1`` runs only the small configuration (CI).
The acceptance gate: the largest configuration must show >= 5x speedup
with ``detect_parity: true``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from conftest import OUT_DIR, save_output

from repro.config import BeliefPropagationConfig
from repro.core.beliefprop import belief_propagation
from repro.core.scoring import (
    AdditiveSimilarityScorer,
    BatchedSimilarityScorer,
    IncrementalAdditiveScorer,
    RegressionSimilarityScorer,
)
from repro.eval import render_table
from repro.features.extract import SIMILARITY_FEATURE_NAMES, FeatureExtractor
from repro.features.regression import LinearModel
from repro.logs.records import Connection
from repro.profiling.rare import DailyTraffic, rare_domains_by_host

SMOKE = bool(os.environ.get("BP_SCALE_SMOKE"))

#: (name, background frontier size, chain length).
CONFIGS = (
    ("small", 300, 10),
    ("medium", 1000, 20),
    ("large", 2500, 40),
)
WHEN = 86_400.0


def build_chain_world(frontier: int, chain: int):
    """One day of traffic forming an F-background, M-chain BP run.

    ``hub`` contacts the seed domain and every background domain (so
    the whole frontier is reachable from iteration 1); chain host ``i``
    contacts chain domains ``i`` and ``i+1`` thirty seconds apart, and
    all chain domains resolve into one /24 -- each iteration labels
    exactly the next chain domain while every background domain is
    rescored and rejected.
    """
    connections: list[Connection] = []
    chain_names = [f"chain{i:04d}.evil" for i in range(chain + 1)]
    for i, name in enumerate(chain_names):
        t = 1000.0 + i * 30.0
        ip = f"10.20.30.{(i % 250) + 1}"
        if i > 0:
            connections.append(Connection(t, f"chainhost{i - 1:04d}", name, ip))
        if i < chain:
            connections.append(Connection(t, f"chainhost{i:04d}", name, ip))
    connections.append(Connection(1000.0, "hub", chain_names[0], "10.20.30.1"))

    background_names = [f"bg{i:05d}.example" for i in range(frontier)]
    for i, name in enumerate(background_names):
        t = 50_000.0 + i * 1.5
        ip = f"198.{(i % 200) + 1}.{(i * 7) % 250}.9"
        connections.append(Connection(t, "hub", name, ip))
        connections.append(Connection(t + 40.0, f"bghost{i % 97:03d}", name, ip))

    traffic = DailyTraffic(0)
    traffic.ingest(connections)
    traffic.finalize()
    rare = set(chain_names) | set(background_names)
    seed_domains = {chain_names[0]}
    seed_hosts = set(traffic.hosts_by_domain[chain_names[0]])
    return traffic, rare, seed_hosts, seed_domains


def _sim_model() -> LinearModel:
    """Hand-built similarity model: timing + /24 hits clear Ts, the
    background's connectivity-only rows do not."""
    return LinearModel(
        feature_names=SIMILARITY_FEATURE_NAMES,
        intercept=0.03,
        weights=np.array([0.25, 0.5, 0.3, 0.1, 0.08, 0.04, -0.15, -0.08]),
        coefficients=(),
        r_squared=0.0,
        n_samples=10,
    )


def _run(seed_hosts, seed_domains, config, scoring_kwargs):
    start = time.perf_counter()
    result = belief_propagation(
        seed_hosts,
        seed_domains,
        detect_cc=lambda dom: False,
        config=config,
        **scoring_kwargs,
    )
    elapsed = time.perf_counter() - start
    return elapsed, result


def test_bp_scale():
    configs = CONFIGS[:1] if SMOKE else CONFIGS
    rows = []
    results = []
    all_parity = True
    for name, frontier, chain in configs:
        traffic, rare, seed_hosts, seed_domains = build_chain_world(
            frontier, chain
        )
        bp_config = BeliefPropagationConfig(
            similarity_threshold=0.25, max_iterations=chain + 2
        )
        legacy_dom_host = {
            d: frozenset(traffic.hosts_by_domain.get(d, ())) for d in rare
        }
        legacy_host_rdom = rare_domains_by_host(traffic, rare)
        index = traffic.index()
        dom_host, host_rdom = traffic.bp_views(rare)

        additive = AdditiveSimilarityScorer()
        regression = RegressionSimilarityScorer(
            _sim_model(), FeatureExtractor()
        )
        for family in ("additive", "regression"):
            if family == "additive":
                legacy_scoring = {
                    "similarity_score":
                        lambda d, mal: additive.score(d, mal, traffic),
                }
                fast_scoring = {
                    "score_frontier": IncrementalAdditiveScorer(
                        additive, traffic, index=index
                    ).score_frontier,
                }
            else:
                legacy_scoring = {
                    "similarity_score":
                        lambda d, mal: regression.score(
                            d, mal, traffic, WHEN
                        ),
                }
                fast_scoring = {
                    "score_frontier": BatchedSimilarityScorer(
                        regression, traffic, WHEN, index=index
                    ).score_frontier,
                }
            legacy_s, legacy_result = _run(
                seed_hosts, seed_domains, bp_config,
                dict(dom_host=legacy_dom_host, host_rdom=legacy_host_rdom,
                     **legacy_scoring),
            )
            fast_s, fast_result = _run(
                seed_hosts, seed_domains, bp_config,
                dict(dom_host=dom_host, host_rdom=host_rdom, **fast_scoring),
            )
            parity = (
                legacy_result.detections == fast_result.detections
                and legacy_result.trace == fast_result.trace
                and legacy_result.hosts == fast_result.hosts
                and legacy_result.domains == fast_result.domains
            )
            all_parity = all_parity and parity
            assert parity, f"{name}/{family}: detections diverged"
            assert len(fast_result.domains) == chain + 1, (
                f"{name}/{family}: chain did not fully label "
                f"({len(fast_result.domains)} of {chain + 1})"
            )
            speedup = legacy_s / fast_s if fast_s > 0 else float("inf")
            rows.append((
                name, family, frontier, chain,
                f"{legacy_s * 1e3:,.1f}", f"{fast_s * 1e3:,.1f}",
                f"{speedup:.1f}x", "yes" if parity else "NO",
            ))
            results.append({
                "config": name,
                "scorer": family,
                "frontier": frontier,
                "chain": chain,
                "iterations": fast_result.iterations,
                "legacy_seconds": legacy_s,
                "indexed_seconds": fast_s,
                "speedup": speedup,
                "detect_parity": parity,
            })

    if not SMOKE:
        largest = [r for r in results if r["config"] == configs[-1][0]]
        min_speedup = min(r["speedup"] for r in largest)
        assert min_speedup >= 5.0, (
            f"largest configuration speedup {min_speedup:.1f}x < 5x"
        )

    table = render_table(
        ("config", "scorer", "frontier", "chain",
         "legacy ms", "indexed ms", "speedup", "parity"),
        rows,
        title="Belief-propagation frontier scoring: legacy vs indexed",
    )
    save_output("bp_scale", table)
    payload = {
        "bench": "bp_scale",
        "smoke": SMOKE,
        "detect_parity": all_parity,
        "rows": results,
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "bp_scale.json").write_text(json.dumps(payload, indent=2) + "\n")
