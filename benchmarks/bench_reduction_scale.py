"""Section IV-A scale numbers: hosts/domains before vs after reduction.

Paper: LANL shrinks from ~80k hosts querying 400k+ domains daily to
3,369 hosts and 31,582 domains in the reduced set; the enterprise
dataset from 120k hosts / 600k domains to 20k hosts / 59k rare domains.
Shape: reduction retains a small fraction of domains while keeping all
campaign traffic, and the streaming funnel sustains high record
throughput.
"""

from conftest import save_output

from repro.eval import LanlChallengeSolver, render_table


def test_reduction_scale(benchmark, lanl_dataset):
    solver = LanlChallengeSolver(lanl_dataset)
    records = lanl_dataset.day_records(2)

    def reduce_day():
        funnel_solver = LanlChallengeSolver(lanl_dataset)
        return funnel_solver.day_context(2)

    context = benchmark.pedantic(reduce_day, rounds=1, iterations=1)

    raw_domains = {r.domain for r in records}
    raw_hosts = {r.source_ip for r in records}
    reduced_domains = set(context.traffic.hosts_by_domain)
    reduced_hosts = set(context.traffic.domains_by_host)

    # Reduced view keeps a fraction of the raw domains plus all rare
    # campaign destinations.
    truth = set(lanl_dataset.campaign_for_date(2).malicious_domains)
    assert truth <= reduced_domains
    assert len(reduced_domains) < len(raw_domains)
    assert len(context.rare) < len(reduced_domains)

    save_output(
        "reduction_scale",
        render_table(
            ("view", "hosts", "domains"),
            [
                ("raw records", len(raw_hosts), len(raw_domains)),
                ("after reduction", len(reduced_hosts), len(reduced_domains)),
                ("rare destinations", "-", len(context.rare)),
            ],
            title=(
                "Section IV-A analogue -- daily scale before/after reduction "
                f"({len(records)} records on 3/2; paper: 400k->31.6k domains)"
            ),
        ),
    )
