"""Shared fixtures for the benchmark suite.

Each bench regenerates one table or figure of the paper and saves its
rendered output under ``benchmarks/out/`` so EXPERIMENTS.md can quote
paper-vs-measured side by side.  Dataset worlds and trained pipelines
are session-scoped: they are deterministic in their seeds.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.eval import EnterpriseEvaluation, LanlChallengeSolver
from repro.synthetic import (
    EnterpriseDatasetConfig,
    LanlConfig,
    generate_enterprise_dataset,
    generate_lanl_dataset,
)

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: LANL world used by every LANL bench (Table I-III, Figures 2-4).
BENCH_LANL = LanlConfig(
    seed=42,
    n_hosts=100,
    bootstrap_days=4,
    popular_domains=60,
    churn_domains_per_day=15,
    browsing_visits_per_host=10,
)

#: Enterprise world used by the Section VI benches (Figures 5-8).
BENCH_ENTERPRISE = EnterpriseDatasetConfig(
    seed=2014,
    n_hosts=90,
    bootstrap_days=9,
    operation_days=12,
    quiet_days=3,
    popular_domains=80,
    churn_domains_per_day=15,
    n_campaigns=26,
    dga_campaign_count=3,
)


def save_output(name: str, text: str) -> None:
    """Persist one bench's rendered table/series for EXPERIMENTS.md."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session")
def lanl_dataset():
    return generate_lanl_dataset(BENCH_LANL)


@pytest.fixture(scope="session")
def lanl_report(lanl_dataset):
    return LanlChallengeSolver(lanl_dataset).solve_all()


@pytest.fixture(scope="session")
def enterprise_dataset():
    return generate_enterprise_dataset(BENCH_ENTERPRISE)


@pytest.fixture(scope="session")
def enterprise_evaluation(enterprise_dataset):
    return EnterpriseEvaluation(enterprise_dataset)
