"""Adversarial campaign suite: detection-rate-vs-evasion-strength curves.

Not a paper figure -- this bench tracks the detector's robustness
against the adversarial scenario library
(`repro.synthetic.campaigns`) as a trajectory in BENCH_perf.json the
same way the throughput benches track speed.  For every campaign
archetype it sweeps the evasion strength knob and measures the
detection rate over the campaign's ground-truth domains on *both*
single-tenant pipelines:

* DNS: batch ``DnsLogRunner`` vs ``StreamingDetector`` over a
  campaign-free span of the synthetic LANL world;
* enterprise: ``EnterpriseDetector.process_day`` vs
  ``StreamingEnterpriseDetector``, both restored from one shared
  trained state.

The ``tenant-churn`` archetype runs at fleet level: a shared campaign
across enterprises that join and leave mid-run, with a serial rerun
as the parity arm.

The parity assertion is the load-bearing part: at every measured
point the streaming arm must detect exactly what the batch arm
detects (per-tenant equality for the fleet curve).  A curve whose
rates drift is a finding; a curve whose parity breaks is a bug.

``EVASION_BENCH_SMOKE=1`` shrinks the sweep for CI (two strength
points, one trial); results go to ``benchmarks/out/evasion_suite.json``
plus a metrics snapshot (``evasion_suite_metrics.json`` + ``.prom``)
that ``tools/check_metrics_snapshot.py`` validates.
"""

from __future__ import annotations

import json
import os

from conftest import OUT_DIR, save_output

from repro.eval import render_table
from repro.eval.evasion import (
    DNS_EVAL_WORLD,
    churn_evasion_curve,
    dns_evasion_curve,
    enterprise_evasion_curve,
    trained_enterprise_world,
)
from repro.obs.metrics import MetricsRegistry
from repro.synthetic import CAMPAIGN_NAMES, generate_lanl_dataset

SMOKE = os.environ.get("EVASION_BENCH_SMOKE", "") not in ("", "0")

#: Strength sweep per pipeline.  Smoke keeps the two endpoints so the
#: CI curve still shows the full-evasion drop; the full run adds the
#: interior points that make the knee visible.
STRENGTHS = (0.0, 1.0) if SMOKE else (0.0, 0.25, 0.5, 0.75, 1.0)
CHURN_STRENGTHS = (0.0, 1.0) if SMOKE else (0.0, 0.5, 1.0)
DNS_TRIALS = 1 if SMOKE else 3
ENTERPRISE_TRIALS = 1 if SMOKE else 2

#: Archetypes swept on the single-tenant pipelines.  Smoke keeps one
#: campaign per evasion mechanism (timing, DGA, infrastructure,
#: persistence) -- still four curve families per pipeline for the
#: acceptance gate; the full run covers every archetype.
CAMPAIGNS = (
    ("jitter", "dga-chardist", "slow-burn", "cdn-fronting")
    if SMOKE
    else CAMPAIGN_NAMES
)


def _write_metrics(registry: MetricsRegistry) -> None:
    """Snapshot + Prometheus sibling for check_metrics_snapshot.py."""
    snapshot = registry.snapshot()
    path = OUT_DIR / "evasion_suite_metrics.json"
    path.write_text(json.dumps(snapshot.as_dict(), indent=1) + "\n")
    path.with_suffix(".prom").write_text(snapshot.to_prom())


def test_evasion_suite():
    registry = MetricsRegistry()

    # Both expensive fixtures are built once and shared across curves:
    # the benign worlds are identical at every point, only the overlaid
    # campaign realization varies with (strength, trial seed).
    dns_dataset = generate_lanl_dataset(DNS_EVAL_WORLD)
    enterprise_world = trained_enterprise_world()

    curves = []
    for campaign in CAMPAIGNS:
        curves.append(dns_evasion_curve(
            campaign, STRENGTHS, trials=DNS_TRIALS,
            dataset=dns_dataset, metrics=registry,
        ))
        curves.append(enterprise_evasion_curve(
            campaign, STRENGTHS, trials=ENTERPRISE_TRIALS,
            world=enterprise_world, metrics=registry,
        ))
    curves.append(churn_evasion_curve(
        CHURN_STRENGTHS, metrics=registry,
    ))

    rows = []
    for curve in curves:
        # Batch/streaming (or parallel/serial, for the fleet) parity
        # must hold at every measured point of every curve.
        assert curve.parity, (curve.campaign, curve.pipeline)
        for point in curve.points:
            assert 0.0 <= point.batch_rate <= 1.0
            assert 0.0 <= point.stream_rate <= 1.0
            assert point.truth_count > 0
        # With the knob at zero the campaign is an undisguised
        # beaconing infection; the pipelines must catch all of it.
        assert curve.points[0].strength == 0.0
        assert curve.points[0].batch_rate == 1.0, (
            curve.campaign, curve.pipeline, curve.points[0]
        )
        rows.append((
            curve.campaign,
            curve.pipeline,
            " ".join(f"{p.batch_rate:.2f}" for p in curve.points),
            curve.points[0].trials,
            "yes" if curve.parity else "NO",
        ))

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "evasion_suite.json").write_text(
        json.dumps(
            {
                "smoke": SMOKE,
                "strengths": list(STRENGTHS),
                "churn_strengths": list(CHURN_STRENGTHS),
                "curves": [curve.as_dict() for curve in curves],
            },
            indent=1,
        ) + "\n"
    )
    strength_axis = " ".join(f"{s:.2f}" for s in STRENGTHS)
    save_output(
        "evasion_suite",
        render_table(
            ("campaign", "pipeline", f"rate @ [{strength_axis}]",
             "trials", "parity"),
            rows,
            title=(
                "Detection rate vs evasion strength "
                "(batch/streaming parity asserted per point)"
            ),
        ),
    )
    _write_metrics(registry)
