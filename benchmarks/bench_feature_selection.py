"""Section VI-A: significance-driven feature pruning.

Paper: "Among all features considered, the only one with low
significance was AutoHosts, which we believe is highly correlated with
NoHosts and thus omit it" (C&C model); for the similarity model, IP16
was dropped for collinearity with IP24.  This bench reruns backward
elimination on the pipeline's actual labeled training rows and checks
the same collinearity structure falls out: at most one of each
collinear pair survives, and the pruned model preserves the score
separation between reported and legitimate domains.
"""

import statistics

from conftest import save_output

from repro.eval import render_table
from repro.features import (
    CC_FEATURE_NAMES,
    backward_eliminate,
    project_features,
)


def collect_rows(evaluation):
    rows, labels = [], []
    vt = evaluation.virustotal
    detector = evaluation.detector
    for op_day in evaluation.days:
        for domain, hosts in sorted(op_day.auto_hosts.items()):
            features = detector.extractor.cc_features(
                domain, op_day.traffic, hosts, op_day.when
            )
            rows.append(features.as_vector())
            labels.append(1.0 if vt.is_reported(domain) else 0.0)
    return rows, labels


def test_feature_selection(benchmark, enterprise_evaluation):
    rows, labels = collect_rows(enterprise_evaluation)
    assert len(rows) >= len(CC_FEATURE_NAMES) + 4

    result = benchmark.pedantic(
        backward_eliminate,
        args=(CC_FEATURE_NAMES, rows, labels),
        kwargs={"ridge": 0.01},
        rounds=1,
        iterations=1,
    )

    kept = set(result.model.feature_names)
    # The paper's collinear pair: at most one of NoHosts/AutoHosts
    # survives pruning (unless nothing at all was pruned).
    if result.steps:
        assert not {"no_hosts", "auto_hosts"} <= kept

    # The pruned model must keep separating the classes.
    reported, legitimate = [], []
    for row, label in zip(rows, labels):
        projected = project_features(
            CC_FEATURE_NAMES, result.model.feature_names, row
        )
        score = result.model.score(projected)
        (reported if label else legitimate).append(score)
    if reported and legitimate:
        assert statistics.mean(reported) > statistics.mean(legitimate)

    table_rows = [
        (step.dropped, f"{step.p_value:.3f}", ", ".join(step.remaining))
        for step in result.steps
    ] or [("(nothing pruned)", "-", ", ".join(result.model.feature_names))]
    save_output(
        "feature_selection",
        render_table(
            ("dropped", "p-value", "remaining features"),
            table_rows,
            title="Section VI-A analogue -- backward elimination on the "
                  "C&C model (paper dropped AutoHosts)",
        )
        + "\n\n" + result.model.summary(),
    )
