"""Enterprise (proxy-path) streaming throughput vs the batch pipeline.

Not a paper figure -- this bench characterizes the streaming enterprise
engine against ``EnterpriseDetector.process_day``, the batch routine it
must stay faithful to.  At each world scale one operational day is
processed twice by the *same trained system*:

* batch: one ``process_day`` call (aggregate, rare extraction,
  automation test, regression C&C scoring, belief propagation, profile
  commit);
* streaming: the same connections in micro-batches with a full scoring
  round per batch, closed by the batch-parity ``rollover``.

Batch amortizes everything over one pass, so raw events/sec favors it;
streaming buys bounded detection latency (a scoring round every
``MICRO_BATCH`` events) and the parity column shows it costs nothing
in outcome.  ``ENTERPRISE_BENCH_SMOKE=1`` keeps only the smallest
scale for CI.  Results go to
``benchmarks/out/enterprise_stream_throughput.json``.
"""

from __future__ import annotations

import copy
import gc
import json
import os
import time

from conftest import OUT_DIR, save_output

from repro.eval import render_table
from repro.streaming import StreamingEnterpriseDetector, micro_batches
from repro.synthetic import EnterpriseDatasetConfig, generate_enterprise_dataset
from repro.synthetic.fleet import train_enterprise_detector

SMOKE = os.environ.get("ENTERPRISE_BENCH_SMOKE", "") not in ("", "0")
#: Micro-batch size, i.e. the scoring cadence.  Sized to the synthetic
#: day (~10k proxy events): 1000-event batches still give ~10 full
#: scoring rounds per day -- detection latency bounded in minutes, not
#: hours -- without over-paying the fixed per-round costs (verdict
#: refresh, regression re-score, belief propagation) twenty-plus times
#: a day.  Per-event latency is amortized and stays microsecond-scale.
MICRO_BATCH = 1000
#: best-of-N timing per arm (arms interleaved): one day is a ~100ms
#: region, well inside single-vCPU scheduler noise, so single-run
#: numbers mis-rank the arms.  Smoke keeps one run for CI speed.
TIMING_RUNS = 1 if SMOKE else 4

_BASE = dict(
    seed=2014,
    bootstrap_days=9,
    operation_days=4,
    quiet_days=1,
    popular_domains=60,
    churn_domains_per_day=12,
    n_campaigns=20,
)
SCALES = [
    ("small", EnterpriseDatasetConfig(n_hosts=50, **_BASE)),
    ("medium", EnterpriseDatasetConfig(n_hosts=90, **_BASE)),
]
if SMOKE:
    SCALES = SCALES[:1]


def _batch_arm(trained, dataset, warmup_day, day, conns):
    """One timed bulk ``process_day`` on a fresh copy of the system."""
    batch = copy.deepcopy(trained)
    batch.process_day(warmup_day, dataset.day_connections(warmup_day))
    gc.collect()
    start = time.perf_counter()
    batch_result = batch.process_day(day, conns)
    elapsed = time.perf_counter() - start
    return elapsed, batch_result.all_detected_domains()


def _stream_arm(trained, dataset, warmup_day, conns):
    """One timed streaming day: micro-batches, score per batch, rollover."""
    stream = StreamingEnterpriseDetector(copy.deepcopy(trained))
    stream.ingest(dataset.day_connections(warmup_day))
    stream.rollover()
    latencies = []
    gc.collect()
    start = time.perf_counter()
    for batch_events in micro_batches(iter(conns), MICRO_BATCH):
        t0 = time.perf_counter()
        stream.ingest(batch_events)
        stream.score()
        latencies.append((time.perf_counter() - t0) / len(batch_events))
    report = stream.rollover()
    elapsed = time.perf_counter() - start
    return elapsed, latencies, report, stream


def test_enterprise_stream_throughput():
    rows, results = [], []
    for name, config in SCALES:
        dataset = generate_enterprise_dataset(config)
        trained = train_enterprise_detector(dataset)
        day = dataset.config.bootstrap_days + 1
        warmup_day = day - 1
        conns = dataset.day_connections(day)

        # Both arms run TIMING_RUNS times, interleaved, keeping the
        # best of each -- see the noise note on ``TIMING_RUNS``.
        batch_elapsed = stream_elapsed = float("inf")
        batch_detected = latencies = report = stream = None
        for attempt in range(TIMING_RUNS):
            elapsed_b, detected = _batch_arm(
                trained, dataset, warmup_day, day, conns
            )
            batch_elapsed = min(batch_elapsed, elapsed_b)
            elapsed_s, lat, rep, det = _stream_arm(
                trained, dataset, warmup_day, conns
            )
            stream_elapsed = min(stream_elapsed, elapsed_s)
            if attempt == 0:
                batch_detected, latencies, report, stream = (
                    detected, lat, rep, det
                )
            parity = set(rep.detected) == detected
            assert parity, (sorted(rep.detected), sorted(detected))

        parity = set(report.detected) == batch_detected
        assert parity, (sorted(report.detected), sorted(batch_detected))

        latencies.sort()
        p50 = latencies[len(latencies) // 2] * 1e6
        p99 = latencies[min(len(latencies) - 1,
                            int(len(latencies) * 0.99))] * 1e6
        n_events = len(conns)
        batch_eps = n_events / batch_elapsed
        stream_eps = n_events / stream_elapsed
        rows.append((
            name, n_events,
            f"{batch_eps:,.0f}", f"{stream_eps:,.0f}",
            f"{p50:.1f}", f"{p99:.1f}",
            "yes" if parity else "NO",
        ))
        results.append({
            "scale": name,
            "hosts": config.n_hosts,
            "events": n_events,
            "micro_batch": MICRO_BATCH,
            "batch_events_per_sec": batch_eps,
            "stream_events_per_sec": stream_eps,
            "stream_event_latency_p50_us": p50,
            "stream_event_latency_p99_us": p99,
            "batch_elapsed_sec": batch_elapsed,
            "stream_elapsed_sec": stream_elapsed,
            "detect_parity": parity,
            "verdict_cache": stream.verdict_stats.as_dict(),
        })

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "enterprise_stream_throughput.json").write_text(
        json.dumps(results, indent=1) + "\n"
    )
    save_output(
        "enterprise_stream_throughput",
        render_table(
            ("scale", "events", "batch ev/s", "stream ev/s",
             "lat p50 us", "lat p99 us", "detect parity"),
            rows,
            title=(
                "Streaming enterprise engine vs batch process_day (one "
                f"operational day, micro-batch={MICRO_BATCH}, scoring "
                "round per batch)"
            ),
        ),
    )
