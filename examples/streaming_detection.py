#!/usr/bin/env python3
"""Streaming detection: events in, detections out, minutes not days.

Generates a synthetic LANL-style world, bootstraps the destination
history from day one, then feeds an attack day through the streaming
engine in micro-batches -- watching the detections appear *while* the
day's events are still arriving, then checkpointing and restoring the
engine mid-day to show crash recovery, and finally rolling the day
over to confirm the end-of-day report equals the batch pipeline's.

Run:  python examples/streaming_detection.py
(EXAMPLES_SMOKE=1 shrinks the world for CI smoke runs.)
"""

import os
import tempfile
from pathlib import Path

from repro.logs.normalize import normalize_dns_records
from repro.runner import DnsLogRunner
from repro.state import load_streaming, save_streaming
from repro.streaming import StreamingDetector, micro_batches
from repro.synthetic import LanlConfig, generate_lanl_dataset
from repro.logs import format_dns_line


def main() -> None:
    smoke = os.environ.get("EXAMPLES_SMOKE", "") not in ("", "0")
    config = LanlConfig(seed=7, n_hosts=40 if smoke else 80, bootstrap_days=2)
    print("generating synthetic LANL world ...")
    dataset = generate_lanl_dataset(config)
    truth = dataset.campaign_for_date(2)
    print(f"ground truth for 3/02: {sorted(truth.malicious_domains)}\n")

    detector = StreamingDetector(
        internal_suffixes=dataset.internal_suffixes,
        server_ips=dataset.server_ips,
    )

    # Day 1 builds the destination history (the training period).
    detector.submit_raw(dataset.day_records(1))
    detector.poll()
    detector.rollover(detect=False)
    print(f"bootstrapped history: {len(detector.history)} destinations\n")

    # Day 2 arrives as an event stream; score after every micro-batch.
    events = normalize_dns_records(
        detector.funnel.reduce(dataset.day_records(2)), fold_level=3
    )
    seen: set[str] = set()
    for i, batch in enumerate(micro_batches(events, 500)):
        detector.ingest(batch)
        update = detector.score()
        new = set(update.detected) - seen
        if new:
            print(
                f"  after {update.events_today:5d} events "
                f"({update.mode:4s} propagation): NEW detections {sorted(new)}"
            )
            seen.update(new)
        if i == 10:
            # Simulate a process restart mid-day.
            with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as f:
                ckpt = Path(f.name)
            save_streaming(detector, ckpt)
            detector = load_streaming(ckpt)
            ckpt.unlink()
            print(f"  -- checkpoint/restore at {detector.window.events_today} "
                  "events; stream continues --")

    report = detector.rollover()
    print(f"\nend-of-day report: C&C={sorted(report.cc_domains)}, "
          f"detected={report.detected}")

    # The batch oracle over the same records, for comparison.
    with tempfile.TemporaryDirectory() as tmp:
        for day in (1, 2):
            path = Path(tmp) / f"dns-march-{day:02d}.log"
            with path.open("w") as handle:
                for record in dataset.day_records(day):
                    handle.write(format_dns_line(record) + "\n")
        runner = DnsLogRunner(
            internal_suffixes=dataset.internal_suffixes,
            server_ips=dataset.server_ips,
        )
        runner.bootstrap([Path(tmp) / "dns-march-01.log"])
        batch = runner.process(Path(tmp) / "dns-march-02.log")
    print(f"batch runner says:  C&C={sorted(batch.cc_domains)}, "
          f"detected={batch.detected}")
    assert batch.detected == report.detected
    print("\nbatch parity holds: streaming == batch at end of day")


if __name__ == "__main__":
    main()
