#!/usr/bin/env python3
"""Fleet detection: many enterprises, one shared intelligence plane.

Generates three correlated enterprise worlds that share one attacker
campaign: the lead tenant is hit with two beaconing hosts (enough for
the multi-host C&C heuristic), the followers with a *single* host each
-- locally invisible to the no-hint LANL path.  The fleet runs all
three engines in day-barrier rounds above a shared intel plane, so the
lead's confirmation becomes an elevated belief-propagation prior for
the followers the very next day: the paper's community-feedback
amplification at fleet scale.  The same fleet is then re-run with
three thread workers, and finally with the **resident executor** --
long-lived worker processes whose engines stay in memory across
rounds, checkpointing barrier deltas (docs/OPERATIONS.md's runbook
covers sizing) -- to show that parallel execution changes wall-clock,
never detections.

Run:  python examples/fleet_detection.py
(EXAMPLES_SMOKE=1 shrinks the run for CI smoke runs.)
"""

import os
import tempfile
from pathlib import Path

from repro.fleet import FleetManager, load_manifest
from repro.synthetic import write_fleet_layout
from repro.testing import make_multi_enterprise_dataset


def main() -> None:
    print("generating 3 correlated enterprise worlds ...")
    fleet = make_multi_enterprise_dataset(3)
    shared = fleet.shared
    print(f"shared campaign: {sorted(shared.domains)}")
    print(f"  lead {fleet.lead_tenant}: hosts "
          f"{shared.hosts_by_tenant[fleet.lead_tenant]} on "
          f"3/{shared.date_by_tenant[fleet.lead_tenant]:02d}")
    for follower in fleet.follower_tenants:
        print(f"  follower {follower}: host "
              f"{shared.hosts_by_tenant[follower]} on "
              f"3/{shared.date_by_tenant[follower]:02d} "
              "(one host -- below the C&C heuristic)")

    smoke = os.environ.get("EXAMPLES_SMOKE", "") not in ("", "0")
    with tempfile.TemporaryDirectory() as tmp:
        manifest = load_manifest(
            write_fleet_layout(fleet, Path(tmp), days=3 if smoke else 4)
        )

        print("\nserial run (--workers 1):")
        serial = FleetManager.from_manifest(manifest, workers=1).run()
        print(serial.render())

        for follower in fleet.follower_tenants:
            seeded = [d for d in serial.days_for(follower) if d.intel_seeded]
            day = seeded[0]
            print(f"\n{follower} day {day.day}: seeded with "
                  f"{sorted(day.intel_seeded)} from the board -> "
                  f"detected {sorted(set(day.detected) & set(shared.domains))}")

        print("\nparallel run (--workers 3):")
        parallel = FleetManager.from_manifest(manifest, workers=3).run()
        assert (serial.detected_by_tenant() == parallel.detected_by_tenant())
        print("parity holds: per-tenant detections identical with 3 workers")

        print("\nresident run (--executor resident --workers 2):")
        manager = FleetManager.from_manifest(
            manifest, workers=2, executor="resident",
        )
        resident = manager.run()
        assert (serial.detected_by_tenant() == resident.detected_by_tenant())
        print("parity holds: resident workers reproduce the serial run")
        for worker_id, stats in sorted(manager.worker_stats.items()):
            print(f"  worker {worker_id}: tenants {stats['tenants']}, "
                  f"{stats['tenant_days']} tenant-days, "
                  f"{stats['records']} records in "
                  f"{stats['elapsed_seconds']:.2f}s busy")


if __name__ == "__main__":
    main()
