#!/usr/bin/env python3
"""Threat hunting on enterprise web-proxy logs (Section VI).

Builds a synthetic enterprise ("AC") world with DHCP churn,
multi-timezone collectors and injected malware campaigns; trains the
full pipeline on the bootstrap month; then runs both operation modes
over the operation month and validates the detections the way the
paper's SOC collaboration did.

Run:  python examples/enterprise_hunting.py
"""

from repro.eval import EnterpriseEvaluation, render_table
from repro.synthetic import EnterpriseDatasetConfig, generate_enterprise_dataset


def main() -> None:
    config = EnterpriseDatasetConfig(
        seed=2014, n_hosts=80, bootstrap_days=9, operation_days=8,
        quiet_days=3, n_campaigns=10,
    )
    print("generating synthetic enterprise world ...")
    dataset = generate_enterprise_dataset(config)
    print(
        f"  {config.n_hosts} hosts, {len(dataset.campaigns)} campaigns, "
        f"{len(dataset.malicious_domains)} malicious domains\n"
    )

    print("training pipeline + replaying operation month ...")
    evaluation = EnterpriseEvaluation(dataset)

    print("\nC&C regression model (Section VI-A):")
    print(evaluation.detector.report.cc_model.summary())

    rows = []
    for point in evaluation.cc_sweep((0.40, 0.44, 0.48)):
        b = point.breakdown
        rows.append((f"{point.threshold:.2f}", point.detected_count,
                     b.known_malicious, b.new_malicious, b.legitimate,
                     f"{b.tdr:.0%}"))
    print()
    print(render_table(
        ("Tc", "detected", "VT/SOC", "new mal.", "legit", "TDR"),
        rows, title="C&C detection sweep (Figure 6a analogue)",
    ))

    rows = []
    for point in evaluation.no_hint_sweep((0.33, 0.5, 0.65, 0.85)):
        b = point.breakdown
        rows.append((f"{point.threshold:.2f}", point.detected_count,
                     b.known_malicious, b.new_malicious, b.legitimate,
                     f"{b.ndr:.0%}"))
    print()
    print(render_table(
        ("Ts", "detected", "VT/SOC", "new mal.", "legit", "NDR"),
        rows, title="No-hint belief propagation sweep (Figure 6b analogue)",
    ))

    rows = []
    for point in evaluation.soc_hints_sweep((0.33, 0.40, 0.45)):
        b = point.breakdown
        rows.append((f"{point.threshold:.2f}", point.detected_count,
                     b.known_malicious, b.new_malicious, b.legitimate))
    print()
    print(render_table(
        ("Ts", "detected", "VT/SOC", "new mal.", "legit"),
        rows, title="SOC-hints sweep (Figure 6c analogue), seeds excluded",
    ))

    no_hint = evaluation.no_hint_detections(0.33)
    hints = evaluation.soc_hints_detections(0.33)
    overlap = no_hint & hints
    print(
        f"\nmode complementarity (Section VI-D): no-hint={len(no_hint)}, "
        f"SOC-hints={len(hints)}, overlap={len(overlap)} -> run both."
    )


if __name__ == "__main__":
    main()
